//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the four entry points the AFTA workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the [`Error`]
//! type — over the in-tree `serde` value model.  Output is deterministic:
//! object fields keep declaration order, floats use Rust's shortest
//! round-trip formatting (`1.0`, not `1`), and non-finite floats render
//! as `null` exactly like upstream serde_json.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while rendering or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Creates an error carrying a caller-supplied message (mirrors
    /// upstream `serde::de::Error::custom`), so layers that wrap JSON
    /// parsing — e.g. a wire decoder rejecting non-UTF-8 bytes before
    /// parsing — can report through the same error type.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error::new(msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a value tree that does not
/// match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats and is
                // the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // Surrogate pair: expect a following \uXXXX low half.
                    self.eat(b'\\')?;
                    self.eat(b'u')?;
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err("unknown escape sequence")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("bad unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in unicode escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-42i64).unwrap(), "-42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<i64>(" -42 ").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), vec![1.5f64]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"x\":[1.5]}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<f64>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nbreak \"quoted\" back\\slash \u{1F600} \u{01}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // Escaped-source forms parse too.
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn large_u64_roundtrip() {
        let v = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        let e = from_str::<u64>("[]").unwrap_err();
        assert!(e.to_string().contains("integer"));
    }
}
