//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes the AFTA workspace uses — named/tuple/unit structs and enums
//! whose variants are unit, tuple, or struct-like — by walking the
//! `proc_macro` token stream directly (the usual `syn`/`quote` helpers
//! are unavailable in hermetic builds).
//!
//! Encoding matches the conventions implemented in the sibling `serde`
//! stand-in: named structs become objects, newtype structs are
//! transparent, enums are externally tagged.  `#[serde(...)]` attributes
//! are accepted syntactically; the only processed hint is `transparent`,
//! which newtype structs already satisfy.  Generic types are not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the attribute group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Consume restricted visibility like pub(crate).
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                return Err(format!("serde derive: unsupported item `{word}`"));
            }
            other => return Err(format!("serde derive: unexpected token {other:?}")),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive: generic type `{name}` is not supported by the offline derive"
            ));
        }
    }

    let shape = if kind == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("serde derive: malformed struct body {other:?}")),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(variants(g.stream())?)
            }
            other => return Err(format!("serde derive: malformed enum body {other:?}")),
        }
    };

    Ok(Input { name, shape })
}

/// Extracts the field names of a named-field body, skipping attributes,
/// visibility, and types (tracking `<...>` depth so commas inside generic
/// arguments do not split fields).
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("serde derive: unexpected token in fields: {other}"))
                }
            }
        };
        fields.push(name);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde derive: expected `:`, got {other:?}")),
        }
        // Consume the type, up to a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts the fields of a tuple body (commas at angle-bracket depth zero).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for token in stream {
        saw_token = true;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if !saw_token {
        0
    } else if pending {
        arity + 1
    } else {
        arity
    }
}

fn variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut out = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match tokens.next() {
                None => return Ok(out),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!(
                        "serde derive: unexpected token in enum body: {other}"
                    ))
                }
            }
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        out.push(Variant { name, shape });
        // Consume up to and including the variant separator (skips
        // explicit discriminants, which the workspace does not use with
        // serde but cost nothing to tolerate).
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => {
            format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),")
        }
        VariantShape::Tuple(1) => format!(
            "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from({v:?}), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantShape::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({v:?}), \
                     ::serde::Value::Array(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({v:?}), \
                     ::serde::Value::Object(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__fields, {f:?}, {name:?})?,"))
                .collect();
            format!(
                "let __fields = __value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected array for \", {name:?})))?;\n\
                 if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         concat!(\"wrong tuple arity for \", {name:?})));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "{:?} => ::std::result::Result::Ok({name}::{}),",
                v.name, v.name
            )
        })
        .collect();

    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let tag = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Tuple(1) => Some(format!(
                    "{tag:?} => ::std::result::Result::Ok(\
                         {name}::{tag}(::serde::Deserialize::from_value(__payload)?)),"
                )),
                VariantShape::Tuple(arity) => {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{tag:?} => {{\n\
                             let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(concat!(\"expected array payload for \", \
                                 {name:?}, \"::\", {tag:?})))?;\n\
                             if __items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     concat!(\"wrong payload arity for \", {name:?}, \"::\", \
                                     {tag:?})));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{tag}({}))\n\
                         }}",
                        items.join(", ")
                    ))
                }
                VariantShape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::__field(__fields, {f:?}, {name:?})?,"))
                        .collect();
                    Some(format!(
                        "{tag:?} => {{\n\
                             let __fields = __payload.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(concat!(\"expected object payload for \", \
                                 {name:?}, \"::\", {tag:?})))?;\n\
                             ::std::result::Result::Ok({name}::{tag} {{ {} }})\n\
                         }}",
                        inits.join(" ")
                    ))
                }
            }
        })
        .collect();

    format!(
        "match __value {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                     \"unknown unit variant `{{__other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(__entry) if __entry.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entry[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"expected {name} variant, found {{}}\", __other.kind()))),\n\
         }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
