//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! AFTA's determinism contract only requires that [`rngs::StdRng`] be a
//! high-quality *seedable* generator whose streams are stable across runs
//! and platforms — no code in the workspace depends on the exact output of
//! upstream `rand`'s ChaCha-based `StdRng`.  This stand-in implements
//! xoshiro256++ seeded through SplitMix64, the combination recommended by
//! the xoshiro authors, and the `Rng`/`SeedableRng` trait surface the
//! workspace uses (`gen`, `gen_bool`, `gen_range`, `seed_from_u64`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds, mirroring
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53-bit uniform in [0, 1), strictly below p.
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution (the `Standard`
/// distribution of upstream `rand`, recast as a sampling trait).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);
standard_int!(i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `[0, span)` using 128-bit multiply-shift
/// (Lemire); bias is < 2^-64 per draw, far below anything the
/// fault-injection experiments could resolve.
fn scale(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + scale(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + scale(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = scale(rng.next_u64(), span);
                ((self.start as i64).wrapping_add(off as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = scale(rng.next_u64(), span + 1);
                ((start as i64).wrapping_add(off as i64)) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let f = f64::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let f = f32::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha12-based `StdRng`;
    /// AFTA pins its own expected values, so only internal stability
    /// matters.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's internal state words.
        ///
        /// Offline-shim extension (upstream `rand` has no such accessor):
        /// AFTA's checkpoint/resume machinery snapshots the state so a
        /// long deterministic run can be split at an arbitrary step
        /// boundary and later resumed bit-identically.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from state words captured by
        /// [`StdRng::state`].  The resumed stream continues exactly where
        /// the snapshotted one left off.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let _burn: Vec<u64> = (0..5).map(|_| a.gen()).collect();
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&s));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = r.gen_range(3u8..=5);
            assert!((3..=5).contains(&inc));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5u32..5);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn gen_bool_validates_p() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_bool(1.5);
    }
}
