//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided — the AFTA event bus uses
//! unbounded MPMC channels for pull-style subscriptions.  The
//! implementation is a `VecDeque` behind a mutex with sender/receiver
//! liveness tracked by atomic counters, preserving the `crossbeam-channel`
//! disconnection semantics the bus relies on:
//!
//! * `send` fails once every receiver is gone (the bus prunes the
//!   subscription on the next publish);
//! * `try_recv` distinguishes [`channel::TryRecvError::Empty`] from
//!   [`channel::TryRecvError::Disconnected`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message back to the caller.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying `value` back when the channel is
        /// disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Release);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when the queue is empty but
        /// senders remain, [`TryRecvError::Disconnected`] when it is empty
        /// and every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the queue is empty and every sender
        /// is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared.queue().len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Release);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn dropping_receiver_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn dropping_sender_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_senders_keep_channel_alive() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread_blocking_recv() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
