//! Offline stand-in for the `serde` crate.
//!
//! The AFTA workspace is built hermetically, so this crate provides the
//! serialization framework in-tree: a JSON-shaped [`Value`] tree, the
//! [`Serialize`]/[`Deserialize`] traits (simplified to convert through
//! `Value` rather than through generic serializers), impls for the std
//! types the workspace uses, and re-exported derive macros from
//! `serde_derive`.
//!
//! The derive encoding follows upstream serde's defaults so the JSON
//! emitted by `serde_json` looks familiar:
//!
//! * named structs → objects;
//! * newtype structs → their inner value (so `#[serde(transparent)]` is
//!   the natural behaviour);
//! * enums are externally tagged: unit variants are strings, payload
//!   variants are single-entry objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree, shaped like JSON.
///
/// Object fields are kept in insertion order so serialized output is
/// deterministic and mirrors declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`, or any non-negative
    /// integer produced from an unsigned source type.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an [`Value::Object`].
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an [`Value::Array`].
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short human label for the value's kind, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced while converting a [`Value`] into a typed structure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value tree does not match the expected
    /// shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("unsigned value out of range"))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).and_then(|v| {
            isize::try_from(v).map_err(|_| Error::custom("integer out of range for isize"))
        })
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom("negative value for unsigned type"))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value).and_then(|v| {
            usize::try_from(v).map_err(|_| Error::custom("integer out of range for usize"))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("single-character string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::to_value).collect())
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", value))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

/// Renders a map key into the string form used for object fields, when
/// the key type has a natural string rendering.
fn key_to_string(key: &Value) -> Option<String> {
    match key {
        Value::Str(s) => Some(s.clone()),
        Value::Int(i) => Some(i.to_string()),
        Value::UInt(u) => Some(u.to_string()),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

/// Parses an object-field key back into a typed map key: string-like keys
/// deserialize directly, numeric and boolean keys via their text form.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{key}`")))
}

fn map_to_value<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)> + Clone) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    // Keys with a string rendering produce a JSON object; other key types
    // fall back to an array of [key, value] pairs.
    let mut fields = Vec::new();
    for (k, v) in entries.clone() {
        match key_to_string(&k.to_value()) {
            Some(key) => fields.push((key, v.to_value())),
            None => {
                return Value::Array(
                    entries
                        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                        .collect(),
                );
            }
        }
    }
    Value::Object(fields)
}

fn map_from_value<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Object(fields) => fields
            .iter()
            .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
            .collect(),
        Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
        other => Err(Error::expected("map", other)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        map_from_value::<K, V>(value).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        map_from_value::<K, V>(value).map(|pairs| pairs.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Derive support
// ---------------------------------------------------------------------------

/// Looks up a struct field during derived deserialization.
///
/// Missing fields fall back to deserializing from [`Value::Null`], which
/// succeeds exactly for types with a null form (notably `Option`),
/// matching upstream serde's missing-field behaviour.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &'static str,
    ty: &'static str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}` in {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(u8::from_value(&200u8.to_value()).unwrap(), 200);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(char::from_value(&'x'.to_value()).unwrap(), 'x');
    }

    #[test]
    fn numeric_cross_width() {
        // A u64 value read back as i64 and vice versa.
        assert_eq!(i64::from_value(&Value::UInt(7)).unwrap(), 7);
        assert_eq!(u64::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn integer_keyed_map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(3u64, 100u64);
        m.insert(5u64, 200u64);
        let v = m.to_value();
        // Rendered as an object with stringified keys.
        assert!(v.get("3").is_some());
        assert_eq!(BTreeMap::<u64, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1u8, "x".to_string(), true);
        let v = t.to_value();
        assert_eq!(<(u8, String, bool)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn field_lookup_missing_option_is_none() {
        let fields = vec![("present".to_string(), Value::Int(1))];
        let got: Option<i64> = __field(&fields, "absent", "T").unwrap();
        assert_eq!(got, None);
        assert!(__field::<i64>(&fields, "absent", "T").is_err());
        assert_eq!(__field::<i64>(&fields, "present", "T").unwrap(), 1);
    }
}
