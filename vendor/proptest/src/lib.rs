//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the AFTA workspace uses:
//! the [`Strategy`] trait with `prop_map`/`boxed`, `any::<T>()` for the
//! primitive types, exclusive integer and float ranges, regex-lite
//! string strategies (character classes with `{m,n}` quantifiers),
//! tuple strategies, `collection::{vec, btree_set}`, `option::of`,
//! `sample::select`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports the assertion message produced by the `prop_assert*` macro
//! (which should carry enough context via format arguments).  Sampling
//! is deterministic — every test function runs the same 256 cases on
//! every execution.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};

/// Number of cases each `proptest!` test runs (upstream default).
pub const CASES: u32 = 256;

/// Deterministic RNG handed to strategies while sampling.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// A fixed-seed RNG so test runs are reproducible.
    pub fn deterministic(salt: u64) -> Self {
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(0x5EED_1DEA ^ salt),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds the failing variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejected variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runs `f` until [`CASES`] cases pass, panicking on the first failure.
///
/// Called by the `proptest!` macro; not part of the public upstream API.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Salt the stream per test name so sibling tests explore different inputs.
    let salt = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = TestRng::deterministic(salt);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < CASES {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected < 65_536,
                    "{name}: too many prop_assume! rejections ({why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    // Object-safe shim behind `BoxedStrategy` (the `Strategy` trait itself
    // has generic provided methods, so it cannot be a trait object).
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Uniform choice between several strategies producing the same type.
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `branches`; used by `prop_oneof!`.
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = super::index(rng, self.branches.len());
            self.branches[idx].sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy};

fn index(rng: &mut TestRng, len: usize) -> usize {
    debug_assert!(len > 0);
    if len == 1 {
        0
    } else {
        rng.gen_range(0..len)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, &str regex-lite
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_with(rng: &mut TestRng) -> $ty {
                rng.gen()
            }
        }
    )*};
}

arb_int!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_with(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning several magnitudes.
        let magnitude: f64 = rng.gen_range(-9.0f64..9.0);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * 10f64.powf(magnitude) * rng.gen::<f64>()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// Regex-lite string strategy: literals, `[a-z08]` classes, `{n}` /
/// `{m,n}` quantifiers.  Panics on unsupported pattern syntax.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let set: Vec<char> = if chars[i] == '[' {
            i += 1;
            let mut set = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad char range in pattern `{pattern}`");
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated `[` in pattern `{pattern}`");
            i += 1; // consume ']'
            set
        } else {
            assert!(
                !matches!(chars[i], '(' | ')' | '*' | '+' | '?' | '|' | '.'),
                "unsupported regex syntax `{}` in pattern `{pattern}`",
                chars[i]
            );
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {n} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated `{{` in pattern `{pattern}`"));
            let spec: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            out.push(set[index(rng, set.len())]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------------
// collection / option / sample modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Bounds for generated collection sizes: a fixed `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates ordered sets whose elements come from `element`.  The
    /// set may be smaller than the drawn size when duplicates collide.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for `Option<T>`: `None` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` values from `inner` or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform choice from a fixed list of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select on empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[super::index(rng, self.options.len())].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng| {
                    $crate::__prop_bindings!(__rng; $($params)*);
                    let __out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __out
                });
            }
        )*
    };
}

/// Expands one `proptest!` parameter list into `let` bindings; each
/// parameter is either `name: Type` (drawn from `any::<Type>()`) or
/// `pattern in strategy`.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg = $crate::strategy::Strategy::sample(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&$crate::any::<$ty>(), $rng);
        $crate::__prop_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__prop_bindings!($rng; $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The subset of names upstream's prelude exports that this workspace uses.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, Arbitrary, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic(1);
        for _ in 0..2000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::TestRng::deterministic(2);
        for _ in 0..500 {
            let s = Strategy::sample(&"[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = Strategy::sample(&"[A-Z][0-9]{3}", &mut rng);
            assert_eq!(s.len(), 4);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_uppercase());
            assert!(chars.all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn collection_sizes_respected() {
        let mut rng = crate::TestRng::deterministic(3);
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = Strategy::sample(&crate::collection::vec(0u32..5, 4usize), &mut rng);
            assert_eq!(exact.len(), 4);
            let s = Strategy::sample(&crate::collection::btree_set(0u64..100, 0..10), &mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::deterministic(4);
        let strat = prop_oneof![Just(1u8), Just(2u8), 5u8..8];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            seen.insert(Strategy::sample(&strat, &mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    proptest! {
        fn macro_smoke(x in 0u32..100, flag in any::<bool>(), v in crate::collection::vec(0i64..10, 0..5)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99, "x={x}");
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x + 1, x);
            let _ = flag;
        }
    }
}
