//! Offline stand-in for the `parking_lot` crate.
//!
//! The AFTA workspace is built in hermetic environments with no access to
//! crates.io, so the handful of `parking_lot` APIs the codebase relies on
//! are provided here over `std::sync` primitives.  The semantics mirror
//! `parking_lot` where they matter to callers:
//!
//! * `lock()`/`read()`/`write()` return guards directly (no poisoning
//!   `Result`); a poisoned std lock is transparently recovered, matching
//!   `parking_lot`'s poison-free behaviour.
//! * Guards deref to the protected value and release on drop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive. Poison-free analogue of
/// [`std::sync::Mutex`], mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, a panic in a previous critical section does not
    /// poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock. Poison-free analogue of [`std::sync::RwLock`],
/// mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
