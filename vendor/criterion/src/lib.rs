//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the AFTA benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`] with `iter`/`iter_batched`,
//! [`BenchmarkId`], [`BatchSize`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.  Instead of upstream's
//! statistical machinery it runs a short warm-up, then a fixed measuring
//! window, and prints mean wall-clock time per iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque optimisation barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_benchmark_id(), &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_benchmark_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; we do nothing).
    pub fn finish(self) {}

    fn run(&self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("  {id}: no measurement taken");
            return;
        }
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!(
            "  {id}: {} / iter ({} iters)",
            fmt_ns(per_iter),
            bencher.iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Scale batch size so clock reads don't dominate sub-ns routines.
        let batch = (warm_iters / 50).clamp(1, 1 << 20);
        let deadline = Instant::now() + self.measure;
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }

    /// Times `routine` over fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let batch = (warm_iters / 50).clamp(1, 1 << 16) as usize;
        let deadline = Instant::now() + self.measure;
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut inputs: Vec<I> = Vec::with_capacity(batch);
        while Instant::now() < deadline {
            inputs.clear();
            inputs.extend((0..batch).map(|_| setup()));
            let t0 = Instant::now();
            for input in inputs.drain(..) {
                black_box(routine(input));
            }
            elapsed += t0.elapsed();
            iters += batch as u64;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Hint for how much setup data `iter_batched` should build per batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Declares a benchmark group function, mirroring upstream's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.warm_up = Duration::from_millis(5);
        c.measure = Duration::from_millis(10);
        let mut g = c.benchmark_group("tiny");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<u64>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny(&mut c);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
