//! Property tests on the redundancy controller's safety envelope.

use afta_switchboard::{Decision, RedundancyController, RedundancyPolicy};
use afta_voting::dtof_max;
use proptest::prelude::*;

proptest! {
    /// Under ANY stream of dtof observations the controller keeps the
    /// replica count inside [min, max] and preserves odd parity.
    #[test]
    fn replica_count_stays_in_envelope(
        observations in proptest::collection::vec(0u32..6, 0..500),
        lower_after in 1u64..50,
    ) {
        let policy = RedundancyPolicy {
            lower_after,
            ..RedundancyPolicy::default()
        };
        let mut c = RedundancyController::new(policy);
        let mut n = policy.min;
        for dtof in observations {
            // Clamp the observed dtof into the feasible range for n.
            let dtof = dtof.min(dtof_max(n));
            if let Some(new_n) = c.observe(dtof, n).new_count() {
                n = new_n;
            }
            prop_assert!(n >= policy.min, "n={n} below min");
            prop_assert!(n <= policy.max, "n={n} above max");
            prop_assert_eq!(n % 2, 1, "parity lost: n={}", n);
        }
    }

    /// A raise is only ever issued on a critically low dtof, and a lower
    /// only after the configured quota of consecutive consensus rounds.
    #[test]
    fn decisions_match_the_control_law(
        observations in proptest::collection::vec(0u32..6, 0..300),
    ) {
        let policy = RedundancyPolicy {
            lower_after: 7,
            ..RedundancyPolicy::default()
        };
        let mut c = RedundancyController::new(policy);
        let mut n = policy.min;
        let mut consensus_run = 0u64;
        for dtof in observations {
            let dtof = dtof.min(dtof_max(n));
            let decision = c.observe(dtof, n);
            match decision {
                Decision::Raise { from, to } => {
                    prop_assert!(dtof <= policy.raise_threshold);
                    prop_assert_eq!(from, n);
                    prop_assert!(to > from);
                    consensus_run = 0;
                }
                Decision::Lower { from, to } => {
                    prop_assert_eq!(dtof, dtof_max(n), "lower requires consensus");
                    prop_assert!(consensus_run + 1 >= policy.lower_after);
                    prop_assert_eq!(from, n);
                    prop_assert!(to < from);
                    consensus_run = 0;
                }
                Decision::Hold => {
                    if dtof == dtof_max(n) && dtof > policy.raise_threshold {
                        consensus_run += 1;
                    } else {
                        consensus_run = 0;
                    }
                }
            }
            if let Some(new_n) = decision.new_count() {
                n = new_n;
            }
        }
    }

    /// The controller is a pure function of its observation history:
    /// identical streams yield identical decision sequences.
    #[test]
    fn controller_is_deterministic(
        observations in proptest::collection::vec((0u32..6, 0usize..4), 0..200),
    ) {
        let run = || {
            let mut c = RedundancyController::new(RedundancyPolicy {
                lower_after: 5,
                ..RedundancyPolicy::default()
            });
            let sizes = [3usize, 5, 7, 9];
            observations
                .iter()
                .map(|&(d, ni)| {
                    let n = sizes[ni];
                    c.observe(d.min(dtof_max(n)), n)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
