//! The §3.3 fault-injection experiments (Figs. 6 and 7).
//!
//! Each simulated time step is one voting round of a restoring organ
//! whose replicas fail independently with the probability the
//! [`EnvironmentProfile`] assigns to the current tick.  The round's dtof
//! feeds the [`RedundancyController`]; its decisions resize the organ.
//! Dwell time per redundancy degree is accounted exactly as in Fig. 7.

use afta_eventbus::Bus;
use afta_faultinject::EnvironmentProfile;
use afta_sim::stats::{Histogram, TimeWeighted};
use afta_sim::{SeedFactory, Tick};
use afta_telemetry::{Registry, TelemetryEvent};
use afta_voting::{dtof, majority_vote, RoundArena, RoundReport, VoteOutcome, VoteTelemetry};
use rand::Rng;

use crate::controller::{Decision, RedundancyController, RedundancyPolicy};

/// A disturbance reading, published on the event bus after every round —
/// the knowledge the Reflective Switchboards "deduct and publish".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisturbanceReading {
    /// The voting round's virtual time.
    pub tick: Tick,
    /// Replicas used.
    pub n: usize,
    /// Faulty replicas this round.
    pub faults: usize,
    /// The round's distance-to-failure.
    pub dtof: u32,
}

/// A redundancy adaptation, published on the event bus when it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyChange {
    /// When the change happened.
    pub tick: Tick,
    /// The decision applied.
    pub decision: Decision,
}

/// One sampled point of the Fig. 6 time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TracePoint {
    /// Virtual time of the sample.
    pub tick: Tick,
    /// Replica count in effect.
    pub n: usize,
    /// The round's dtof.
    pub dtof: u32,
    /// Faults injected into the round's replicas.
    pub faults: usize,
}

/// Configuration of a §3.3 experiment run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentConfig {
    /// Number of simulated time steps (the paper runs up to 65 million).
    pub steps: u64,
    /// Master seed.
    pub seed: u64,
    /// The disturbance environment.
    pub profile: EnvironmentProfile,
    /// The control law.
    pub policy: RedundancyPolicy,
    /// Sample the Fig. 6 trace every this many steps (0 = no periodic
    /// samples; adaptation events are always recorded).
    pub trace_stride: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            steps: 100_000,
            seed: 42,
            profile: EnvironmentProfile::cyclic_storms(200_000, 2_000, 0.000001, 0.08),
            policy: RedundancyPolicy::default(),
            trace_stride: 0,
        }
    }
}

/// Results of a §3.3 experiment run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentReport {
    /// Steps simulated.
    pub steps: u64,
    /// Dwell time per redundancy degree (Fig. 7's histogram).
    pub histogram: Histogram,
    /// Rounds whose voting found no majority — the dimensioning failures
    /// the scheme exists to avoid (the paper reports **zero**).
    pub voting_failures: u64,
    /// Total faults injected into replicas.
    pub faults_injected: u64,
    /// Raise adaptations.
    pub raises: u64,
    /// Lower adaptations.
    pub lowers: u64,
    /// The sampled Fig. 6 trace.
    pub trace: Vec<TracePoint>,
}

impl ExperimentReport {
    /// Fraction of time spent at the minimal redundancy degree — the
    /// paper's headline "99.92798 % of its execution time making use of
    /// the minimal degree of redundancy, namely 3".
    #[must_use]
    pub fn fraction_at_min(&self, min: usize) -> f64 {
        self.histogram.fraction(min as u64)
    }
}

/// Runs the experiment: a restoring organ under environmental fault
/// injection with autonomic redundancy dimensioning.
///
/// An optional [`Bus`] receives [`DisturbanceReading`]s and
/// [`RedundancyChange`]s, so external observers (e.g. the knowledge web)
/// can follow along.
///
/// # Panics
///
/// Panics when the policy is invalid.
#[must_use]
pub fn run_experiment(config: &ExperimentConfig, bus: Option<&Bus>) -> ExperimentReport {
    run_experiment_observed(config, bus, &Registry::disabled())
}

/// Bounds of the `switchboard.time_at_r` histogram for a policy: the
/// redundancy degrees the control law can visit (`min`, `min + step`, …,
/// `max`).
#[must_use]
pub fn redundancy_bounds(policy: &RedundancyPolicy) -> Vec<u64> {
    (policy.min..=policy.max)
        .step_by(policy.step.max(1))
        .map(|r| r as u64)
        .collect()
}

/// [`run_experiment`] with telemetry: identical simulation (same RNG
/// stream, same report), plus
///
/// * `voting.rounds` / `voting.failures` / the `voting.dtof` histogram
///   (via [`VoteTelemetry`], with dip and failed-round journal records);
/// * `switchboard.faults_injected` / `switchboard.raises` /
///   `switchboard.lowers` counters and the `switchboard.redundancy`
///   gauge;
/// * [`TelemetryEvent::RedundancyRaised`] / [`TelemetryEvent::RedundancyLowered`]
///   journal records for every adaptation;
/// * the `switchboard.time_at_r` histogram, loaded from the exact dwell
///   accounting so its per-degree buckets equal
///   [`ExperimentReport::histogram`]'s counts (Fig. 7's numbers).
///
/// # Panics
///
/// Panics when the policy is invalid.
#[must_use]
pub fn run_experiment_observed(
    config: &ExperimentConfig,
    bus: Option<&Bus>,
    telemetry: &Registry,
) -> ExperimentReport {
    let mut run = ExperimentRun::new(config);
    let _ = run.run_chunk(u64::MAX, bus, telemetry);
    run.into_report(telemetry)
}

/// A frozen, serialisable snapshot of an [`ExperimentRun`] at a step
/// boundary.  Feeding it to [`ExperimentRun::resume`] continues the run
/// bit-identically — the RNG state, control law, dwell accounting, and
/// trace are all captured, so an interrupted 65-million-step campaign
/// shard loses no work and changes no result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentCheckpoint {
    /// The configuration of the checkpointed run.
    pub config: ExperimentConfig,
    /// The first step the resumed run will simulate (`steps + 1` when the
    /// run had already finished).
    pub next_step: u64,
    /// The fault-stream RNG's internal state.
    pub rng_state: [u64; 4],
    /// The control law, mid-flight (streak counters included).
    pub controller: RedundancyController,
    /// Replica count in effect.
    pub n: usize,
    /// Dwell-time accounting up to the checkpoint.
    pub dwell: TimeWeighted,
    /// Failed voting rounds so far.
    pub voting_failures: u64,
    /// Faults injected so far.
    pub faults_injected: u64,
    /// The Fig. 6 trace accumulated so far.
    pub trace: Vec<TracePoint>,
}

/// The §3.3 experiment as a resumable state machine.
///
/// [`run_experiment`]/[`run_experiment_observed`] are thin wrappers that
/// drive one `ExperimentRun` to completion in a single chunk.  Campaign
/// shards instead advance a run in bounded chunks ([`ExperimentRun::run_chunk`]),
/// snapshot it at any step boundary ([`ExperimentRun::checkpoint`]), and
/// later pick it up again ([`ExperimentRun::resume`]) — with the
/// guarantee that any chunking of the step range produces a report
/// bit-identical to the uninterrupted run.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    config: ExperimentConfig,
    rng: rand::rngs::StdRng,
    controller: RedundancyController,
    n: usize,
    dwell: TimeWeighted,
    voting_failures: u64,
    faults_injected: u64,
    trace: Vec<TracePoint>,
    next_step: u64,
}

impl ExperimentRun {
    /// Starts a run at step 1.
    ///
    /// # Panics
    ///
    /// Panics when the policy is invalid.
    #[must_use]
    pub fn new(config: &ExperimentConfig) -> Self {
        let seeds = SeedFactory::new(config.seed);
        let controller = RedundancyController::new(config.policy);
        let n = config.policy.min;
        Self {
            config: config.clone(),
            rng: seeds.stream("replica-faults"),
            controller,
            n,
            dwell: TimeWeighted::new(Tick::ZERO, n as u64),
            voting_failures: 0,
            faults_injected: 0,
            trace: Vec::new(),
            next_step: 1,
        }
    }

    /// Reconstructs a run from a [`checkpoint`](ExperimentRun::checkpoint).
    ///
    /// # Panics
    ///
    /// Panics when the checkpoint's step cursor lies outside the
    /// configured step range.
    #[must_use]
    pub fn resume(checkpoint: ExperimentCheckpoint) -> Self {
        assert!(
            checkpoint.next_step >= 1 && checkpoint.next_step <= checkpoint.config.steps + 1,
            "checkpoint cursor {} outside 1..={}",
            checkpoint.next_step,
            checkpoint.config.steps + 1
        );
        Self {
            config: checkpoint.config,
            rng: rand::rngs::StdRng::from_state(checkpoint.rng_state),
            controller: checkpoint.controller,
            n: checkpoint.n,
            dwell: checkpoint.dwell,
            voting_failures: checkpoint.voting_failures,
            faults_injected: checkpoint.faults_injected,
            trace: checkpoint.trace,
            next_step: checkpoint.next_step,
        }
    }

    /// Snapshots the run at the current step boundary.
    #[must_use]
    pub fn checkpoint(&self) -> ExperimentCheckpoint {
        ExperimentCheckpoint {
            config: self.config.clone(),
            next_step: self.next_step,
            rng_state: self.rng.state(),
            controller: self.controller.clone(),
            n: self.n,
            dwell: self.dwell.clone(),
            voting_failures: self.voting_failures,
            faults_injected: self.faults_injected,
            trace: self.trace.clone(),
        }
    }

    /// The run's configuration.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The next step the run will simulate (1-based).
    #[must_use]
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Whether every configured step has been simulated.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.next_step > self.config.steps
    }

    /// Advances the run by at most `max_steps` steps and returns how many
    /// were actually simulated (fewer only when the run finishes).
    ///
    /// Semantics are exactly those of [`run_experiment_observed`]: any
    /// sequence of `run_chunk` calls covering the full step range
    /// produces the same report and the same telemetry as one
    /// uninterrupted call.
    pub fn run_chunk(&mut self, max_steps: u64, bus: Option<&Bus>, telemetry: &Registry) -> u64 {
        let vote_telemetry = VoteTelemetry::new(telemetry);
        let faults_counter = telemetry.counter("switchboard.faults_injected");
        let raises_counter = telemetry.counter("switchboard.raises");
        let lowers_counter = telemetry.counter("switchboard.lowers");
        let redundancy_gauge = telemetry.gauge("switchboard.redundancy");
        redundancy_gauge.set(self.n as i64);

        // The replicated method: replica i returns the correct answer
        // unless the environment corrupts it this round, in which case it
        // returns a value unique to the replica (faulty channels do not
        // collude).
        const CORRECT: u64 = 0xC0FFEE;

        let remaining = self.config.steps.saturating_add(1) - self.next_step;
        let todo = remaining.min(max_steps);

        // Per-chunk scratch, reused across every step of the chunk: the
        // ballot arena makes the voting round allocation-free, and
        // readings are batched so the bus sees one `publish_batch` per
        // flush instead of a topic lookup per step.  Readings are
        // flushed before any `RedundancyChange` publish, so the
        // reading-before-change order of the unbatched loop is preserved
        // for callbacks and per-topic FIFO alike.
        let mut arena: RoundArena<u64> = RoundArena::with_replicas(self.n);
        let mut reading_batch: Vec<DisturbanceReading> = Vec::new();

        for _ in 0..todo {
            let step = self.next_step;
            let tick = Tick(step);
            let p = self.config.profile.probability_at(tick);
            let n = self.n;

            // Draw per-replica faults and synthesise the vote vector.
            let votes = arena.begin_round();
            let mut faults = 0usize;
            for replica in 0..n {
                if p > 0.0 && self.rng.gen_bool(p) {
                    faults += 1;
                    votes.push(u64::MAX - replica as u64);
                } else {
                    votes.push(CORRECT);
                }
            }
            self.faults_injected += faults as u64;
            if faults > 0 {
                faults_counter.add(faults as u64);
            }

            let outcome = majority_vote(arena.ballots());
            let round_dtof = match &outcome {
                VoteOutcome::Majority { dissent, .. } => dtof(n, Some(*dissent)),
                VoteOutcome::NoMajority => {
                    self.voting_failures += 1;
                    dtof(n, None)
                }
            };
            vote_telemetry.observe(
                tick,
                &RoundReport {
                    n,
                    outcome,
                    dtof: round_dtof,
                },
            );

            if bus.is_some() {
                reading_batch.push(DisturbanceReading {
                    tick,
                    n,
                    faults,
                    dtof: round_dtof,
                });
            }

            let decision = self.controller.observe(round_dtof, n);
            let adapted = decision.new_count().is_some();
            if let Some(new_n) = decision.new_count() {
                self.n = new_n;
                self.dwell.transition(tick, new_n as u64);
                redundancy_gauge.set(new_n as i64);
                match decision {
                    Decision::Raise { from, to } => {
                        raises_counter.inc();
                        telemetry.record(tick, TelemetryEvent::RedundancyRaised { from, to });
                    }
                    Decision::Lower { from, to } => {
                        lowers_counter.inc();
                        telemetry.record(tick, TelemetryEvent::RedundancyLowered { from, to });
                    }
                    Decision::Hold => {}
                }
                if let Some(bus) = bus {
                    bus.publish_batch(reading_batch.drain(..));
                    bus.publish(RedundancyChange { tick, decision });
                }
            }

            let periodic =
                self.config.trace_stride > 0 && step.is_multiple_of(self.config.trace_stride);
            if periodic || adapted {
                self.trace.push(TracePoint {
                    tick,
                    n: self.n,
                    dtof: round_dtof,
                    faults,
                });
            }

            self.next_step += 1;
        }
        if let Some(bus) = bus {
            bus.publish_batch(reading_batch.drain(..));
        }
        todo
    }

    /// Closes the dwell accounting, mirrors the Fig. 7 histogram into the
    /// registry, and returns the report.
    ///
    /// # Panics
    ///
    /// Panics when steps remain — finish the run with
    /// [`ExperimentRun::run_chunk`] first.
    #[must_use]
    pub fn into_report(self, telemetry: &Registry) -> ExperimentReport {
        assert!(
            self.is_done(),
            "experiment has only reached step {} of {}",
            self.next_step.saturating_sub(1),
            self.config.steps
        );
        let histogram = self.dwell.finish(Tick(self.config.steps));

        // Mirror the exact dwell accounting into the registry so a
        // TelemetryReport reproduces Fig. 7's per-degree numbers verbatim.
        if telemetry.is_enabled() {
            let bounds = redundancy_bounds(&self.config.policy);
            let time_at_r = telemetry.histogram("switchboard.time_at_r", &bounds);
            for (degree, ticks) in histogram.iter() {
                time_at_r.record_n(degree, ticks);
            }
        }

        ExperimentReport {
            steps: self.config.steps,
            histogram,
            voting_failures: self.voting_failures,
            faults_injected: self.faults_injected,
            raises: self.controller.raises(),
            lowers: self.controller.lowers(),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afta_faultinject::Phase;

    fn quick_config(steps: u64, profile: EnvironmentProfile) -> ExperimentConfig {
        ExperimentConfig {
            steps,
            seed: 7,
            profile,
            policy: RedundancyPolicy {
                lower_after: 200,
                ..RedundancyPolicy::default()
            },
            trace_stride: 0,
        }
    }

    #[test]
    fn calm_environment_stays_at_minimum() {
        let cfg = quick_config(10_000, EnvironmentProfile::calm(0.0));
        let report = run_experiment(&cfg, None);
        assert_eq!(report.voting_failures, 0);
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.raises, 0);
        assert_eq!(report.lowers, 0);
        assert_eq!(report.histogram.count(3), 10_000);
        assert!((report.fraction_at_min(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storm_raises_redundancy_then_calm_lowers_it() {
        // Fig. 6's shape: calm, storm, calm.  The storm intensity is
        // chosen so the scheme can out-adapt it (the paper reports zero
        // clashes "despite heavy and diversified fault injection").
        let profile = EnvironmentProfile::new(
            vec![
                Phase::new(2_000, 0.00001),
                Phase::new(1_000, 0.08),
                Phase::new(7_000, 0.00001),
            ],
            false,
        );
        let cfg = quick_config(10_000, profile);
        let report = run_experiment(&cfg, None);
        assert!(report.raises > 0, "storm must trigger raises: {report:?}");
        assert!(report.lowers > 0, "calm must trigger lowers");
        assert!(
            report.histogram.count(5) + report.histogram.count(7) + report.histogram.count(9) > 0
        );
        // The final calm stretch returns the system to the minimum.
        let last = report.trace.last().unwrap();
        assert_eq!(last.n, 3, "trace: ...{last:?}");
        // (Essentially) no voting failure despite the storm: the scheme
        // adapts before the disturbance can defeat the vote.
        assert!(
            report.voting_failures <= 2,
            "failures: {}",
            report.voting_failures
        );
    }

    #[test]
    fn fig7_shape_minimal_redundancy_dominates() {
        // Long run with rare short storms: the system must spend the
        // overwhelming majority of time at r = 3.
        let profile = EnvironmentProfile::cyclic_storms(100_000, 500, 0.000001, 0.08);
        let mut cfg = quick_config(300_000, profile);
        cfg.policy.lower_after = 1000; // the paper's value
        let report = run_experiment(&cfg, None);
        let frac = report.fraction_at_min(3);
        assert!(frac > 0.95, "fraction at min: {frac}");
        assert!(report.voting_failures <= 2, "report: {report:?}");
        // All four degrees of Fig. 7 appear.
        for r in [3u64, 5, 7] {
            assert!(report.histogram.count(r) > 0, "degree {r} never used");
        }
    }

    #[test]
    fn bus_receives_readings_and_changes() {
        let bus = Bus::new();
        let readings = bus.subscribe::<DisturbanceReading>();
        let changes = bus.subscribe::<RedundancyChange>();
        let profile = EnvironmentProfile::new(
            vec![
                Phase::new(100, 0.0),
                Phase::new(100, 0.4),
                Phase::new(800, 0.0),
            ],
            false,
        );
        let cfg = quick_config(1_000, profile);
        let report = run_experiment(&cfg, Some(&bus));
        assert_eq!(readings.pending() as u64, cfg.steps);
        assert_eq!(changes.pending() as u64, report.raises + report.lowers);
        assert!(report.raises > 0);
    }

    #[test]
    fn determinism_per_seed() {
        let profile = EnvironmentProfile::cyclic_storms(500, 100, 0.001, 0.3);
        let a = run_experiment(&quick_config(5_000, profile.clone()), None);
        let b = run_experiment(&quick_config(5_000, profile), None);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_stride_samples_periodically() {
        let mut cfg = quick_config(1_000, EnvironmentProfile::calm(0.0));
        cfg.trace_stride = 100;
        let report = run_experiment(&cfg, None);
        assert_eq!(report.trace.len(), 10);
        assert_eq!(report.trace[0].tick, Tick(100));
    }

    #[test]
    fn observed_run_matches_plain_run_and_mirrors_report() {
        let profile = EnvironmentProfile::new(
            vec![
                Phase::new(500, 0.00001),
                Phase::new(200, 0.2),
                Phase::new(2_000, 0.00001),
            ],
            false,
        );
        let cfg = quick_config(2_700, profile);

        let plain = run_experiment(&cfg, None);
        let registry = Registry::new();
        let observed = run_experiment_observed(&cfg, None, &registry);
        // Telemetry must not perturb the simulation.
        assert_eq!(plain, observed);

        let report = registry.report();
        assert_eq!(report.counter("voting.rounds"), cfg.steps);
        assert_eq!(report.counter("voting.failures"), observed.voting_failures);
        assert_eq!(
            report.counter("switchboard.faults_injected"),
            observed.faults_injected
        );
        assert_eq!(report.counter("switchboard.raises"), observed.raises);
        assert_eq!(report.counter("switchboard.lowers"), observed.lowers);
        assert_eq!(report.gauges["switchboard.redundancy"], 3);

        // The time-at-r histogram equals the report's dwell accounting,
        // bucket for bucket.
        let time_at_r = report.histogram("switchboard.time_at_r").unwrap();
        for degree in redundancy_bounds(&cfg.policy) {
            assert_eq!(
                time_at_r.bucket_count(degree),
                Some(observed.histogram.count(degree)),
                "degree {degree}"
            );
        }
        assert_eq!(time_at_r.count, observed.histogram.total());

        // Every adaptation is journaled.
        let raised = report.journal_of_kind("redundancy-raised").count() as u64;
        let lowered = report.journal_of_kind("redundancy-lowered").count() as u64;
        assert_eq!(raised, observed.raises);
        assert_eq!(lowered, observed.lowers);
    }

    #[test]
    fn flight_recorder_is_deterministic_for_a_seeded_run() {
        // Two observed runs with the same seed must produce
        // byte-identical flight-recorder journals (same events, same
        // order, same ticks) — the recorder is a replayable account of
        // the deterministic §3.3 simulation.
        let journal_of = |seed: u64| {
            let profile = EnvironmentProfile::new(
                vec![
                    Phase::new(400, 0.0001),
                    Phase::new(150, 0.25),
                    Phase::new(1_500, 0.0001),
                ],
                false,
            );
            let mut cfg = quick_config(2_050, profile);
            cfg.seed = seed;
            let registry = Registry::new();
            let _ = run_experiment_observed(&cfg, None, &registry);
            registry.journal_jsonl()
        };

        let first = journal_of(99);
        let second = journal_of(99);
        assert!(!first.is_empty());
        assert_eq!(first, second);

        // Sequence numbers are gap-free and ticks monotone — the journal
        // replays in causal order.
        let records = afta_telemetry::FlightRecorder::from_jsonl(&first).unwrap();
        for (i, pair) in records.windows(2).enumerate() {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "gap after record {i}");
            assert!(pair[1].tick >= pair[0].tick, "tick regression at {i}");
        }

        // A different seed tells a different story.
        assert_ne!(journal_of(100), first);
    }

    #[test]
    fn chunked_run_equals_uninterrupted_run() {
        let profile = EnvironmentProfile::cyclic_storms(700, 150, 0.0005, 0.25);
        let mut cfg = quick_config(6_000, profile);
        cfg.trace_stride = 500;

        let whole = run_experiment(&cfg, None);

        // Uneven chunk sizes, including zero-length and oversized ones.
        let registry = Registry::disabled();
        let mut run = ExperimentRun::new(&cfg);
        for chunk in [1u64, 0, 999, 2_500, 1, u64::MAX] {
            let _ = run.run_chunk(chunk, None, &registry);
        }
        assert!(run.is_done());
        assert_eq!(run.run_chunk(10, None, &registry), 0);
        assert_eq!(run.into_report(&registry), whole);
    }

    #[test]
    fn checkpoint_resume_preserves_run_and_telemetry() {
        let profile = EnvironmentProfile::cyclic_storms(400, 120, 0.001, 0.3);
        let cfg = quick_config(3_000, profile);

        let whole_registry = Registry::new();
        let whole = run_experiment_observed(&cfg, None, &whole_registry);

        // Stop mid-run, serialise the checkpoint, resume elsewhere.
        let split_registry = Registry::new();
        let mut first = ExperimentRun::new(&cfg);
        let advanced = first.run_chunk(1_234, None, &split_registry);
        assert_eq!(advanced, 1_234);
        assert_eq!(first.next_step(), 1_235);
        let json = serde_json::to_string(&first.checkpoint()).unwrap();
        let checkpoint: ExperimentCheckpoint = serde_json::from_str(&json).unwrap();

        let mut second = ExperimentRun::resume(checkpoint);
        assert_eq!(second.config(), &cfg);
        let _ = second.run_chunk(u64::MAX, None, &split_registry);
        let report = second.into_report(&split_registry);

        assert_eq!(report, whole);
        assert_eq!(split_registry.report(), whole_registry.report());
    }

    #[test]
    #[should_panic(expected = "only reached step")]
    fn into_report_requires_completion() {
        let cfg = quick_config(100, EnvironmentProfile::calm(0.0));
        let mut run = ExperimentRun::new(&cfg);
        let _ = run.run_chunk(50, None, &Registry::disabled());
        let _ = run.into_report(&Registry::disabled());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn resume_rejects_out_of_range_cursor() {
        let cfg = quick_config(100, EnvironmentProfile::calm(0.0));
        let mut checkpoint = ExperimentRun::new(&cfg).checkpoint();
        checkpoint.next_step = 500;
        let _ = ExperimentRun::resume(checkpoint);
    }

    #[test]
    fn redundancy_bounds_follow_policy() {
        assert_eq!(
            redundancy_bounds(&RedundancyPolicy::default()),
            vec![3, 5, 7, 9]
        );
        let wide = RedundancyPolicy {
            max: 13,
            ..RedundancyPolicy::default()
        };
        assert_eq!(redundancy_bounds(&wide), vec![3, 5, 7, 9, 11, 13]);
    }

    #[test]
    fn histogram_total_equals_steps() {
        let profile = EnvironmentProfile::cyclic_storms(300, 200, 0.002, 0.3);
        let cfg = quick_config(20_000, profile);
        let report = run_experiment(&cfg, None);
        assert_eq!(report.histogram.total(), 20_000);
    }
}
