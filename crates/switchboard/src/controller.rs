//! The autonomic redundancy control law of §3.3.
//!
//! "When dtof is critically low, the Reflective Switchboards request the
//! replication system to increase the number of redundant replicas.  When
//! dtof is high for a certain amount of consecutive runs — 1000 runs in
//! our experiments — a request to lower the number of replicas is
//! issued."

use std::fmt;

use afta_voting::dtof_max;
use serde::{Deserialize, Serialize};

/// Parameters of the control law.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundancyPolicy {
    /// Raise redundancy when the round's dtof is at or below this value.
    pub raise_threshold: u32,
    /// Replicas added/removed per adaptation (2 keeps n odd).
    pub step: usize,
    /// Minimum replica count (the paper's experiments bottom out at 3).
    pub min: usize,
    /// Maximum replica count (the paper's Fig. 7 shows r up to 9).
    pub max: usize,
    /// Consecutive full-consensus rounds required before lowering (the
    /// paper uses 1000).
    pub lower_after: u64,
}

impl Default for RedundancyPolicy {
    fn default() -> Self {
        Self {
            raise_threshold: 1,
            step: 2,
            min: 3,
            max: 9,
            lower_after: 1000,
        }
    }
}

impl RedundancyPolicy {
    /// Non-panicking validity check: returns the first problem found, or
    /// `Ok(())` for a well-formed policy.  Static tools (`afta-lint`) use
    /// this to reject a configuration *before* construction would panic.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint when `min` is
    /// zero or even, `max < min`, `step` is zero or odd, or `lower_after`
    /// is zero.
    pub fn check(&self) -> Result<(), String> {
        if self.min < 1 {
            return Err("min must be at least 1".into());
        }
        if self.min % 2 != 1 {
            return Err("min must be odd for clean majorities".into());
        }
        if self.max < self.min {
            return Err("max must be >= min".into());
        }
        if self.step < 1 {
            return Err("step must be positive".into());
        }
        if !self.step.is_multiple_of(2) {
            return Err("step must be even to preserve parity".into());
        }
        if self.lower_after < 1 {
            return Err("lower_after must be positive".into());
        }
        Ok(())
    }

    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics when `min` is zero or even, `max < min`, `step` is zero or
    /// odd, or `lower_after` is zero.
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }
}

/// What the controller asks the replication system to do after a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Increase redundancy.
    Raise {
        /// Replica count before.
        from: usize,
        /// Replica count after.
        to: usize,
    },
    /// Decrease redundancy.
    Lower {
        /// Replica count before.
        from: usize,
        /// Replica count after.
        to: usize,
    },
    /// Keep the current dimensioning.
    Hold,
}

impl Decision {
    /// The new replica count, when the decision changes it.
    #[must_use]
    pub fn new_count(&self) -> Option<usize> {
        match *self {
            Decision::Raise { to, .. } | Decision::Lower { to, .. } => Some(to),
            Decision::Hold => None,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Raise { from, to } => write!(f, "raise {from} -> {to}"),
            Decision::Lower { from, to } => write!(f, "lower {from} -> {to}"),
            Decision::Hold => write!(f, "hold"),
        }
    }
}

/// The dtof-driven redundancy controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundancyController {
    policy: RedundancyPolicy,
    consensus_streak: u64,
    raises: u64,
    lowers: u64,
}

impl RedundancyController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics when the policy is invalid (see
    /// [`RedundancyPolicy::validate`]).
    #[must_use]
    pub fn new(policy: RedundancyPolicy) -> Self {
        policy.validate();
        Self {
            policy,
            consensus_streak: 0,
            raises: 0,
            lowers: 0,
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> RedundancyPolicy {
        self.policy
    }

    /// Total raise decisions issued.
    #[must_use]
    pub fn raises(&self) -> u64 {
        self.raises
    }

    /// Total lower decisions issued.
    #[must_use]
    pub fn lowers(&self) -> u64 {
        self.lowers
    }

    /// Current run of consecutive full-consensus rounds.
    #[must_use]
    pub fn consensus_streak(&self) -> u64 {
        self.consensus_streak
    }

    /// Feeds one voting round's dtof (with `n` the replica count that
    /// round) and returns the dimensioning decision.
    pub fn observe(&mut self, round_dtof: u32, n: usize) -> Decision {
        if round_dtof <= self.policy.raise_threshold {
            // Critically low distance: grow, if we can.
            self.consensus_streak = 0;
            if n < self.policy.max {
                let to = (n + self.policy.step).min(self.policy.max);
                self.raises += 1;
                return Decision::Raise { from: n, to };
            }
            return Decision::Hold;
        }
        if round_dtof == dtof_max(n) {
            // Full consensus: count toward the lowering quota.
            self.consensus_streak += 1;
            if self.consensus_streak >= self.policy.lower_after && n > self.policy.min {
                self.consensus_streak = 0;
                let to = n.saturating_sub(self.policy.step).max(self.policy.min);
                self.lowers += 1;
                return Decision::Lower { from: n, to };
            }
            return Decision::Hold;
        }
        // Mild dissent: neither critical nor consensus — stay put and
        // restart the quiet-period count.
        self.consensus_streak = 0;
        Decision::Hold
    }
}

impl Default for RedundancyController {
    fn default() -> Self {
        Self::new(RedundancyPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> RedundancyPolicy {
        RedundancyPolicy {
            lower_after: 5,
            ..RedundancyPolicy::default()
        }
    }

    #[test]
    fn default_policy_matches_paper() {
        let p = RedundancyPolicy::default();
        assert_eq!(p.lower_after, 1000);
        assert_eq!(p.min, 3);
        assert_eq!(p.max, 9);
        p.validate();
    }

    #[test]
    fn raises_on_critical_dtof() {
        let mut c = RedundancyController::new(RedundancyPolicy::default());
        // n=3, full dissent -> dtof 0 -> raise to 5.
        assert_eq!(c.observe(0, 3), Decision::Raise { from: 3, to: 5 });
        assert_eq!(c.observe(1, 5), Decision::Raise { from: 5, to: 7 });
        assert_eq!(c.raises(), 2);
    }

    #[test]
    fn holds_at_cap() {
        let mut c = RedundancyController::new(RedundancyPolicy::default());
        assert_eq!(c.observe(0, 9), Decision::Hold);
        assert_eq!(c.raises(), 0);
    }

    #[test]
    fn lowers_after_consecutive_consensus() {
        let mut c = RedundancyController::new(quick_policy());
        // n=5: dtof_max = 3.
        for _ in 0..4 {
            assert_eq!(c.observe(3, 5), Decision::Hold);
        }
        assert_eq!(c.observe(3, 5), Decision::Lower { from: 5, to: 3 });
        assert_eq!(c.lowers(), 1);
        assert_eq!(c.consensus_streak(), 0);
    }

    #[test]
    fn never_lowers_below_min() {
        let mut c = RedundancyController::new(quick_policy());
        for _ in 0..100 {
            assert_ne!(
                c.observe(2, 3),
                Decision::Lower { from: 3, to: 1 },
                "n=3 (dtof_max=2) must never lower below min"
            );
        }
        assert_eq!(c.lowers(), 0);
    }

    #[test]
    fn mild_dissent_resets_streak() {
        let mut c = RedundancyController::new(quick_policy());
        for _ in 0..4 {
            c.observe(4, 7); // consensus at n=7 (dtof_max = 4)
        }
        assert_eq!(c.consensus_streak(), 4);
        assert_eq!(c.observe(3, 7), Decision::Hold); // one dissenter
        assert_eq!(c.consensus_streak(), 0);
        // The quota starts over.
        for _ in 0..4 {
            assert_eq!(c.observe(4, 7), Decision::Hold);
        }
        assert_eq!(c.observe(4, 7), Decision::Lower { from: 7, to: 5 });
    }

    #[test]
    fn raise_resets_streak() {
        let mut c = RedundancyController::new(quick_policy());
        for _ in 0..4 {
            c.observe(3, 5);
        }
        c.observe(0, 5); // critical -> raise, streak reset
        assert_eq!(c.consensus_streak(), 0);
    }

    #[test]
    fn decision_accessors() {
        assert_eq!(Decision::Raise { from: 3, to: 5 }.new_count(), Some(5));
        assert_eq!(Decision::Lower { from: 5, to: 3 }.new_count(), Some(3));
        assert_eq!(Decision::Hold.new_count(), None);
        assert!(Decision::Raise { from: 3, to: 5 }
            .to_string()
            .contains("raise"));
        assert_eq!(Decision::Hold.to_string(), "hold");
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_min_rejected() {
        RedundancyPolicy {
            min: 4,
            ..RedundancyPolicy::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "preserve parity")]
    fn odd_step_rejected() {
        RedundancyPolicy {
            step: 1,
            ..RedundancyPolicy::default()
        }
        .validate();
    }

    #[test]
    fn check_reports_without_panicking() {
        assert!(RedundancyPolicy::default().check().is_ok());
        let bad = RedundancyPolicy {
            max: 1,
            ..RedundancyPolicy::default()
        };
        assert_eq!(bad.check().unwrap_err(), "max must be >= min");
        let bad = RedundancyPolicy {
            lower_after: 0,
            ..RedundancyPolicy::default()
        };
        assert!(bad.check().unwrap_err().contains("lower_after"));
    }

    #[test]
    fn default_controller() {
        let c = RedundancyController::default();
        assert_eq!(c.policy().min, 3);
    }

    #[test]
    fn serde_roundtrip() {
        let c = RedundancyController::new(quick_policy());
        let json = serde_json::to_string(&c).unwrap();
        let back: RedundancyController = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
