//! # afta-switchboard — Reflective Switchboards: autonomic redundancy
//!
//! The run-time strategy of the paper's §3.3: "isolate redundancy
//! management at architectural level, and use an autonomic computing
//! scheme to adjust it automatically".  After each voting round the
//! middleware "deducts and publishes a measure of the current
//! environmental disturbances" — the distance-to-failure — and revises
//! the number of replicas accordingly:
//!
//! * [`RedundancyController`] — the control law (raise when dtof is
//!   critically low; lower after 1000 consecutive full-consensus rounds);
//! * [`run_experiment`] — the fault-injection experiment driver behind
//!   Figs. 6 and 7, publishing [`DisturbanceReading`]s and
//!   [`RedundancyChange`]s on an event bus;
//! * [`ExperimentRun`] — the same experiment as a resumable state
//!   machine: advance in bounded chunks, [`ExperimentRun::checkpoint`]
//!   at any step boundary, resume bit-identically.  This is what lets
//!   `afta-campaign` shard and restart the paper-scale 65M-step runs.
//!
//! The resulting system "complies to Boulding's categories of 'Cells' and
//! 'Plants', i.e. open software systems with a self-maintaining
//! structure".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod controller;
pub mod experiment;

pub use ablation::{ablation_base, sweep_lower_after, sweep_raise_threshold, AblationPoint};
pub use controller::{Decision, RedundancyController, RedundancyPolicy};
pub use experiment::{
    redundancy_bounds, run_experiment, run_experiment_observed, DisturbanceReading,
    ExperimentCheckpoint, ExperimentConfig, ExperimentReport, ExperimentRun, RedundancyChange,
    TracePoint,
};
