//! Ablation sweeps over the §3.3 control-law parameters.
//!
//! The paper fixes two design choices without exploring them: the
//! *lowering quota* (1000 consecutive full-consensus rounds) and the
//! *raise threshold* (dtof "critically low").  These sweeps quantify the
//! trade-off each knob controls:
//!
//! * a small `lower_after` returns to minimal redundancy quickly (cheap)
//!   but risks being caught under-provisioned by the next disturbance;
//! * a high `raise_threshold` grows eagerly (safe) but burns redundancy
//!   on isolated transients.

use afta_faultinject::EnvironmentProfile;

use crate::controller::RedundancyPolicy;
use crate::experiment::{run_experiment, ExperimentConfig};

/// One point of an ablation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// The swept parameter's value.
    pub parameter: u64,
    /// Fraction of time at minimal redundancy (resource efficiency).
    pub fraction_at_min: f64,
    /// Voting failures over the run (dependability).
    pub voting_failures: u64,
    /// Raise + lower adaptations (control activity).
    pub adaptations: u64,
}

fn run_with_policy(
    base: &ExperimentConfig,
    policy: RedundancyPolicy,
    parameter: u64,
) -> AblationPoint {
    let config = ExperimentConfig {
        steps: base.steps,
        seed: base.seed,
        profile: base.profile.clone(),
        policy,
        trace_stride: 0,
    };
    let report = run_experiment(&config, None);
    AblationPoint {
        parameter,
        fraction_at_min: report.fraction_at_min(policy.min),
        voting_failures: report.voting_failures,
        adaptations: report.raises + report.lowers,
    }
}

/// Sweeps the lowering quota (`lower_after`).
#[must_use]
pub fn sweep_lower_after(base: &ExperimentConfig, values: &[u64]) -> Vec<AblationPoint> {
    values
        .iter()
        .map(|&v| {
            let policy = RedundancyPolicy {
                lower_after: v,
                ..base.policy
            };
            run_with_policy(base, policy, v)
        })
        .collect()
}

/// Sweeps the raise threshold (`raise_threshold`), i.e. how low dtof must
/// dip before redundancy grows.
#[must_use]
pub fn sweep_raise_threshold(base: &ExperimentConfig, values: &[u32]) -> Vec<AblationPoint> {
    values
        .iter()
        .map(|&v| {
            let policy = RedundancyPolicy {
                raise_threshold: v,
                ..base.policy
            };
            run_with_policy(base, policy, u64::from(v))
        })
        .collect()
}

/// A storm-heavy base configuration suitable for ablation comparisons
/// (storms frequent enough that every parameter choice is exercised).
#[must_use]
pub fn ablation_base(steps: u64, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        steps,
        seed,
        profile: EnvironmentProfile::cyclic_storms(8_000, 600, 0.00001, 0.08),
        policy: RedundancyPolicy::default(),
        trace_stride: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_after_trades_efficiency_for_stability() {
        let base = ablation_base(60_000, 3);
        let points = sweep_lower_after(&base, &[50, 500, 5_000]);
        assert_eq!(points.len(), 3);
        // A short quota lowers quickly: more time at the minimum...
        assert!(
            points[0].fraction_at_min > points[2].fraction_at_min,
            "{points:?}"
        );
        // ...and more control activity (raise/lower churn).
        assert!(points[0].adaptations >= points[2].adaptations, "{points:?}");
    }

    #[test]
    fn raise_threshold_zero_waits_for_failure() {
        let base = ablation_base(30_000, 3);
        let points = sweep_raise_threshold(&base, &[0, 1]);
        // Raising only on dtof = 0 (an actual voting failure) means every
        // storm first defeats a vote; threshold 1 reacts a step earlier
        // and eats strictly fewer failures.
        assert!(
            points[0].voting_failures > points[1].voting_failures,
            "{points:?}"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let base = ablation_base(20_000, 9);
        let a = sweep_lower_after(&base, &[100, 1000]);
        let b = sweep_lower_after(&base, &[100, 1000]);
        assert_eq!(a, b);
    }
}
