//! Deployment-time rebinding: the §3.1 strategy applied when software
//! *moves*.
//!
//! "Our position is that existing tools will have to be augmented so as
//! to minimize the risks of assumption failures e.g. when porting,
//! deploying, or moving software to a new machine."  The paper notes the
//! compile-time selection "could be embedded in the execution
//! environment", selecting "at deployment time ... which of the
//! design-time alternative assumptions has the highest chance to match
//! reality".
//!
//! [`DeploymentManager`] is that executive: it holds the method
//! assumption variable and, every time the software lands on a machine
//! (initial deployment, migration, DIMM swap), re-runs introspection +
//! knowledge lookup and rebinds if the new truth demands it.  Every
//! rebinding is recorded — the Ariane-4-to-5 move with the paperwork the
//! real one lacked.

use std::fmt;

use afta_core::AssumptionVar;
use afta_memsim::{BehaviorClass, MachineInventory, Severity};

use crate::knowledge::FailureKnowledgeBase;
use crate::select::{configure, ConfigureError, MethodKind};

/// One deployment decision in the manager's history.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentRecord {
    /// A caller-supplied name for the machine (hostname, rack slot, ...).
    pub machine: String,
    /// The worst behaviour class across the machine's banks (the binding
    /// must tolerate every bank).
    pub worst_behavior: BehaviorClass,
    /// The worst severity seen.
    pub worst_severity: Severity,
    /// The method bound for this machine.
    pub method: MethodKind,
    /// Whether the move changed the binding.
    pub rebound: bool,
}

impl fmt::Display for DeploymentRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: worst behavior {} ({:?}) -> {} ({})",
            self.machine,
            self.worst_behavior,
            self.worst_severity,
            self.method,
            if self.rebound { "REBOUND" } else { "unchanged" }
        )
    }
}

/// The deployment-time binding executive.
#[derive(Debug)]
pub struct DeploymentManager {
    kb: FailureKnowledgeBase,
    var: AssumptionVar<MethodKind>,
    history: Vec<DeploymentRecord>,
}

impl DeploymentManager {
    /// Creates a manager around a knowledge base.
    #[must_use]
    pub fn new(kb: FailureKnowledgeBase) -> Self {
        Self {
            kb,
            var: crate::select::method_assumption_var(),
            history: Vec::new(),
        }
    }

    /// The currently bound method, if any deployment has happened.
    #[must_use]
    pub fn current_method(&self) -> Option<MethodKind> {
        self.var.value().ok().copied()
    }

    /// The deployment history, oldest first.
    #[must_use]
    pub fn history(&self) -> &[DeploymentRecord] {
        &self.history
    }

    /// Deploys (or migrates) onto `machine`: introspects every bank,
    /// resolves the *worst* behaviour across them, and rebinds the method
    /// variable if needed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigureError`] when the machine has no banks the
    /// knowledge base can resolve, or no method tolerates the worst
    /// behaviour.
    pub fn deploy(
        &mut self,
        machine_name: impl Into<String>,
        machine: &MachineInventory,
    ) -> Result<&DeploymentRecord, ConfigureError> {
        let machine_name = machine_name.into();
        let mut worst: Option<(BehaviorClass, Severity)> = None;
        for bank in machine.banks() {
            let report = configure(&bank.spd, &self.kb)?;
            let candidate = (report.behavior, report.severity);
            worst = Some(match worst {
                None => candidate,
                Some(current) => {
                    // Behaviour dominates; severity breaks ties.
                    if (candidate.0, severity_rank(candidate.1))
                        > (current.0, severity_rank(current.1))
                    {
                        candidate
                    } else {
                        current
                    }
                }
            });
        }
        let (worst_behavior, worst_severity) =
            worst.ok_or_else(|| ConfigureError::UnknownModule {
                lot_key: format!("{machine_name}/<no banks>"),
            })?;

        let before = self.current_method();
        let method = *self
            .var
            .bind(worst_behavior.label(), &afta_core::MinCostBinder)
            .map_err(ConfigureError::NoTolerantMethod)?;
        let record = DeploymentRecord {
            machine: machine_name,
            worst_behavior,
            worst_severity,
            method,
            rebound: before != Some(method),
        };
        self.history.push(record);
        Ok(self.history.last().expect("just pushed"))
    }
}

fn severity_rank(s: Severity) -> u8 {
    match s {
        Severity::Benign => 0,
        Severity::Nominal => 1,
        Severity::Harsh => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afta_memsim::{MemoryTechnology, Spd};

    fn machine(tech: MemoryTechnology, model: &str) -> MachineInventory {
        MachineInventory::new().with_bank(
            "DIMM_A",
            Spd {
                vendor: "CE00".into(),
                model: model.into(),
                serial: "1".into(),
                lot: "L1".into(),
                size_mib: 512,
                clock_mhz: 533,
                width_bits: 64,
                technology: tech,
            },
        )
    }

    #[test]
    fn migration_from_cmos_to_sdram_rebinds() {
        // The Ariane scenario at the memory level: software validated on
        // a CMOS machine (f1 -> M1) moves to an SDRAM machine (f3 -> M3).
        let mut mgr = DeploymentManager::new(FailureKnowledgeBase::builtin());
        let rec = mgr
            .deploy("lab-cmos", &machine(MemoryTechnology::Cmos, "GENERIC"))
            .unwrap();
        assert_eq!(rec.method, MethodKind::M1);
        assert!(rec.rebound);

        let rec = mgr
            .deploy("prod-sdram", &machine(MemoryTechnology::Sdram, "GENERIC"))
            .unwrap();
        assert_eq!(rec.method, MethodKind::M3);
        assert!(rec.rebound);
        assert_eq!(mgr.current_method(), Some(MethodKind::M3));
        assert_eq!(mgr.history().len(), 2);
    }

    #[test]
    fn redeploy_on_same_class_does_not_rebind() {
        let mut mgr = DeploymentManager::new(FailureKnowledgeBase::builtin());
        mgr.deploy("a", &machine(MemoryTechnology::Sdram, "GENERIC"))
            .unwrap();
        let rec = mgr
            .deploy("b", &machine(MemoryTechnology::Sdram, "GENERIC"))
            .unwrap();
        assert!(!rec.rebound);
        assert_eq!(rec.method, MethodKind::M3);
    }

    #[test]
    fn worst_bank_wins() {
        // One benign CMOS bank plus the notorious f4 SDRAM part: the
        // binding must tolerate the worst.
        let mixed = MachineInventory::new()
            .with_bank(
                "DIMM_A",
                Spd {
                    vendor: "RAD".into(),
                    model: "HM6264".into(), // f0 in the builtin KB
                    serial: "1".into(),
                    lot: "L1".into(),
                    size_mib: 8,
                    clock_mhz: 100,
                    width_bits: 8,
                    technology: MemoryTechnology::Cmos,
                },
            )
            .with_bank(
                "DIMM_B",
                Spd {
                    vendor: "CE00".into(),
                    model: "K4H510838B".into(), // f4
                    serial: "2".into(),
                    lot: "L2".into(),
                    size_mib: 512,
                    clock_mhz: 533,
                    width_bits: 64,
                    technology: MemoryTechnology::Sdram,
                },
            );
        let mut mgr = DeploymentManager::new(FailureKnowledgeBase::builtin());
        let rec = mgr.deploy("mixed", &mixed).unwrap();
        assert_eq!(rec.worst_behavior, BehaviorClass::F4);
        assert_eq!(rec.method, MethodKind::M4);
    }

    #[test]
    fn empty_machine_is_an_error() {
        let mut mgr = DeploymentManager::new(FailureKnowledgeBase::builtin());
        let err = mgr.deploy("ghost", &MachineInventory::new()).unwrap_err();
        assert!(err.to_string().contains("no banks"));
        assert!(mgr.current_method().is_none());
    }

    #[test]
    fn unknown_module_propagates() {
        let mut mgr = DeploymentManager::new(FailureKnowledgeBase::new());
        assert!(mgr
            .deploy("x", &machine(MemoryTechnology::Cmos, "UNKNOWN"))
            .is_err());
    }

    #[test]
    fn record_display() {
        let mut mgr = DeploymentManager::new(FailureKnowledgeBase::builtin());
        let rec = mgr
            .deploy("host-1", &machine(MemoryTechnology::Cmos, "GENERIC"))
            .unwrap();
        let s = rec.to_string();
        assert!(s.contains("host-1"));
        assert!(s.contains("M1"));
        assert!(s.contains("REBOUND"));
    }
}
