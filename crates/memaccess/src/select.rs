//! The Autoconf-like configuration step of §3.1.
//!
//! "To compile the code on the target platform, an Autoconf-like toolset
//! is assumed to be available.  Special checking rules are coded in the
//! toolset making use of e.g. Serial Presence Detect to get access to
//! information related to the memory modules on the target computer. [...]
//! Once the most probable memory behavior **f** is retrieved, a method
//! `M_j` is selected to actually access memory on the target computer.
//! Selection is done as follows: first we isolate those methods that are
//! able to tolerate **f**, then we arrange them into a list ordered
//! according to some cost function [...]; finally we select the minimum
//! element of that list."
//!
//! [`configure`] is that step, built literally on
//! [`afta_core::AssumptionVar`] + [`afta_core::MinCostBinder`]: the five
//! methods are the design-time alternatives of an assumption variable
//! bound at compile time.

use std::fmt;

use afta_core::{Alternative, AssumptionVar, BindingError, BindingTime, MinCostBinder};
use afta_memsim::{BehaviorClass, FaultRates, Severity, SimMemory, SimMemoryConfig, Spd};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::knowledge::{FailureKnowledgeBase, MatchLevel};
use crate::methods::{AccessMethod, M0Raw, M1Ecc, M2EccRemap, MirroredEcc};

/// The five method families of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Raw access.
    M0,
    /// ECC + scrub-on-read.
    M1,
    /// ECC + write-verify + remapping.
    M2,
    /// ECC + mirroring (SEL recovery).
    M3,
    /// ECC + mirroring + scrubbing + SEFI recovery.
    M4,
}

impl MethodKind {
    /// All methods, cheapest first.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::M0,
        MethodKind::M1,
        MethodKind::M2,
        MethodKind::M3,
        MethodKind::M4,
    ];

    /// The paper's label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::M0 => "M0",
            MethodKind::M1 => "M1",
            MethodKind::M2 => "M2",
            MethodKind::M3 => "M3",
            MethodKind::M4 => "M4",
        }
    }

    /// Which behaviour classes the method tolerates.
    #[must_use]
    pub fn tolerates(self) -> &'static [BehaviorClass] {
        use BehaviorClass::{F0, F1, F2, F3, F4};
        match self {
            MethodKind::M0 => &[F0],
            MethodKind::M1 => &[F0, F1],
            MethodKind::M2 => &[F0, F1, F2],
            MethodKind::M3 => &[F0, F1, F3],
            MethodKind::M4 => &[F0, F1, F3, F4],
        }
    }

    /// The deterministic cost model: a weighted sum of the method's time
    /// overhead per access and its space overhead.  Lower is better; the
    /// ordering (M0 < M1 < M2 < M3 < M4) realises the paper's
    /// "proportional to the expenditure of resources".
    #[must_use]
    pub fn cost(self) -> f64 {
        let (time_factor, space_factor) = match self {
            MethodKind::M0 => (1.0, 1.0),
            MethodKind::M1 => (2.2, 2.0), // 2 physical accesses + decode
            MethodKind::M2 => (3.5, 2.3), // + verify read-back + spares
            MethodKind::M3 => (4.5, 4.0), // 2 modules, ECC on both
            MethodKind::M4 => (5.5, 4.0), // + scrubbing bandwidth
        };
        time_factor + space_factor
    }

    /// Instantiates the method over freshly created simulated modules of
    /// `module_size` physical bytes each, with fault processes matching
    /// `rates`.
    #[must_use]
    pub fn instantiate(
        self,
        module_size: usize,
        rates: FaultRates,
        seed: u64,
    ) -> Box<dyn AccessMethod> {
        let mk = |salt: u64| {
            let cfg = SimMemoryConfig {
                rates,
                chips: 4,
                ..SimMemoryConfig::pristine(module_size)
            };
            SimMemory::new(cfg, StdRng::seed_from_u64(seed ^ salt))
        };
        match self {
            MethodKind::M0 => Box::new(M0Raw::new(mk(0x51))),
            MethodKind::M1 => Box::new(M1Ecc::new(mk(0x52))),
            MethodKind::M2 => Box::new(M2EccRemap::new(mk(0x53))),
            MethodKind::M3 => Box::new(MirroredEcc::m3(mk(0x54), mk(0x55))),
            MethodKind::M4 => Box::new(MirroredEcc::m4(mk(0x56), mk(0x57), 256)),
        }
    }
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A declarative description of an access method — label, tolerated
/// behaviour classes, cost — detached from the executable implementation.
/// This is the form deployment descriptors and static tools (`afta-lint`)
/// reason over: the method set as *exposed knowledge* rather than code.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MethodProfile {
    /// The method's label, e.g. `"M3"`.
    pub label: String,
    /// Labels of the behaviour classes the method tolerates
    /// (`"f0"`..`"f4"`).
    pub tolerates: Vec<String>,
    /// The method's cost under the §3.1 cost function.
    pub cost: f64,
}

impl MethodKind {
    /// This method's declarative profile.
    #[must_use]
    pub fn profile(self) -> MethodProfile {
        MethodProfile {
            label: self.label().to_owned(),
            tolerates: self
                .tolerates()
                .iter()
                .map(|c| c.label().to_owned())
                .collect(),
            cost: self.cost(),
        }
    }
}

/// Profiles of the builtin §3.1 method set `M0..M4`, cheapest first.
#[must_use]
pub fn method_profiles() -> Vec<MethodProfile> {
    MethodKind::ALL
        .into_iter()
        .map(MethodKind::profile)
        .collect()
}

/// Why configuration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigureError {
    /// The knowledge base knows nothing about this module and no
    /// conservative default was allowed.
    UnknownModule {
        /// The module's lot key.
        lot_key: String,
    },
    /// No method tolerates the resolved behaviour (cannot happen with the
    /// builtin method set, which covers `f0..f4`).
    NoTolerantMethod(BindingError),
}

impl fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigureError::UnknownModule { lot_key } => {
                write!(f, "no failure knowledge for module {lot_key}")
            }
            ConfigureError::NoTolerantMethod(e) => write!(f, "selection failed: {e}"),
        }
    }
}

impl std::error::Error for ConfigureError {}

/// The outcome of the §3.1 configuration step.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigReport {
    /// The module that was introspected.
    pub spd: Spd,
    /// The behaviour the knowledge base resolved.
    pub behavior: BehaviorClass,
    /// The observed severity for that population.
    pub severity: Severity,
    /// At which granularity the knowledge matched.
    pub match_level: MatchLevel,
    /// The selected method.
    pub method: MethodKind,
    /// The selected method's cost.
    pub cost: f64,
    /// Labels of all methods that tolerated the behaviour (the "ordered
    /// list" before taking the minimum), cheapest first.
    pub tolerant_methods: Vec<&'static str>,
}

impl fmt::Display for ConfigReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: behavior {} ({:?} match) -> method {} (cost {:.1}; tolerant: {})",
            self.spd.model_key(),
            self.behavior,
            self.match_level,
            self.method,
            self.cost,
            self.tolerant_methods.join(", ")
        )
    }
}

/// Builds the compile-time assumption variable holding the five methods.
#[must_use]
pub fn method_assumption_var() -> AssumptionVar<MethodKind> {
    let mut var = AssumptionVar::new("mem-access-method", BindingTime::CompileTime);
    for kind in MethodKind::ALL {
        var.push(Alternative::new(
            kind.label(),
            kind,
            kind.tolerates().iter().map(|c| c.label()),
            kind.cost(),
        ));
    }
    var
}

/// Runs the full §3.1 flow: introspect the module (`spd`), consult the
/// knowledge base, and bind the method assumption variable with the
/// min-cost-among-tolerant rule.
///
/// # Errors
///
/// Returns [`ConfigureError::UnknownModule`] when the knowledge base has
/// no record at any granularity for the module.
pub fn configure(spd: &Spd, kb: &FailureKnowledgeBase) -> Result<ConfigReport, ConfigureError> {
    let (record, match_level) = kb
        .lookup(spd)
        .ok_or_else(|| ConfigureError::UnknownModule {
            lot_key: spd.lot_key(),
        })?;

    let mut var = method_assumption_var();
    let behavior_label = record.behavior.label();
    let method = *var
        .bind(behavior_label, &MinCostBinder)
        .map_err(ConfigureError::NoTolerantMethod)?;

    let mut tolerant: Vec<MethodKind> = MethodKind::ALL
        .into_iter()
        .filter(|m| m.tolerates().contains(&record.behavior))
        .collect();
    tolerant.sort_by(|a, b| a.cost().total_cmp(&b.cost()));

    Ok(ConfigReport {
        spd: spd.clone(),
        behavior: record.behavior,
        severity: record.severity,
        match_level,
        method,
        cost: method.cost(),
        tolerant_methods: tolerant.into_iter().map(MethodKind::label).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use afta_memsim::MemoryTechnology;

    fn spd(vendor: &str, model: &str, lot: &str, tech: MemoryTechnology) -> Spd {
        Spd {
            vendor: vendor.into(),
            model: model.into(),
            serial: "S".into(),
            lot: lot.into(),
            size_mib: 512,
            clock_mhz: 533,
            width_bits: 64,
            technology: tech,
        }
    }

    #[test]
    fn costs_are_strictly_increasing() {
        for w in MethodKind::ALL.windows(2) {
            assert!(w[0].cost() < w[1].cost(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn every_class_has_a_tolerant_method() {
        for class in BehaviorClass::ALL {
            assert!(
                MethodKind::ALL
                    .iter()
                    .any(|m| m.tolerates().contains(&class)),
                "{class} uncovered"
            );
        }
    }

    #[test]
    fn selection_picks_cheapest_tolerant_per_class() {
        let kb = FailureKnowledgeBase::builtin();
        let cases = [
            ("RAD", "HM6264", MemoryTechnology::Cmos, MethodKind::M0), // f0
            ("ANY", "NEW", MemoryTechnology::Cmos, MethodKind::M1),    // f1 default
            ("CE00", "CMOS-AG4", MemoryTechnology::Cmos, MethodKind::M2), // f2
            ("ANY", "NEW", MemoryTechnology::Sdram, MethodKind::M3),   // f3 default
            (
                "CE00",
                "K4H510838B",
                MemoryTechnology::Sdram,
                MethodKind::M4,
            ), // f4
        ];
        for (vendor, model, tech, expected) in cases {
            let report = configure(&spd(vendor, model, "L9", tech), &kb).unwrap();
            assert_eq!(report.method, expected, "{vendor}/{model}");
            // The tolerant list is ordered by cost and starts with the
            // selected method.
            assert_eq!(report.tolerant_methods[0], expected.label());
        }
    }

    #[test]
    fn bad_lot_changes_severity_not_method() {
        let kb = FailureKnowledgeBase::builtin();
        let report = configure(
            &spd("CE00", "K4H510838B", "L2004-17", MemoryTechnology::Sdram),
            &kb,
        )
        .unwrap();
        assert_eq!(report.method, MethodKind::M4);
        assert_eq!(report.severity, Severity::Harsh);
        assert_eq!(report.match_level, MatchLevel::Lot);
    }

    #[test]
    fn unknown_module_is_an_error() {
        let kb = FailureKnowledgeBase::new();
        let err = configure(&spd("A", "B", "C", MemoryTechnology::Cmos), &kb).unwrap_err();
        assert_eq!(
            err,
            ConfigureError::UnknownModule {
                lot_key: "A/B/C".into()
            }
        );
        assert!(err.to_string().contains("A/B/C"));
    }

    #[test]
    fn assumption_var_is_compile_time_bound() {
        let var = method_assumption_var();
        assert_eq!(var.binding_time(), BindingTime::CompileTime);
        assert_eq!(var.alternatives().len(), 5);
    }

    #[test]
    fn selected_method_actually_tolerates_its_class() {
        // End-to-end: instantiate the selected method over a device with
        // the resolved behaviour and verify data survives a workload.
        let kb = FailureKnowledgeBase::builtin();
        for tech in [MemoryTechnology::Cmos, MemoryTechnology::Sdram] {
            let spd = spd("ANY", "NEW", "L1", tech);
            let report = configure(&spd, &kb).unwrap();
            let rates = FaultRates::for_class(report.behavior, report.severity);
            let mut m = report.method.instantiate(512, rates, 99);
            let n = m.logical_size().min(64);
            for i in 0..n {
                m.store(i, &[i as u8]).unwrap();
            }
            for _ in 0..20 {
                for i in 0..n {
                    let mut b = [0u8; 1];
                    m.load(i, &mut b).unwrap();
                    assert_eq!(b[0], i as u8, "method {} under {tech}", report.method);
                }
            }
        }
    }

    #[test]
    fn report_display_mentions_selection() {
        let kb = FailureKnowledgeBase::builtin();
        let report = configure(&spd("ANY", "NEW", "L1", MemoryTechnology::Sdram), &kb).unwrap();
        let s = report.to_string();
        assert!(s.contains("f3"));
        assert!(s.contains("M3"));
    }

    #[test]
    fn labels() {
        assert_eq!(MethodKind::M0.label(), "M0");
        assert_eq!(MethodKind::M4.to_string(), "M4");
    }

    #[test]
    fn profiles_mirror_the_method_set() {
        let profiles = method_profiles();
        assert_eq!(profiles.len(), MethodKind::ALL.len());
        for (profile, kind) in profiles.iter().zip(MethodKind::ALL) {
            assert_eq!(profile.label, kind.label());
            assert_eq!(profile.cost, kind.cost());
            assert_eq!(profile.tolerates.len(), kind.tolerates().len());
        }
        // The profile is exposed knowledge: it survives serialisation.
        let json = serde_json::to_string(&profiles).unwrap();
        let back: Vec<MethodProfile> = serde_json::from_str(&json).unwrap();
        assert_eq!(profiles, back);
    }
}
