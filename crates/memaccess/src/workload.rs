//! A deterministic randomized workload harness for access methods.
//!
//! Used by the `table_memaccess` regenerator, the examples, and the test
//! suites to measure what actually matters about a method on given
//! hardware: *silently wrong reads* (the failure the paper's Ariane
//! analysis dreads most) and *lost accesses* (untolerated device errors).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::methods::AccessMethod;

/// Parameters of a workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of logical slots exercised (clamped to the method's size).
    pub slots: usize,
    /// Number of operations (each a read or a write at a random slot).
    pub operations: u64,
    /// Fraction of operations that are writes, in percent.
    pub write_percent: u32,
    /// Seed for the operation stream.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            slots: 256,
            operations: 10_000,
            write_percent: 30,
            seed: 42,
        }
    }
}

/// What the workload observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkloadReport {
    /// Reads that returned successfully but with the wrong byte — silent
    /// corruption that reached the application.
    pub wrong_reads: u64,
    /// Operations that failed with an access error.
    pub lost_accesses: u64,
    /// Total reads performed.
    pub reads: u64,
    /// Total writes performed.
    pub writes: u64,
}

impl WorkloadReport {
    /// True when the method served every operation correctly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.wrong_reads == 0 && self.lost_accesses == 0
    }
}

/// Runs the workload against `method`: writes maintain a shadow model,
/// reads are checked against it.
///
/// # Panics
///
/// Panics if `write_percent > 100` or the method has no logical space.
#[must_use]
pub fn run_workload(method: &mut dyn AccessMethod, config: &WorkloadConfig) -> WorkloadReport {
    assert!(config.write_percent <= 100, "write_percent is a percentage");
    let slots = config.slots.min(method.logical_size());
    assert!(slots > 0, "method has no logical space");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = vec![0u8; slots];
    let mut report = WorkloadReport::default();

    // Deterministic initialisation pass.
    for (slot, cell) in model.iter_mut().enumerate() {
        let byte = (slot % 251) as u8;
        if method.store(slot, &[byte]).is_ok() {
            *cell = byte;
        } else {
            report.lost_accesses += 1;
        }
        report.writes += 1;
    }

    for _ in 0..config.operations {
        let slot = rng.gen_range(0..slots);
        if rng.gen_range(0u32..100) < config.write_percent {
            let byte: u8 = rng.gen();
            report.writes += 1;
            if method.store(slot, &[byte]).is_ok() {
                model[slot] = byte;
            } else {
                report.lost_accesses += 1;
            }
        } else {
            report.reads += 1;
            let mut buf = [0u8; 1];
            match method.load(slot, &mut buf) {
                Ok(()) if buf[0] != model[slot] => report.wrong_reads += 1,
                Ok(()) => {}
                Err(_) => report.lost_accesses += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::MethodKind;
    use afta_memsim::{BehaviorClass, FaultRates, Severity};

    #[test]
    fn pristine_hardware_is_clean_for_every_method() {
        for kind in MethodKind::ALL {
            let mut m = kind.instantiate(2048, FaultRates::none(), 3);
            let report = run_workload(m.as_mut(), &WorkloadConfig::default());
            assert!(report.is_clean(), "{kind}: {report:?}");
            assert!(report.reads > 0 && report.writes > 0);
        }
    }

    #[test]
    fn m0_is_dirty_on_harsh_f4_but_m4_is_clean() {
        let rates = FaultRates::for_class(BehaviorClass::F4, Severity::Harsh);
        let config = WorkloadConfig {
            operations: 5_000,
            ..WorkloadConfig::default()
        };
        let mut m0 = MethodKind::M0.instantiate(2048, rates, 3);
        let r0 = run_workload(m0.as_mut(), &config);
        assert!(!r0.is_clean(), "M0 must corrupt under f4/Harsh: {r0:?}");

        let mut m4 = MethodKind::M4.instantiate(2048, rates, 3);
        let r4 = run_workload(m4.as_mut(), &config);
        assert!(r4.is_clean(), "M4 must survive f4/Harsh: {r4:?}");
    }

    #[test]
    fn workload_is_deterministic() {
        let rates = FaultRates::for_class(BehaviorClass::F1, Severity::Harsh);
        let run = || {
            let mut m = MethodKind::M1.instantiate(1024, rates, 9);
            run_workload(m.as_mut(), &WorkloadConfig::default())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn invalid_write_percent_rejected() {
        let mut m = MethodKind::M0.instantiate(64, FaultRates::none(), 1);
        let _ = run_workload(
            m.as_mut(),
            &WorkloadConfig {
                write_percent: 101,
                ..WorkloadConfig::default()
            },
        );
    }
}
