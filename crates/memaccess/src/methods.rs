//! The fault-tolerant memory access methods `M0..M4` of §3.1.
//!
//! "For each assumption `f_i` a diverse set of memory access methods `M_i`
//! is designed.  With the exception of `M_0`, each `M_i` is a
//! fault-tolerant version specifically designed to tolerate the memory
//! modules' failure modes assumed in `f_i`."
//!
//! | Method | Tolerates | Mechanism |
//! |--------|-----------|-----------|
//! | `M0`   | `f0`      | raw passthrough |
//! | `M1`   | `f0 f1`   | per-byte SEC-DED ECC + scrub-on-read |
//! | `M2`   | `f0 f1 f2`| ECC + write-verify + bad-cell remapping to a spare area |
//! | `M3`   | `f0 f1 f3`| ECC + full mirroring across two modules + SEL recovery |
//! | `M4`   | `f0 f1 f3 f4` | ECC + mirroring + periodic scrubbing + SEFI power-reset recovery |

use std::collections::BTreeMap;
use std::fmt;

use afta_memsim::{MemoryDevice, MemoryError, SimMemory};

use crate::ecc::{self, Decoded};

/// Errors surfaced by an access method (after its internal tolerance
/// mechanisms are exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// Logical address beyond the method's address space.
    OutOfBounds {
        /// The offending logical address.
        addr: usize,
        /// The logical size.
        size: usize,
    },
    /// Data at this logical address is lost beyond recovery.
    Uncorrectable {
        /// The logical address.
        addr: usize,
    },
    /// The underlying device failed in a way the method does not tolerate.
    Device(MemoryError),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::OutOfBounds { addr, size } => {
                write!(f, "logical address {addr} out of bounds (size {size})")
            }
            AccessError::Uncorrectable { addr } => {
                write!(f, "data at logical address {addr} is unrecoverable")
            }
            AccessError::Device(e) => write!(f, "untolerated device failure: {e}"),
        }
    }
}

impl std::error::Error for AccessError {}

impl From<MemoryError> for AccessError {
    fn from(e: MemoryError) -> Self {
        AccessError::Device(e)
    }
}

/// Operation counters every method keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MethodStats {
    /// Logical bytes read.
    pub reads: u64,
    /// Logical bytes written.
    pub writes: u64,
    /// Single-bit errors corrected by ECC.
    pub corrected: u64,
    /// Bytes rebuilt from the mirror module.
    pub rebuilds: u64,
    /// Logical slots remapped to the spare area.
    pub remaps: u64,
    /// Power resets issued to recover SEL/SEFI.
    pub power_resets: u64,
    /// Full scrubbing passes completed.
    pub scrub_passes: u64,
}

/// Uniform interface of the access methods: a byte-addressed logical
/// store/load API over one or more simulated memory modules.
pub trait AccessMethod: Send {
    /// The paper's label, `"M0"`..`"M4"`.
    fn label(&self) -> &'static str;

    /// Size of the logical address space in bytes.
    fn logical_size(&self) -> usize;

    /// Stores `data` starting at logical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] when the range is out of bounds or an
    /// untolerated device failure occurs.
    fn store(&mut self, addr: usize, data: &[u8]) -> Result<(), AccessError>;

    /// Loads `buf.len()` bytes starting at logical address `addr`.
    ///
    /// # Errors
    ///
    /// As for [`AccessMethod::store`], plus
    /// [`AccessError::Uncorrectable`] when stored data is lost beyond the
    /// method's recovery ability.
    fn load(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), AccessError>;

    /// Runs one maintenance pass (scrubbing / rebuild).  Default: no-op.
    ///
    /// # Errors
    ///
    /// Methods that scrub may surface untolerated device failures.
    fn maintain(&mut self) -> Result<(), AccessError> {
        Ok(())
    }

    /// Operation counters.
    fn stats(&self) -> MethodStats;

    /// Mutable access to the underlying memory devices, for fault
    /// injection by the scenario fuzzer (bit flips, SEFIs, power
    /// resets applied mid-run).  Default: none exposed.
    fn devices_mut(&mut self) -> Vec<&mut SimMemory> {
        Vec::new()
    }
}

fn check_range(addr: usize, len: usize, size: usize) -> Result<(), AccessError> {
    if addr.checked_add(len).is_none_or(|end| end > size) {
        return Err(AccessError::OutOfBounds { addr, size });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// M0 — raw passthrough
// ---------------------------------------------------------------------

/// `M0`: direct access, no tolerance.  Correct (and cheapest) under `f0`.
#[derive(Debug)]
pub struct M0Raw {
    dev: SimMemory,
    stats: MethodStats,
}

impl M0Raw {
    /// Wraps a device.
    #[must_use]
    pub fn new(dev: SimMemory) -> Self {
        Self {
            dev,
            stats: MethodStats::default(),
        }
    }
}

impl AccessMethod for M0Raw {
    fn label(&self) -> &'static str {
        "M0"
    }

    fn logical_size(&self) -> usize {
        self.dev.size()
    }

    fn store(&mut self, addr: usize, data: &[u8]) -> Result<(), AccessError> {
        check_range(addr, data.len(), self.logical_size())?;
        for (i, &b) in data.iter().enumerate() {
            self.dev.write(addr + i, b)?;
            self.stats.writes += 1;
        }
        Ok(())
    }

    fn load(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), AccessError> {
        check_range(addr, buf.len(), self.logical_size())?;
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.dev.read(addr + i)?;
            self.stats.reads += 1;
        }
        Ok(())
    }

    fn stats(&self) -> MethodStats {
        self.stats
    }

    fn devices_mut(&mut self) -> Vec<&mut SimMemory> {
        vec![&mut self.dev]
    }
}

// ---------------------------------------------------------------------
// ECC pair layout shared by M1/M2 (data at 2i, check at 2i+1)
// ---------------------------------------------------------------------

fn ecc_write(dev: &mut SimMemory, slot: usize, byte: u8) -> Result<(), MemoryError> {
    let (d, c) = ecc::encode_pair(byte);
    dev.write(2 * slot, d)?;
    dev.write(2 * slot + 1, c)
}

fn ecc_read(dev: &mut SimMemory, slot: usize) -> Result<Decoded, MemoryError> {
    let d = dev.read(2 * slot)?;
    let c = dev.read(2 * slot + 1)?;
    Ok(ecc::decode(d, c))
}

// ---------------------------------------------------------------------
// M1 — ECC + scrub-on-read
// ---------------------------------------------------------------------

/// `M1`: SEC-DED ECC per logical byte with write-back scrubbing on
/// corrected reads.  Tolerates the CMOS-like transient flips of `f1`.
#[derive(Debug)]
pub struct M1Ecc {
    dev: SimMemory,
    slots: usize,
    stats: MethodStats,
}

impl M1Ecc {
    /// Wraps a device; logical size is half the physical size.
    #[must_use]
    pub fn new(dev: SimMemory) -> Self {
        let slots = dev.size() / 2;
        Self {
            dev,
            slots,
            stats: MethodStats::default(),
        }
    }

    fn load_slot(&mut self, slot: usize) -> Result<u8, AccessError> {
        match ecc_read(&mut self.dev, slot)? {
            Decoded::Clean(b) => Ok(b),
            Decoded::Corrected(b) => {
                // Scrub-on-read: re-write the healthy codeword so the next
                // flip does not accumulate into a double error.
                self.stats.corrected += 1;
                ecc_write(&mut self.dev, slot, b)?;
                Ok(b)
            }
            Decoded::Uncorrectable => Err(AccessError::Uncorrectable { addr: slot }),
        }
    }
}

impl AccessMethod for M1Ecc {
    fn label(&self) -> &'static str {
        "M1"
    }

    fn logical_size(&self) -> usize {
        self.slots
    }

    fn store(&mut self, addr: usize, data: &[u8]) -> Result<(), AccessError> {
        check_range(addr, data.len(), self.slots)?;
        for (i, &b) in data.iter().enumerate() {
            ecc_write(&mut self.dev, addr + i, b)?;
            self.stats.writes += 1;
        }
        Ok(())
    }

    fn load(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), AccessError> {
        check_range(addr, buf.len(), self.slots)?;
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.load_slot(addr + i)?;
            self.stats.reads += 1;
        }
        Ok(())
    }

    fn maintain(&mut self) -> Result<(), AccessError> {
        for slot in 0..self.slots {
            let _ = self.load_slot(slot)?;
        }
        self.stats.scrub_passes += 1;
        Ok(())
    }

    fn stats(&self) -> MethodStats {
        self.stats
    }

    fn devices_mut(&mut self) -> Vec<&mut SimMemory> {
        vec![&mut self.dev]
    }
}

// ---------------------------------------------------------------------
// M2 — ECC + write-verify + remap
// ---------------------------------------------------------------------

/// `M2`: like `M1`, plus write-verify with remapping of slots whose cells
/// are permanently stuck (`f2`) into a reserved spare area.
#[derive(Debug)]
pub struct M2EccRemap {
    dev: SimMemory,
    /// Logical slots exposed to the user.
    logical_slots: usize,
    /// Total slots including spares.
    total_slots: usize,
    /// logical slot -> physical slot (only for remapped slots).
    remap: BTreeMap<usize, usize>,
    next_spare: usize,
    stats: MethodStats,
}

impl M2EccRemap {
    /// Fraction of slots reserved as spares: 1/8.
    const SPARE_DIVISOR: usize = 8;

    /// Wraps a device; 1/8 of the (ECC-halved) capacity is reserved for
    /// remapping.
    #[must_use]
    pub fn new(dev: SimMemory) -> Self {
        let total_slots = dev.size() / 2;
        let spare = (total_slots / Self::SPARE_DIVISOR).max(1);
        let logical_slots = total_slots.saturating_sub(spare);
        Self {
            dev,
            logical_slots,
            total_slots,
            remap: BTreeMap::new(),
            next_spare: logical_slots,
            stats: MethodStats::default(),
        }
    }

    fn physical_slot(&self, logical: usize) -> usize {
        self.remap.get(&logical).copied().unwrap_or(logical)
    }

    /// Writes with verify; on persistent mismatch remaps to a spare slot.
    fn store_slot(&mut self, logical: usize, byte: u8) -> Result<(), AccessError> {
        let mut slot = self.physical_slot(logical);
        loop {
            ecc_write(&mut self.dev, slot, byte)?;
            // Verify: the codeword must read back *clean*.  A corrected
            // read right after a write means a cell is stuck — the defect
            // would permanently consume the ECC's single-error budget, so
            // the slot must be remapped.
            let ok = matches!(
                ecc_read(&mut self.dev, slot)?,
                Decoded::Clean(v) if v == byte
            );
            if ok {
                return Ok(());
            }
            // Retry once in place (the miscompare may have been a
            // transient flip, which a rewrite heals).
            ecc_write(&mut self.dev, slot, byte)?;
            if matches!(ecc_read(&mut self.dev, slot)?, Decoded::Clean(v) if v == byte) {
                return Ok(());
            }
            // Persistent: remap to the next spare slot and try there.
            if self.next_spare >= self.total_slots {
                return Err(AccessError::Uncorrectable { addr: logical });
            }
            slot = self.next_spare;
            self.next_spare += 1;
            self.remap.insert(logical, slot);
            self.stats.remaps += 1;
        }
    }
}

impl AccessMethod for M2EccRemap {
    fn label(&self) -> &'static str {
        "M2"
    }

    fn logical_size(&self) -> usize {
        self.logical_slots
    }

    fn store(&mut self, addr: usize, data: &[u8]) -> Result<(), AccessError> {
        check_range(addr, data.len(), self.logical_slots)?;
        for (i, &b) in data.iter().enumerate() {
            self.store_slot(addr + i, b)?;
            self.stats.writes += 1;
        }
        Ok(())
    }

    fn load(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), AccessError> {
        check_range(addr, buf.len(), self.logical_slots)?;
        for (i, out) in buf.iter_mut().enumerate() {
            let logical = addr + i;
            let slot = self.physical_slot(logical);
            match ecc_read(&mut self.dev, slot)? {
                Decoded::Clean(b) => *out = b,
                Decoded::Corrected(b) => {
                    self.stats.corrected += 1;
                    // Scrub through the verify/remap path so a stuck bit
                    // discovered on read also gets remapped.
                    self.store_slot(logical, b)?;
                    *out = b;
                }
                Decoded::Uncorrectable => return Err(AccessError::Uncorrectable { addr: logical }),
            }
            self.stats.reads += 1;
        }
        Ok(())
    }

    fn maintain(&mut self) -> Result<(), AccessError> {
        // Walk every logical slot through the verify/remap-aware load
        // path: corrected codewords get re-written, and slots whose cells
        // went stuck since the last pass get remapped.
        for logical in 0..self.logical_slots {
            let slot = self.physical_slot(logical);
            match ecc_read(&mut self.dev, slot)? {
                Decoded::Clean(_) => {}
                Decoded::Corrected(b) => {
                    self.stats.corrected += 1;
                    self.store_slot(logical, b)?;
                }
                Decoded::Uncorrectable => return Err(AccessError::Uncorrectable { addr: logical }),
            }
        }
        self.stats.scrub_passes += 1;
        Ok(())
    }

    fn stats(&self) -> MethodStats {
        self.stats
    }

    fn devices_mut(&mut self) -> Vec<&mut SimMemory> {
        vec![&mut self.dev]
    }
}

// ---------------------------------------------------------------------
// M3 / M4 — ECC + mirroring across two modules
// ---------------------------------------------------------------------

/// Mirrored, ECC-protected access across two memory modules.
///
/// * `M3` (`sefi_recovery = false`, no auto-scrub): survives SEL — a
///   latched chip fails reads on the primary, the mirror serves the data,
///   the primary is power-reset and rebuilt.
/// * `M4` (`sefi_recovery = true`, periodic scrubbing): additionally rides
///   out SEFI halts and keeps SEU accumulation below the ECC's correction
///   capability.
#[derive(Debug)]
pub struct MirroredEcc {
    a: SimMemory,
    b: SimMemory,
    slots: usize,
    sefi_recovery: bool,
    /// Automatic scrub every `interval` logical operations (None = never).
    scrub_interval: Option<u64>,
    ops_since_scrub: u64,
    /// Set when a SEL power-reset wiped module contents: the module must
    /// be rebuilt from its partner before its data can be trusted again
    /// (a freshly zeroed pair decodes as a *clean* 0x00!).
    dirty_a: bool,
    dirty_b: bool,
    label: &'static str,
    stats: MethodStats,
}

impl MirroredEcc {
    /// Builds `M3`.
    ///
    /// # Panics
    ///
    /// Panics if the modules differ in size.
    #[must_use]
    pub fn m3(a: SimMemory, b: SimMemory) -> Self {
        Self::build(a, b, false, None, "M3")
    }

    /// Builds `M4` with a scrub every `scrub_interval` operations.
    ///
    /// # Panics
    ///
    /// Panics if the modules differ in size.
    #[must_use]
    pub fn m4(a: SimMemory, b: SimMemory, scrub_interval: u64) -> Self {
        Self::build(a, b, true, Some(scrub_interval), "M4")
    }

    fn build(
        a: SimMemory,
        b: SimMemory,
        sefi_recovery: bool,
        scrub_interval: Option<u64>,
        label: &'static str,
    ) -> Self {
        assert_eq!(a.size(), b.size(), "mirror modules must match in size");
        let slots = a.size() / 2;
        Self {
            a,
            b,
            slots,
            sefi_recovery,
            scrub_interval,
            ops_since_scrub: 0,
            dirty_a: false,
            dirty_b: false,
            label,
            stats: MethodStats::default(),
        }
    }

    /// One ECC read with SEL/SEFI handling on a single module.  Returns
    /// `Ok(None)` when the module cannot currently serve the slot; sets
    /// `*dirty` when a SEL reset wiped the module's contents.
    fn try_read_module(
        dev: &mut SimMemory,
        dirty: &mut bool,
        slot: usize,
        sefi_recovery: bool,
        stats: &mut MethodStats,
    ) -> Result<Option<Decoded>, AccessError> {
        loop {
            match ecc_read(dev, slot) {
                Ok(d) => return Ok(Some(d)),
                Err(MemoryError::DeviceHalted) if sefi_recovery => {
                    dev.power_reset();
                    stats.power_resets += 1;
                    // SEFI retains data; retry after reset.
                }
                Err(MemoryError::ChipLatchedUp { .. }) => {
                    // The data on that chip is gone; reset so the chip is
                    // usable for the rebuild, and report "cannot serve".
                    dev.power_reset();
                    *dirty = true;
                    stats.power_resets += 1;
                    return Ok(None);
                }
                Err(MemoryError::DeviceHalted) => return Ok(None),
                Err(e @ MemoryError::OutOfBounds { .. }) => return Err(AccessError::Device(e)),
            }
        }
    }

    fn write_module(
        dev: &mut SimMemory,
        dirty: &mut bool,
        slot: usize,
        byte: u8,
        sefi_recovery: bool,
        stats: &mut MethodStats,
    ) -> Result<bool, AccessError> {
        loop {
            match ecc_write(dev, slot, byte) {
                Ok(()) => return Ok(true),
                Err(MemoryError::DeviceHalted) if sefi_recovery => {
                    dev.power_reset();
                    stats.power_resets += 1;
                }
                Err(MemoryError::ChipLatchedUp { .. }) => {
                    dev.power_reset();
                    *dirty = true;
                    stats.power_resets += 1;
                    // After the reset the chip accepts writes again; one
                    // more attempt.
                    match ecc_write(dev, slot, byte) {
                        Ok(()) => return Ok(true),
                        Err(_) => return Ok(false),
                    }
                }
                Err(MemoryError::DeviceHalted) => return Ok(false),
                Err(e @ MemoryError::OutOfBounds { .. }) => return Err(AccessError::Device(e)),
            }
        }
    }

    /// Copies every slot decodable on the source module onto the
    /// destination — the post-SEL rebuild.  A freshly wiped module would
    /// otherwise serve "clean" zero bytes, because an all-zero (data,
    /// check) pair is a valid codeword.
    fn rebuild(
        src: &mut SimMemory,
        dst: &mut SimMemory,
        src_dirty: &mut bool,
        dst_dirty: &mut bool,
        slots: usize,
        sefi_recovery: bool,
        stats: &mut MethodStats,
    ) -> Result<(), AccessError> {
        for slot in 0..slots {
            let decoded = Self::try_read_module(src, src_dirty, slot, sefi_recovery, stats)?;
            if let Some(v) = decoded.and_then(Decoded::value) {
                let _ = Self::write_module(dst, dst_dirty, slot, v, sefi_recovery, stats)?;
            }
        }
        stats.rebuilds += 1;
        Ok(())
    }

    /// Rebuilds whichever module a SEL reset wiped, from its partner.
    fn settle(&mut self) -> Result<(), AccessError> {
        let sefi = self.sefi_recovery;
        if self.dirty_a && !self.dirty_b {
            self.dirty_a = false;
            Self::rebuild(
                &mut self.b,
                &mut self.a,
                &mut self.dirty_b,
                &mut self.dirty_a,
                self.slots,
                sefi,
                &mut self.stats,
            )?;
        } else if self.dirty_b && !self.dirty_a {
            self.dirty_b = false;
            Self::rebuild(
                &mut self.a,
                &mut self.b,
                &mut self.dirty_a,
                &mut self.dirty_b,
                self.slots,
                sefi,
                &mut self.stats,
            )?;
        }
        // Both dirty at once means simultaneous SEL on both modules —
        // data is genuinely lost; leave the flags cleared and let reads
        // report what they find.
        if self.dirty_a && self.dirty_b {
            self.dirty_a = false;
            self.dirty_b = false;
        }
        Ok(())
    }

    fn load_slot(&mut self, slot: usize) -> Result<u8, AccessError> {
        let sefi = self.sefi_recovery;
        let primary =
            Self::try_read_module(&mut self.a, &mut self.dirty_a, slot, sefi, &mut self.stats)?;
        let value = match primary {
            Some(Decoded::Clean(v)) if !self.dirty_a => Some(v),
            Some(Decoded::Corrected(v)) if !self.dirty_a => {
                self.stats.corrected += 1;
                let _ = Self::write_module(
                    &mut self.a,
                    &mut self.dirty_a,
                    slot,
                    v,
                    sefi,
                    &mut self.stats,
                )?;
                Some(v)
            }
            _ => None,
        };
        let result = match value {
            Some(v) => Ok(v),
            None => {
                // Primary lost the slot: serve from the mirror.
                let mirror = Self::try_read_module(
                    &mut self.b,
                    &mut self.dirty_b,
                    slot,
                    sefi,
                    &mut self.stats,
                )?;
                match mirror.and_then(Decoded::value) {
                    Some(v) if !self.dirty_b => Ok(v),
                    _ => Err(AccessError::Uncorrectable { addr: slot }),
                }
            }
        };
        self.settle()?;
        result
    }

    fn store_slot(&mut self, slot: usize, byte: u8) -> Result<(), AccessError> {
        let sefi = self.sefi_recovery;
        let ok_a = Self::write_module(
            &mut self.a,
            &mut self.dirty_a,
            slot,
            byte,
            sefi,
            &mut self.stats,
        )?;
        let ok_b = Self::write_module(
            &mut self.b,
            &mut self.dirty_b,
            slot,
            byte,
            sefi,
            &mut self.stats,
        )?;
        self.settle()?;
        // Re-assert the fresh value after any rebuild (the rebuild copies
        // the partner's state, which already includes this write on the
        // surviving module).
        if ok_a || ok_b {
            Ok(())
        } else {
            Err(AccessError::Uncorrectable { addr: slot })
        }
    }

    fn auto_scrub(&mut self) -> Result<(), AccessError> {
        if let Some(interval) = self.scrub_interval {
            self.ops_since_scrub += 1;
            if self.ops_since_scrub >= interval {
                self.ops_since_scrub = 0;
                self.maintain()?;
            }
        }
        Ok(())
    }
}

impl AccessMethod for MirroredEcc {
    fn label(&self) -> &'static str {
        self.label
    }

    fn logical_size(&self) -> usize {
        self.slots
    }

    fn store(&mut self, addr: usize, data: &[u8]) -> Result<(), AccessError> {
        check_range(addr, data.len(), self.slots)?;
        for (i, &b) in data.iter().enumerate() {
            self.store_slot(addr + i, b)?;
            self.stats.writes += 1;
            self.auto_scrub()?;
        }
        Ok(())
    }

    fn load(&mut self, addr: usize, buf: &mut [u8]) -> Result<(), AccessError> {
        check_range(addr, buf.len(), self.slots)?;
        for (i, out) in buf.iter_mut().enumerate() {
            *out = self.load_slot(addr + i)?;
            self.stats.reads += 1;
            self.auto_scrub()?;
        }
        Ok(())
    }

    fn maintain(&mut self) -> Result<(), AccessError> {
        // Walk every slot: any readable copy repairs the other.
        for slot in 0..self.slots {
            let _ = self.load_slot(slot)?;
        }
        self.stats.scrub_passes += 1;
        Ok(())
    }

    fn stats(&self) -> MethodStats {
        self.stats
    }

    fn devices_mut(&mut self) -> Vec<&mut SimMemory> {
        vec![&mut self.a, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afta_memsim::{BehaviorClass, FaultRates, Severity, SimMemoryConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dev(size: usize, rates: FaultRates, seed: u64) -> SimMemory {
        let cfg = SimMemoryConfig {
            rates,
            chips: 4,
            ..SimMemoryConfig::pristine(size)
        };
        SimMemory::new(cfg, StdRng::seed_from_u64(seed))
    }

    fn pristine(size: usize) -> SimMemory {
        dev(size, FaultRates::none(), 1)
    }

    #[test]
    fn m0_roundtrip_on_pristine() {
        let mut m = M0Raw::new(pristine(64));
        assert_eq!(m.label(), "M0");
        assert_eq!(m.logical_size(), 64);
        m.store(0, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        m.load(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(m.stats().writes, 3);
        assert_eq!(m.stats().reads, 3);
    }

    #[test]
    fn m0_bounds() {
        let mut m = M0Raw::new(pristine(8));
        assert!(matches!(
            m.store(7, &[0, 0]),
            Err(AccessError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(matches!(
            m.load(8, &mut buf),
            Err(AccessError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn m1_corrects_injected_flip() {
        let mut raw = pristine(64);
        // Slot 5 -> data at physical 10.
        let mut m = M1Ecc::new({
            raw.write(0, 0).unwrap();
            raw
        });
        m.store(5, &[0xAB]).unwrap();
        // Reach inside: flip a data bit.
        // (We rebuild the device path via an injected flip.)
        // M1Ecc owns the device, so inject through a fresh method instead:
        // easier to test via the stochastic path below; here use maintain.
        let mut buf = [0u8; 1];
        m.load(5, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
    }

    #[test]
    fn m1_survives_f1_workload() {
        let rates = FaultRates::for_class(BehaviorClass::F1, Severity::Harsh);
        let mut m = M1Ecc::new(dev(256, rates, 11));
        let n = m.logical_size();
        for i in 0..n {
            m.store(i, &[i as u8]).unwrap();
        }
        // Many read passes; every one must return the stored data.
        for _ in 0..50 {
            for i in 0..n {
                let mut b = [0u8; 1];
                m.load(i, &mut b).unwrap();
                assert_eq!(b[0], i as u8);
            }
        }
        assert!(m.stats().corrected > 0, "harsh f1 should exercise ECC");
    }

    #[test]
    fn m0_corrupts_under_f1() {
        // The control experiment: raw access under the same workload
        // returns wrong data eventually — the clash the paper warns about.
        let rates = FaultRates::for_class(BehaviorClass::F1, Severity::Harsh);
        let mut m = M0Raw::new(dev(256, rates, 11));
        for i in 0..256 {
            m.store(i, &[i as u8]).unwrap();
        }
        let mut corrupt = 0;
        for _ in 0..50 {
            for i in 0..256 {
                let mut b = [0u8; 1];
                m.load(i, &mut b).unwrap();
                if b[0] != i as u8 {
                    corrupt += 1;
                }
            }
        }
        assert!(corrupt > 0, "raw access should corrupt under f1");
    }

    #[test]
    fn m2_remaps_stuck_cells() {
        let mut raw = pristine(256);
        // Stick a bit in the data byte of logical slot 3 (physical addr 6).
        raw.inject_stuck_at(6, 0, true);
        let mut m = M2EccRemap::new(raw);
        // Store a byte whose bit 0 must be 0: the in-place write fails
        // verification and the slot gets remapped.
        m.store(3, &[0b1111_1110]).unwrap();
        assert_eq!(m.stats().remaps, 1);
        let mut b = [0u8; 1];
        m.load(3, &mut b).unwrap();
        assert_eq!(b[0], 0b1111_1110);
        // And it keeps working for subsequent writes.
        m.store(3, &[0x01]).unwrap();
        m.load(3, &mut b).unwrap();
        assert_eq!(b[0], 0x01);
    }

    #[test]
    fn m2_survives_f2_workload() {
        let rates = FaultRates::for_class(BehaviorClass::F2, Severity::Harsh);
        let mut m = M2EccRemap::new(dev(1024, rates, 13));
        let n = 64; // work on a subset; spares must outlast the stuck cells
        for round in 0..20u32 {
            for i in 0..n {
                let v = (i as u8).wrapping_add(round as u8);
                m.store(i, &[v]).unwrap();
                let mut b = [0u8; 1];
                m.load(i, &mut b).unwrap();
                assert_eq!(b[0], v, "round {round} slot {i}");
            }
        }
    }

    #[test]
    fn m2_logical_size_reserves_spares() {
        let m = M2EccRemap::new(pristine(256));
        // 128 slots total, 16 spares -> 112 logical.
        assert_eq!(m.logical_size(), 112);
        assert_eq!(m.label(), "M2");
    }

    #[test]
    fn m3_survives_injected_sel() {
        let mut a = pristine(256);
        let b = pristine(256);
        a.write(0, 0).unwrap();
        let mut m = MirroredEcc::m3(a, b);
        assert_eq!(m.label(), "M3");
        let n = m.logical_size();
        for i in 0..n {
            m.store(i, &[0x5A]).unwrap();
        }
        // Latch up every chip of the primary in turn via the stochastic
        // path: here we emulate SEL by an f3 workload instead.
        let rates = FaultRates::for_class(BehaviorClass::F3, Severity::Harsh);
        let a = dev(256, rates, 21);
        let b = pristine(256);
        let mut m = MirroredEcc::m3(a, b);
        let n = m.logical_size();
        for i in 0..n {
            m.store(i, &[i as u8]).unwrap();
        }
        for _ in 0..100 {
            for i in 0..n {
                let mut buf = [0u8; 1];
                m.load(i, &mut buf).unwrap();
                assert_eq!(buf[0], i as u8);
            }
        }
        assert!(
            m.stats().rebuilds > 0 || m.stats().power_resets > 0,
            "harsh f3 should trigger SEL handling: {:?}",
            m.stats()
        );
    }

    #[test]
    fn m4_survives_f4_workload() {
        let rates = FaultRates::for_class(BehaviorClass::F4, Severity::Harsh);
        let a = dev(256, rates, 31);
        let b = dev(256, rates, 32);
        let mut m = MirroredEcc::m4(a, b, 64);
        assert_eq!(m.label(), "M4");
        let n = m.logical_size();
        for i in 0..n {
            m.store(i, &[i as u8]).unwrap();
        }
        for _ in 0..100 {
            for i in 0..n {
                let mut buf = [0u8; 1];
                m.load(i, &mut buf).unwrap();
                assert_eq!(buf[0], i as u8);
            }
        }
        let s = m.stats();
        assert!(s.scrub_passes > 0, "auto-scrub should have run: {s:?}");
    }

    #[test]
    #[should_panic(expected = "match in size")]
    fn mirror_size_mismatch_rejected() {
        let _ = MirroredEcc::m3(pristine(64), pristine(128));
    }

    #[test]
    fn maintain_scrubs_m1() {
        let mut m = M1Ecc::new(pristine(64));
        for i in 0..m.logical_size() {
            m.store(i, &[7]).unwrap();
        }
        m.maintain().unwrap();
        assert_eq!(m.stats().scrub_passes, 1);
    }

    #[test]
    fn maintain_scrubs_m2_cleanly() {
        let mut m = M2EccRemap::new(pristine(256));
        for i in 0..m.logical_size() {
            m.store(i, &[0x3C]).unwrap();
        }
        m.maintain().unwrap();
        assert_eq!(m.stats().scrub_passes, 1);
        assert_eq!(m.stats().remaps, 0);
    }

    #[test]
    fn m2_remapped_slot_survives_maintenance() {
        // A stuck bit on the data byte of logical slot 2 (physical
        // address 4) forces a remap at store time; maintain() must keep
        // serving the remapped slot.
        let mut dev = pristine(256);
        dev.inject_stuck_at(4, 1, true);
        let mut m = M2EccRemap::new(dev);
        m.store(2, &[0b0000_0000]).unwrap();
        assert_eq!(m.stats().remaps, 1);
        m.maintain().unwrap();
        let mut b = [0u8; 1];
        m.load(2, &mut b).unwrap();
        assert_eq!(b[0], 0);
    }

    #[test]
    fn access_error_displays() {
        assert!(AccessError::OutOfBounds { addr: 9, size: 8 }
            .to_string()
            .contains("out of bounds"));
        assert!(AccessError::Uncorrectable { addr: 1 }
            .to_string()
            .contains("unrecoverable"));
        assert!(AccessError::Device(MemoryError::DeviceHalted)
            .to_string()
            .contains("SEFI"));
    }

    #[test]
    fn default_maintain_is_noop() {
        let mut m = M0Raw::new(pristine(8));
        m.maintain().unwrap();
        assert_eq!(m.stats().scrub_passes, 0);
    }
}
