//! Hamming SEC-DED error-correcting code, built from scratch.
//!
//! The fault-tolerant access methods `M1..M4` need a way to *detect and
//! correct* the single-bit upsets that CMOS and SDRAM memories suffer
//! (§3.1).  This module implements the classic single-error-correcting,
//! double-error-detecting Hamming code over one data byte: 8 data bits
//! protected by 4 Hamming check bits plus 1 overall parity bit, i.e. a
//! (13,8) SEC-DED code.  The codeword is stored as the raw data byte plus
//! a 5-bit check byte, which maps directly onto the byte-oriented
//! [`afta_memsim::SimMemory`] device.
//!
//! Guarantees (proven by the property tests below):
//!
//! * any **single** bit error across the 13 stored bits is corrected;
//! * any **double** bit error is detected (reported uncorrectable), never
//!   miscorrected into silently wrong data.

use std::fmt;

/// Number of Hamming check bits (positions 1, 2, 4, 8).
const HAMMING_BITS: usize = 4;

/// Positions (1-based) of the 8 data bits inside the 12-bit Hamming frame.
const DATA_POSITIONS: [usize; 8] = [3, 5, 6, 7, 9, 10, 11, 12];

/// Outcome of decoding a protected byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// The codeword was clean.
    Clean(u8),
    /// One bit error was found and corrected.
    Corrected(u8),
    /// Two (or more detectable) bit errors: the data is unrecoverable from
    /// this codeword alone.
    Uncorrectable,
}

impl Decoded {
    /// The recovered byte, if any.
    #[must_use]
    pub fn value(self) -> Option<u8> {
        match self {
            Decoded::Clean(b) | Decoded::Corrected(b) => Some(b),
            Decoded::Uncorrectable => None,
        }
    }

    /// Whether a correction was applied.
    #[must_use]
    pub fn was_corrected(self) -> bool {
        matches!(self, Decoded::Corrected(_))
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decoded::Clean(b) => write!(f, "clean ({b:#04x})"),
            Decoded::Corrected(b) => write!(f, "corrected ({b:#04x})"),
            Decoded::Uncorrectable => write!(f, "uncorrectable"),
        }
    }
}

/// Builds the 12-bit Hamming frame (positions 1..=12) for a data byte,
/// with check bits zeroed.
fn frame_of(data: u8) -> u16 {
    let mut frame: u16 = 0;
    for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
        if data & (1 << i) != 0 {
            frame |= 1 << (pos - 1);
        }
    }
    frame
}

/// Extracts the data byte from a 12-bit frame.
fn data_of(frame: u16) -> u8 {
    let mut data: u8 = 0;
    for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
        if frame & (1 << (pos - 1)) != 0 {
            data |= 1 << i;
        }
    }
    data
}

/// Computes the 4 Hamming check bits for a frame (data bits only).
fn check_bits(frame: u16) -> u8 {
    let mut check: u8 = 0;
    for c in 0..HAMMING_BITS {
        let mask = 1usize << c; // parity position 1, 2, 4, 8
        let mut parity = 0u16;
        for pos in 1..=12usize {
            // Parity bit c covers positions whose index has bit c set,
            // excluding the parity positions themselves (they are zero in
            // `frame`).
            if pos & mask != 0 && frame & (1 << (pos - 1)) != 0 {
                parity ^= 1;
            }
        }
        if parity != 0 {
            check |= 1 << c;
        }
    }
    check
}

/// Encodes a data byte into its 5-bit check byte: bits 0..=3 are the
/// Hamming check bits, bit 4 is the overall parity of data + check bits.
#[must_use]
pub fn encode(data: u8) -> u8 {
    let frame = frame_of(data);
    let check = check_bits(frame);
    let overall = (u32::from(data).count_ones() + u32::from(check).count_ones()) as u8 & 1;
    check | (overall << 4)
}

/// Decodes a (data, check) pair, correcting a single-bit error anywhere in
/// the 13 stored bits.
///
/// Bits 5..=7 of `check` are ignored (the storage byte's unused bits may
/// rot freely without harming the code).
#[must_use]
pub fn decode(data: u8, check: u8) -> Decoded {
    let check = check & 0x1F;
    let stored_check = check & 0x0F;
    let stored_overall = (check >> 4) & 1;

    // Reassemble the full 12-bit frame including the stored check bits at
    // their positions, then compute the syndrome.
    let mut frame = frame_of(data);
    for c in 0..HAMMING_BITS {
        if stored_check & (1 << c) != 0 {
            frame |= 1 << ((1usize << c) - 1);
        }
    }
    let mut syndrome: usize = 0;
    for c in 0..HAMMING_BITS {
        let mask = 1usize << c;
        let mut parity = 0u16;
        for pos in 1..=12usize {
            if pos & mask != 0 && frame & (1 << (pos - 1)) != 0 {
                parity ^= 1;
            }
        }
        if parity != 0 {
            syndrome |= mask;
        }
    }

    let actual_overall =
        (u32::from(data).count_ones() + u32::from(stored_check).count_ones()) as u8 & 1;
    let overall_ok = actual_overall == stored_overall;

    match (syndrome, overall_ok) {
        (0, true) => Decoded::Clean(data),
        (0, false) => {
            // The overall parity bit itself flipped; data is intact.
            Decoded::Corrected(data)
        }
        (s, false) => {
            // Single error at position s: flip it and re-extract.
            if s > 12 {
                return Decoded::Uncorrectable;
            }
            let fixed = frame ^ (1 << (s - 1));
            Decoded::Corrected(data_of(fixed))
        }
        (_, true) => {
            // Non-zero syndrome but overall parity consistent: double
            // error.
            Decoded::Uncorrectable
        }
    }
}

/// Convenience: encodes `data` and returns `(data, check)` as stored.
#[must_use]
pub fn encode_pair(data: u8) -> (u8, u8) {
    (data, encode(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip_all_bytes() {
        for b in 0..=255u8 {
            let check = encode(b);
            assert_eq!(decode(b, check), Decoded::Clean(b), "byte {b:#04x}");
        }
    }

    #[test]
    fn corrects_any_single_data_bit_flip() {
        for b in [0u8, 0xFF, 0xA5, 0x3C, 0x01] {
            let check = encode(b);
            for bit in 0..8 {
                let corrupted = b ^ (1 << bit);
                let d = decode(corrupted, check);
                assert_eq!(d, Decoded::Corrected(b), "byte {b:#04x} bit {bit}");
                assert!(d.was_corrected());
            }
        }
    }

    #[test]
    fn corrects_any_single_check_bit_flip() {
        for b in [0u8, 0xFF, 0xA5, 0x3C] {
            let check = encode(b);
            for bit in 0..5 {
                let corrupted_check = check ^ (1 << bit);
                let d = decode(b, corrupted_check);
                assert_eq!(d.value(), Some(b), "byte {b:#04x} check bit {bit}");
            }
        }
    }

    #[test]
    fn detects_double_errors_without_miscorrection() {
        for b in [0u8, 0xFF, 0xA5, 0x3C, 0x42] {
            let check = encode(b);
            // Two flips within the data byte.
            for i in 0..8 {
                for j in (i + 1)..8 {
                    let corrupted = b ^ (1 << i) ^ (1 << j);
                    assert_eq!(
                        decode(corrupted, check),
                        Decoded::Uncorrectable,
                        "byte {b:#04x} bits {i},{j}"
                    );
                }
            }
            // One data flip plus one check flip.
            for i in 0..8 {
                for j in 0..5 {
                    let d = decode(b ^ (1 << i), check ^ (1 << j));
                    // Must be detected OR corrected to the right value —
                    // never silently wrong.
                    if let Some(v) = d.value() {
                        assert_eq!(v, b, "miscorrected {b:#04x} bits d{i} c{j}");
                    }
                }
            }
        }
    }

    #[test]
    fn unused_check_bits_are_ignored() {
        let b = 0x5A;
        let check = encode(b);
        // Rot in bits 5..7 of the stored check byte is harmless.
        for garbage in [0x20u8, 0x40, 0x80, 0xE0] {
            assert_eq!(decode(b, check | garbage), Decoded::Clean(b));
        }
    }

    #[test]
    fn encode_pair_matches_encode() {
        let (d, c) = encode_pair(0x7E);
        assert_eq!(d, 0x7E);
        assert_eq!(c, encode(0x7E));
    }

    #[test]
    fn decoded_accessors_and_display() {
        assert_eq!(Decoded::Clean(3).value(), Some(3));
        assert_eq!(Decoded::Corrected(3).value(), Some(3));
        assert_eq!(Decoded::Uncorrectable.value(), None);
        assert!(!Decoded::Clean(0).was_corrected());
        assert!(Decoded::Clean(0xAB).to_string().contains("clean"));
        assert!(Decoded::Corrected(1).to_string().contains("corrected"));
        assert!(Decoded::Uncorrectable.to_string().contains("uncorrectable"));
    }

    #[test]
    fn check_byte_uses_only_low_five_bits() {
        for b in 0..=255u8 {
            assert_eq!(encode(b) & 0xE0, 0, "byte {b:#04x}");
        }
    }
}
