//! The failure-knowledge base of §3.1.
//!
//! "Such rules could access local or remote, shared databases reporting
//! known failure behaviors for models and even specific lots thereof."
//!
//! [`FailureKnowledgeBase`] maps memory-module identities — at lot,
//! model, or technology granularity — to the [`BehaviorClass`] (`f0..f4`)
//! and [`Severity`] the field has observed for them.  Lookup resolves
//! most-specific-first: lot, then model, then technology default.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use afta_memsim::{BehaviorClass, MemoryTechnology, Severity, Spd};

/// A knowledge-base record: what is known about a module population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// The failure behaviour observed in the field.
    pub behavior: BehaviorClass,
    /// How far off nominal the observed rates run.
    pub severity: Severity,
}

impl FailureRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(behavior: BehaviorClass, severity: Severity) -> Self {
        Self { behavior, severity }
    }
}

/// At which granularity a lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MatchLevel {
    /// Fell back to the technology-wide default.
    Technology,
    /// Matched vendor/model.
    Model,
    /// Matched vendor/model/lot — the paper's "even specific lots
    /// thereof".
    Lot,
}

/// The shared database of known failure behaviours.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FailureKnowledgeBase {
    by_lot: BTreeMap<String, FailureRecord>,
    by_model: BTreeMap<String, FailureRecord>,
    by_technology: BTreeMap<String, FailureRecord>,
}

impl FailureKnowledgeBase {
    /// Creates an empty knowledge base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records behaviour for a specific lot (`vendor/model/lot`).
    pub fn insert_lot(&mut self, lot_key: impl Into<String>, record: FailureRecord) {
        self.by_lot.insert(lot_key.into(), record);
    }

    /// Records behaviour for a model (`vendor/model`).
    pub fn insert_model(&mut self, model_key: impl Into<String>, record: FailureRecord) {
        self.by_model.insert(model_key.into(), record);
    }

    /// Records the default behaviour of a technology.
    pub fn insert_technology(&mut self, tech: MemoryTechnology, record: FailureRecord) {
        self.by_technology.insert(tech.to_string(), record);
    }

    /// Number of records across all granularities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_lot.len() + self.by_model.len() + self.by_technology.len()
    }

    /// True when the base holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the most probable behaviour for the module described by
    /// `spd`, most specific record first.  Returns the record and the
    /// granularity it matched at, or `None` when nothing is known.
    #[must_use]
    pub fn lookup(&self, spd: &Spd) -> Option<(FailureRecord, MatchLevel)> {
        if let Some(r) = self.by_lot.get(&spd.lot_key()) {
            return Some((*r, MatchLevel::Lot));
        }
        if let Some(r) = self.by_model.get(&spd.model_key()) {
            return Some((*r, MatchLevel::Model));
        }
        if let Some(r) = self.by_technology.get(&spd.technology.to_string()) {
            return Some((*r, MatchLevel::Technology));
        }
        None
    }

    /// Iterates over every record with the granularity and lookup key it
    /// is filed under, technology records first, then models, then lots.
    /// This is the introspection surface static tools (`afta-lint`) use
    /// to audit the base without probing concrete modules.
    pub fn records(&self) -> impl Iterator<Item = (MatchLevel, &str, FailureRecord)> {
        self.by_technology
            .iter()
            .map(|(k, r)| (MatchLevel::Technology, k.as_str(), *r))
            .chain(
                self.by_model
                    .iter()
                    .map(|(k, r)| (MatchLevel::Model, k.as_str(), *r)),
            )
            .chain(
                self.by_lot
                    .iter()
                    .map(|(k, r)| (MatchLevel::Lot, k.as_str(), *r)),
            )
    }

    /// Serialises the base to JSON (the stand-in for the paper's shared
    /// remote databases).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialisation fails (practically
    /// impossible for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Loads a base from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// A small built-in field database used by the examples and benches:
    /// CMOS defaults to `f1`, SDRAM to `f3`, with some model- and
    /// lot-specific refinements (including a notorious bad lot, after the
    /// paper's "from lot to lot error and failure rates can vary more than
    /// one order of magnitude").
    #[must_use]
    pub fn builtin() -> Self {
        let mut kb = Self::new();
        kb.insert_technology(
            MemoryTechnology::Cmos,
            FailureRecord::new(BehaviorClass::F1, Severity::Nominal),
        );
        kb.insert_technology(
            MemoryTechnology::Sdram,
            FailureRecord::new(BehaviorClass::F3, Severity::Nominal),
        );
        // A rugged aerospace-qualified CMOS part: stable.
        kb.insert_model(
            "RAD/HM6264",
            FailureRecord::new(BehaviorClass::F0, Severity::Benign),
        );
        // An aging CMOS family that develops stuck cells.
        kb.insert_model(
            "CE00/CMOS-AG4",
            FailureRecord::new(BehaviorClass::F2, Severity::Nominal),
        );
        // A dense SDRAM part known for the full single-event menagerie.
        kb.insert_model(
            "CE00/K4H510838B",
            FailureRecord::new(BehaviorClass::F4, Severity::Nominal),
        );
        // ...and its notorious bad lot.
        kb.insert_lot(
            "CE00/K4H510838B/L2004-17",
            FailureRecord::new(BehaviorClass::F4, Severity::Harsh),
        );
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(vendor: &str, model: &str, lot: &str, tech: MemoryTechnology) -> Spd {
        Spd {
            vendor: vendor.into(),
            model: model.into(),
            serial: "S".into(),
            lot: lot.into(),
            size_mib: 512,
            clock_mhz: 533,
            width_bits: 64,
            technology: tech,
        }
    }

    #[test]
    fn lookup_prefers_lot_over_model_over_technology() {
        let kb = FailureKnowledgeBase::builtin();
        let bad_lot = spd("CE00", "K4H510838B", "L2004-17", MemoryTechnology::Sdram);
        let (r, level) = kb.lookup(&bad_lot).unwrap();
        assert_eq!(level, MatchLevel::Lot);
        assert_eq!(r.severity, Severity::Harsh);

        let other_lot = spd("CE00", "K4H510838B", "L2010-01", MemoryTechnology::Sdram);
        let (r, level) = kb.lookup(&other_lot).unwrap();
        assert_eq!(level, MatchLevel::Model);
        assert_eq!(r.behavior, BehaviorClass::F4);
        assert_eq!(r.severity, Severity::Nominal);

        let unknown_model = spd("XX", "UNKNOWN", "L0", MemoryTechnology::Sdram);
        let (r, level) = kb.lookup(&unknown_model).unwrap();
        assert_eq!(level, MatchLevel::Technology);
        assert_eq!(r.behavior, BehaviorClass::F3);
    }

    #[test]
    fn cmos_defaults_to_f1() {
        let kb = FailureKnowledgeBase::builtin();
        let part = spd("YY", "NEW-CMOS", "L1", MemoryTechnology::Cmos);
        let (r, _) = kb.lookup(&part).unwrap();
        assert_eq!(r.behavior, BehaviorClass::F1);
    }

    #[test]
    fn empty_base_knows_nothing() {
        let kb = FailureKnowledgeBase::new();
        assert!(kb.is_empty());
        assert_eq!(kb.len(), 0);
        let part = spd("A", "B", "C", MemoryTechnology::Cmos);
        assert!(kb.lookup(&part).is_none());
    }

    #[test]
    fn match_level_ordering() {
        assert!(MatchLevel::Lot > MatchLevel::Model);
        assert!(MatchLevel::Model > MatchLevel::Technology);
    }

    #[test]
    fn json_roundtrip() {
        let kb = FailureKnowledgeBase::builtin();
        let json = kb.to_json().unwrap();
        let back = FailureKnowledgeBase::from_json(&json).unwrap();
        assert_eq!(kb, back);
        assert!(json.contains("K4H510838B"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(FailureKnowledgeBase::from_json("{nope").is_err());
    }

    #[test]
    fn records_iterates_every_granularity() {
        let kb = FailureKnowledgeBase::builtin();
        let all: Vec<_> = kb.records().collect();
        assert_eq!(all.len(), kb.len());
        assert!(all
            .iter()
            .any(|(l, k, _)| *l == MatchLevel::Lot && *k == "CE00/K4H510838B/L2004-17"));
        assert!(all
            .iter()
            .any(|(l, k, _)| *l == MatchLevel::Technology && *k == "CMOS"));
    }

    #[test]
    fn inserts_count() {
        let mut kb = FailureKnowledgeBase::new();
        kb.insert_lot(
            "a/b/c",
            FailureRecord::new(BehaviorClass::F1, Severity::Nominal),
        );
        kb.insert_model(
            "a/b",
            FailureRecord::new(BehaviorClass::F2, Severity::Benign),
        );
        kb.insert_technology(
            MemoryTechnology::Cmos,
            FailureRecord::new(BehaviorClass::F0, Severity::Nominal),
        );
        assert_eq!(kb.len(), 3);
        assert!(!kb.is_empty());
    }
}
