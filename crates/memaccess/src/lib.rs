//! # afta-memaccess — fault-tolerant memory access with postponed binding
//!
//! The compile-time strategy of the paper's §3.1, end to end:
//!
//! 1. memory access is abstracted behind the [`AccessMethod`] trait;
//! 2. design-time hypotheses `f0..f4` about the hardware's failure
//!    semantics each get a matching method `M0..M4`
//!    ([`M0Raw`], [`M1Ecc`], [`M2EccRemap`], [`MirroredEcc`]);
//! 3. at configuration time, Serial-Presence-Detect introspection plus a
//!    [`FailureKnowledgeBase`] resolve the *most probable* behaviour
//!    **f** of the actual modules;
//! 4. [`configure`] selects the cheapest method that tolerates **f** —
//!    an [`afta_core::AssumptionVar`] bound with the min-cost rule.
//!
//! The SEC-DED error-correcting code the methods rely on is implemented
//! from scratch in [`ecc`].
//!
//! ```
//! use afta_memaccess::{configure, FailureKnowledgeBase};
//! use afta_memsim::MachineInventory;
//!
//! let kb = FailureKnowledgeBase::builtin();
//! let machine = MachineInventory::dell_inspiron_6000();
//! for bank in machine.banks() {
//!     let report = configure(&bank.spd, &kb)?;
//!     println!("{report}");
//! }
//! # Ok::<(), afta_memaccess::ConfigureError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod ecc;
pub mod knowledge;
pub mod methods;
pub mod select;
pub mod workload;

pub use deployment::{DeploymentManager, DeploymentRecord};
pub use knowledge::{FailureKnowledgeBase, FailureRecord, MatchLevel};
pub use methods::{AccessError, AccessMethod, M0Raw, M1Ecc, M2EccRemap, MethodStats, MirroredEcc};
pub use select::{
    configure, method_assumption_var, method_profiles, ConfigReport, ConfigureError, MethodKind,
    MethodProfile,
};
pub use workload::{run_workload, WorkloadConfig, WorkloadReport};
