//! Property tests on the access methods and the selection algorithm.

use afta_memaccess::{configure, FailureKnowledgeBase, FailureRecord, MethodKind};
use afta_memsim::{BehaviorClass, FaultRates, MemoryTechnology, Severity, Spd};
use proptest::prelude::*;

fn spd_for(class: BehaviorClass, lot: &str) -> Spd {
    Spd {
        vendor: "V".into(),
        model: class.label().into(),
        serial: "S".into(),
        lot: lot.into(),
        size_mib: 64,
        clock_mhz: 400,
        width_bits: 64,
        technology: MemoryTechnology::Sdram,
    }
}

fn kb_all_classes() -> FailureKnowledgeBase {
    let mut kb = FailureKnowledgeBase::new();
    for class in BehaviorClass::ALL {
        kb.insert_model(
            format!("V/{}", class.label()),
            FailureRecord::new(class, Severity::Nominal),
        );
    }
    kb
}

fn class_strategy() -> impl Strategy<Value = BehaviorClass> {
    prop_oneof![
        Just(BehaviorClass::F0),
        Just(BehaviorClass::F1),
        Just(BehaviorClass::F2),
        Just(BehaviorClass::F3),
        Just(BehaviorClass::F4),
    ]
}

fn method_strategy() -> impl Strategy<Value = MethodKind> {
    prop_oneof![
        Just(MethodKind::M0),
        Just(MethodKind::M1),
        Just(MethodKind::M2),
        Just(MethodKind::M3),
        Just(MethodKind::M4),
    ]
}

proptest! {
    /// Every method is a correct store on pristine hardware: arbitrary
    /// buffers at arbitrary offsets roundtrip.
    #[test]
    fn methods_roundtrip_on_pristine_hardware(
        kind in method_strategy(),
        offset in 0usize..32,
        data in proptest::collection::vec(any::<u8>(), 1..48),
        seed: u64,
    ) {
        let mut m = kind.instantiate(1024, FaultRates::none(), seed);
        prop_assume!(offset + data.len() <= m.logical_size());
        m.store(offset, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        m.load(offset, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
        prop_assert_eq!(m.stats().corrected, 0);
    }

    /// The §3.1 selection always returns a method tolerating the resolved
    /// class, and no *cheaper* tolerant method exists (min-cost
    /// optimality).
    #[test]
    fn selection_is_tolerant_and_cost_minimal(class in class_strategy(), lot in "[A-Z][0-9]{3}") {
        let kb = kb_all_classes();
        let report = configure(&spd_for(class, &lot), &kb).unwrap();
        prop_assert!(report.method.tolerates().contains(&class));
        for other in MethodKind::ALL {
            if other.tolerates().contains(&class) {
                prop_assert!(
                    other.cost() >= report.method.cost(),
                    "{} is cheaper than the selected {}",
                    other,
                    report.method
                );
            }
        }
    }

    /// The selected method survives a randomized workload on hardware
    /// exhibiting exactly the resolved behaviour — for any seed.
    #[test]
    fn selected_method_survives_its_class(
        class in class_strategy(),
        seed in 0u64..50,
        ops in proptest::collection::vec((0usize..64, any::<u8>()), 1..60),
    ) {
        let kb = kb_all_classes();
        let report = configure(&spd_for(class, "L0"), &kb).unwrap();
        let rates = FaultRates::for_class(class, Severity::Nominal);
        let mut m = report.method.instantiate(1024, rates, seed);
        let n = m.logical_size().min(64);
        let mut model = vec![0u8; n];
        for slot in 0..n {
            m.store(slot, &[0]).unwrap();
        }
        for (addr, byte) in ops {
            let addr = addr % n;
            m.store(addr, &[byte]).unwrap();
            model[addr] = byte;
            let mut b = [0u8; 1];
            m.load(addr, &mut b).unwrap();
            prop_assert_eq!(b[0], byte);
        }
        // Full sweep at the end: nothing rotted silently.
        for (addr, &expected) in model.iter().enumerate() {
            let mut b = [0u8; 1];
            m.load(addr, &mut b).unwrap();
            prop_assert_eq!(b[0], expected, "slot {} under {}", addr, class);
        }
    }

    /// Out-of-range accesses are rejected by every method, with the
    /// method's logical size in the error.
    #[test]
    fn bounds_respected_by_all_methods(kind in method_strategy(), past in 1usize..100) {
        let mut m = kind.instantiate(256, FaultRates::none(), 1);
        let size = m.logical_size();
        let mut buf = [0u8; 1];
        let r = m.load(size + past - 1, &mut buf);
        let out_of_bounds = matches!(r, Err(afta_memaccess::AccessError::OutOfBounds { .. }));
        prop_assert!(out_of_bounds, "got {:?}", r);
    }

    /// ECC guarantee at the method level: M1 reads back stored data even
    /// when each stored byte suffers one injected bit flip between write
    /// and read (exercised via a harsh f1 device across seeds).
    #[test]
    fn m1_under_harsh_f1_never_serves_wrong_data(seed in 0u64..30) {
        let rates = FaultRates::for_class(BehaviorClass::F1, Severity::Harsh);
        let mut m = MethodKind::M1.instantiate(512, rates, seed);
        let n = m.logical_size().min(64);
        for slot in 0..n {
            m.store(slot, &[slot as u8]).unwrap();
        }
        for _pass in 0..10 {
            for slot in 0..n {
                let mut b = [0u8; 1];
                m.load(slot, &mut b).unwrap();
                prop_assert_eq!(b[0], slot as u8);
            }
        }
    }
}
