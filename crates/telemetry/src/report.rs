//! The serialisable snapshot of a registry: counters, gauges, histogram
//! buckets, and the retained journal, with a human-readable `Display`.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::recorder::TelemetryRecord;

/// An immutable snapshot of one fixed-bucket histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending inclusive upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one longer than `bounds` (the last
    /// entry is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The count in the bucket whose upper bound is exactly `bound`, or
    /// `None` when no such bucket exists.  Useful when buckets encode
    /// discrete levels (e.g. redundancy degrees 3/5/7/9).
    #[must_use]
    pub fn bucket_count(&self, bound: u64) -> Option<u64> {
        let idx = self.bounds.iter().position(|&b| b == bound)?;
        self.counts.get(idx).copied()
    }

    /// The overflow bucket's count (observations above the last bound).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }

    /// Mean observed value, when any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merges another snapshot into this one, bucket by bucket.  Merging
    /// into an empty (default) snapshot adopts `other` wholesale, so a
    /// fold over per-shard snapshots needs no seed special-casing.
    ///
    /// The operation is commutative and associative — the foundation of
    /// the campaign runner's order-independent reduction.
    ///
    /// # Panics
    ///
    /// Panics when both snapshots are non-empty and their bounds differ:
    /// histograms of different shapes have no meaningful bucket-wise sum.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.bounds.is_empty() && other.count == 0 {
            return;
        }
        if self.bounds.is_empty() && self.count == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Everything a registry knows, frozen: sorted metric maps plus the
/// retained journal.  `Display` renders the human table; serde renders
/// JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The retained journal, oldest first.
    pub journal: Vec<TelemetryRecord>,
    /// Journal records evicted before this snapshot.
    pub journal_dropped: u64,
}

impl TelemetryReport {
    /// A counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram snapshot by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Journal records of one kind (see [`crate::TelemetryEvent::kind`]).
    pub fn journal_of_kind<'a>(
        &'a self,
        kind: &'a str,
    ) -> impl Iterator<Item = &'a TelemetryRecord> {
        self.journal.iter().filter(move |r| r.event.kind() == kind)
    }

    /// Serialises the report as pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Whether the report contains no metrics and no journal.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.journal.is_empty()
    }

    /// Merges another report into this one:
    ///
    /// * counters — summed by name;
    /// * gauges — element-wise **max** by name (a gauge is a level, not a
    ///   flow; the merged report keeps the highest level any shard
    ///   reached, which is commutative);
    /// * histograms — bucket-wise sum via [`HistogramSnapshot::merge`]
    ///   (panics on mismatched bounds);
    /// * journal — `other`'s records appended after `self`'s, then the
    ///   whole journal renumbered so `seq` stays 1-based and gap-free;
    /// * `journal_dropped` — summed.
    ///
    /// The metric sections commute, so any merge order yields the same
    /// counters/gauges/histograms; only the journal's record order
    /// depends on merge order.  Callers wanting a canonical journal (the
    /// campaign runner does) must merge in a fixed order, e.g. ascending
    /// shard index.
    ///
    /// # Panics
    ///
    /// Panics when a histogram name is shared but the bucket bounds
    /// differ.
    pub fn merge(&mut self, other: &TelemetryReport) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|mine| *mine = (*mine).max(*value))
                .or_insert(*value);
        }
        for (name, snapshot) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(snapshot);
        }
        self.journal.extend(other.journal.iter().cloned());
        for (i, record) in self.journal.iter_mut().enumerate() {
            record.seq = i as u64 + 1;
        }
        self.journal_dropped += other.journal_dropped;
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry report")?;
        writeln!(f, "================")?;
        if !self.counters.is_empty() {
            writeln!(f, "\ncounters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<40} {value:>14}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "\ngauges:")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<40} {value:>14}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "\nhistograms:")?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "  {name} (count {count}, sum {sum}):",
                    count = h.count,
                    sum = h.sum
                )?;
                for (i, &c) in h.counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    match h.bounds.get(i) {
                        Some(bound) => writeln!(f, "    <= {bound:<12} {c:>14}")?,
                        None => writeln!(
                            f,
                            "    >  {last:<12} {c:>14}",
                            last = h.bounds.last().copied().unwrap_or(0)
                        )?,
                    }
                }
            }
        }
        if !self.journal.is_empty() || self.journal_dropped > 0 {
            writeln!(
                f,
                "\njournal ({} retained, {} dropped):",
                self.journal.len(),
                self.journal_dropped
            )?;
            for record in &self.journal {
                writeln!(
                    f,
                    "  #{seq:<6} t={tick:<10} {kind:<18} {event:?}",
                    seq = record.seq,
                    tick = record.tick.0,
                    kind = record.event.kind(),
                    event = record.event
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TelemetryEvent;
    use afta_sim::Tick;

    fn sample_report() -> TelemetryReport {
        let mut report = TelemetryReport::default();
        report.counters.insert("voting.rounds".into(), 1000);
        report.counters.insert("voting.failures".into(), 2);
        report.gauges.insert("replicas".into(), 5);
        report.histograms.insert(
            "time_at_r".into(),
            HistogramSnapshot {
                bounds: vec![3, 5, 7, 9],
                counts: vec![950, 40, 10, 0, 0],
                count: 1000,
                sum: 3 * 950 + 5 * 40 + 7 * 10,
            },
        );
        report.journal.push(TelemetryRecord {
            seq: 1,
            tick: Tick(17),
            event: TelemetryEvent::RedundancyRaised { from: 3, to: 5 },
        });
        report
    }

    #[test]
    fn accessors() {
        let r = sample_report();
        assert_eq!(r.counter("voting.rounds"), 1000);
        assert_eq!(r.counter("missing"), 0);
        let h = r.histogram("time_at_r").unwrap();
        assert_eq!(h.bucket_count(3), Some(950));
        assert_eq!(h.bucket_count(4), None);
        assert_eq!(h.overflow(), 0);
        assert!((h.mean().unwrap() - 3.12).abs() < 1e-9);
        assert_eq!(r.journal_of_kind("redundancy-raised").count(), 1);
        assert_eq!(r.journal_of_kind("note").count(), 0);
        assert!(!r.is_empty());
        assert!(TelemetryReport::default().is_empty());
    }

    #[test]
    fn display_renders_all_sections() {
        let text = sample_report().to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("voting.rounds"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("<= 3"));
        assert!(text.contains("journal (1 retained, 0 dropped):"));
        assert!(text.contains("redundancy-raised"));
    }

    #[test]
    fn merge_sums_metrics_and_renumbers_journal() {
        let mut a = sample_report();
        let mut b = sample_report();
        b.gauges.insert("replicas".into(), 9);
        b.journal_dropped = 3;

        a.merge(&b);
        assert_eq!(a.counter("voting.rounds"), 2000);
        assert_eq!(a.counter("voting.failures"), 4);
        assert_eq!(a.gauges["replicas"], 9); // max, not sum
        let h = a.histogram("time_at_r").unwrap();
        assert_eq!(h.bucket_count(3), Some(1900));
        assert_eq!(h.count, 2000);
        assert_eq!(a.journal.len(), 2);
        assert_eq!(a.journal[0].seq, 1);
        assert_eq!(a.journal[1].seq, 2);
        assert_eq!(a.journal_dropped, 3);

        // Merging into an empty report adopts the other wholesale; metric
        // sections commute.
        let mut empty = TelemetryReport::default();
        empty.merge(&b);
        let mut other_order = b.clone();
        other_order.merge(&TelemetryReport::default());
        assert_eq!(empty.counters, other_order.counters);
        assert_eq!(empty.gauges, other_order.gauges);
        assert_eq!(empty.histograms, other_order.histograms);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = HistogramSnapshot {
            bounds: vec![1, 2],
            counts: vec![0, 0, 0],
            count: 1,
            sum: 1,
        };
        let b = HistogramSnapshot {
            bounds: vec![1, 3],
            counts: vec![0, 0, 0],
            count: 1,
            sum: 1,
        };
        a.merge(&b);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report();
        let json = r.to_json();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
