//! # afta-telemetry — workspace-wide tracing, metrics, and flight recording
//!
//! The paper's §4 vision calls for systems that make their run-time
//! behaviour — detected assumption clashes, adaptation decisions, fault
//! histories — *observable artefacts* rather than transient side effects.
//! This crate is the observability substrate every AFTA layer reports
//! into:
//!
//! * [`Registry`] — a cheap-to-clone handle over sharded metric storage.
//!   Counters, gauges, and fixed-bucket histograms live behind atomics,
//!   so the hot path is one `fetch_add`; snapshot reads take no lock on
//!   the data itself.  A [`Registry::disabled`] registry degrades every
//!   operation to a branch on `None` — instrumented code needs no `cfg`.
//! * [`TelemetrySpan`] / [`VirtualSpan`] — RAII span timing.  Wall-clock
//!   spans record elapsed nanoseconds on drop; virtual spans measure
//!   [`Tick`] distances from `afta-sim`'s clock, so simulated experiments
//!   get the same ergonomics as live code.
//! * [`FlightRecorder`] (embedded in the registry) — a bounded ring
//!   journal of typed, timestamped [`TelemetryEvent`] records: fault
//!   injections, alpha-count verdict flips, dtof dips, redundancy
//!   transitions, DAG snapshot swaps, assumption clashes, vote rounds.
//!   The journal serialises to JSONL for offline analysis.
//! * [`TelemetryReport`] — a serialisable snapshot of everything above,
//!   rendered as a human table via `Display` or as JSON.
//!
//! ```
//! use afta_telemetry::{Registry, TelemetryEvent};
//! use afta_sim::Tick;
//!
//! let registry = Registry::new();
//! let rounds = registry.counter("voting.rounds");
//! rounds.inc();
//! rounds.add(2);
//! registry.record(Tick(7), TelemetryEvent::DtofDip { n: 3, dtof: 1 });
//!
//! let report = registry.report();
//! assert_eq!(report.counter("voting.rounds"), 3);
//! assert_eq!(report.journal.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod otel;
pub mod recorder;
pub mod report;

pub use otel::TraceContext;
pub use recorder::{FlightRecorder, TelemetryEvent, TelemetryRecord};
pub use report::{HistogramSnapshot, TelemetryReport};

/// Re-exported so instrumented crates can journal events without a
/// direct `afta-sim` dependency.
pub use afta_sim::Tick;

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// Number of independent metric shards; name hashes pick the shard, so
/// unrelated instrumentation sites do not contend on one map lock.
const SHARDS: usize = 8;

/// Default duration buckets for spans, in nanoseconds (the last bucket
/// is an implicit overflow).
pub const DEFAULT_TIME_BOUNDS_NS: [u64; 12] = [
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Default flight-recorder capacity.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4_096;

// ---------------------------------------------------------------------------
// Metric cores (shared storage behind the handles)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HistogramCore {
    /// Ascending inclusive upper bounds; values above the last bound land
    /// in the overflow bucket.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets (the extra one is overflow).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record_n(&self, value: u64, n: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicI64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<HistogramCore>>>,
}

#[derive(Debug)]
struct Inner {
    shards: [Shard; SHARDS],
    recorder: FlightRecorder,
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; stable across runs.
    let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    (h % SHARDS as u64) as usize
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The telemetry hub: hands out metric handles and owns the flight
/// recorder.  Clones share storage; a disabled registry makes every
/// operation a no-op branch.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled registry with the default journal capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled registry whose flight recorder keeps at most
    /// `capacity` records (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_journal_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Self {
            inner: Some(Arc::new(Inner {
                shards: Default::default(),
                recorder: FlightRecorder::new(capacity),
            })),
        }
    }

    /// A registry on which every operation is a no-op.  This is the
    /// `Default`, so un-instrumented call sites pay only an untaken
    /// branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.  Cache the handle: increments through it are one atomic add.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let shard = &inner.shards[shard_of(name)];
        if let Some(c) = shard.counters.read().get(name) {
            return Counter(Some(c.clone()));
        }
        let mut map = shard.counters.write();
        let c = map
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(c.clone()))
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let shard = &inner.shards[shard_of(name)];
        if let Some(g) = shard.gauges.read().get(name) {
            return Gauge(Some(g.clone()));
        }
        let mut map = shard.gauges.write();
        let g = map
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(g.clone()))
    }

    /// Returns the fixed-bucket histogram registered under `name`,
    /// creating it with `bounds` on first use.  A later call with
    /// different bounds returns the existing histogram unchanged.
    #[must_use]
    pub fn histogram(&self, name: &'static str, bounds: &[u64]) -> FixedHistogram {
        let Some(inner) = &self.inner else {
            return FixedHistogram(None);
        };
        let shard = &inner.shards[shard_of(name)];
        if let Some(h) = shard.histograms.read().get(name) {
            return FixedHistogram(Some(h.clone()));
        }
        let mut map = shard.histograms.write();
        let h = map
            .entry(name)
            .or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
        FixedHistogram(Some(h.clone()))
    }

    /// Starts a wall-clock span that records elapsed nanoseconds into the
    /// histogram named `name` when dropped.
    #[must_use]
    pub fn span(&self, name: &'static str) -> TelemetrySpan {
        if self.inner.is_none() {
            return TelemetrySpan {
                hist: FixedHistogram(None),
                start: None,
            };
        }
        TelemetrySpan {
            hist: self.histogram(name, &DEFAULT_TIME_BOUNDS_NS),
            start: Some(Instant::now()),
        }
    }

    /// Starts a virtual-clock span at `start`; call
    /// [`VirtualSpan::finish`] with the end tick to record the tick
    /// distance into the histogram named `name`.
    #[must_use]
    pub fn virtual_span(&self, name: &'static str, start: Tick) -> VirtualSpan {
        VirtualSpan {
            hist: if self.inner.is_some() {
                self.histogram(name, &DEFAULT_TIME_BOUNDS_NS)
            } else {
                FixedHistogram(None)
            },
            start,
        }
    }

    /// Appends a typed event to the flight recorder.
    pub fn record(&self, tick: Tick, event: TelemetryEvent) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(tick, event);
        }
    }

    /// A copy of the journal, oldest record first.
    #[must_use]
    pub fn journal(&self) -> Vec<TelemetryRecord> {
        self.inner
            .as_ref()
            .map(|i| i.recorder.records())
            .unwrap_or_default()
    }

    /// The journal as JSON Lines (one record per line).
    #[must_use]
    pub fn journal_jsonl(&self) -> String {
        self.inner
            .as_ref()
            .map(|i| i.recorder.to_jsonl())
            .unwrap_or_default()
    }

    /// Records evicted from the journal because the ring was full.
    #[must_use]
    pub fn journal_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.recorder.dropped())
    }

    /// Snapshots every metric and the journal into a serialisable
    /// [`TelemetryReport`].  Metric reads are atomic loads; no metric
    /// write is blocked while snapshotting.
    #[must_use]
    pub fn report(&self) -> TelemetryReport {
        let mut report = TelemetryReport::default();
        let Some(inner) = &self.inner else {
            return report;
        };
        for shard in &inner.shards {
            for (name, c) in shard.counters.read().iter() {
                report
                    .counters
                    .insert((*name).to_string(), c.load(Ordering::Relaxed));
            }
            for (name, g) in shard.gauges.read().iter() {
                report
                    .gauges
                    .insert((*name).to_string(), g.load(Ordering::Relaxed));
            }
            for (name, h) in shard.histograms.read().iter() {
                report.histograms.insert((*name).to_string(), h.snapshot());
            }
        }
        report.journal = inner.recorder.records();
        report.journal_dropped = inner.recorder.dropped();
        report
    }

    /// Returns a [`Scope`]: a view of this registry in which every metric
    /// name is prefixed with `prefix` plus a dot.  Scopes are how
    /// multi-tenant components (one `Registry`, many tenants) keep their
    /// metric namespaces apart without threading name strings everywhere:
    ///
    /// ```
    /// use afta_telemetry::Registry;
    ///
    /// let registry = Registry::new();
    /// let tenant = registry.scoped("serve.tenant.7");
    /// tenant.counter("rounds").inc();
    /// assert_eq!(registry.report().counter("serve.tenant.7.rounds"), 1);
    /// ```
    ///
    /// Composed names are interned process-wide (the registry's storage
    /// is keyed by `&'static str`), so the set of *distinct* scoped names
    /// must be bounded — scope per tenant or per shard, never per
    /// request.  Scoping a disabled registry is free: no name is interned
    /// and every handle is a no-op.
    #[must_use]
    pub fn scoped(&self, prefix: impl Into<String>) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Scoped registries
// ---------------------------------------------------------------------------

/// Interns a composed metric name so it can key the `&'static str` metric
/// maps.  The intern table is global and append-only: each distinct name
/// is leaked exactly once, which bounds the leak by the number of scopes
/// times the metrics per scope.
fn intern_name(name: String) -> &'static str {
    static INTERN: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let table = INTERN.get_or_init(|| Mutex::new(HashMap::new()));
    let mut table = table.lock();
    if let Some(&s) = table.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    table.insert(name, leaked);
    leaked
}

/// A prefixed view of a [`Registry`], from [`Registry::scoped`].
///
/// Every handle a scope hands out records into the parent registry under
/// `"{prefix}.{name}"`; `afta-serve` uses one scope per tenant
/// (`serve.tenant.<id>.*`) so a single report shows all tenants side by
/// side.  Cloning is cheap.
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    fn full(&self, name: &str) -> &'static str {
        intern_name(format!("{}.{}", self.prefix, name))
    }

    /// The prefix this scope prepends (without the trailing dot).
    #[must_use]
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The registry the scoped metrics land in.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A nested scope: `registry.scoped("a").scoped("b")` is
    /// `registry.scoped("a.b")`.
    #[must_use]
    pub fn scoped(&self, sub: &str) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: format!("{}.{sub}", self.prefix),
        }
    }

    /// The counter `"{prefix}.{name}"`; see [`Registry::counter`].
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if !self.registry.is_enabled() {
            return Counter::default();
        }
        self.registry.counter(self.full(name))
    }

    /// The gauge `"{prefix}.{name}"`; see [`Registry::gauge`].
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.registry.is_enabled() {
            return Gauge::default();
        }
        self.registry.gauge(self.full(name))
    }

    /// The histogram `"{prefix}.{name}"`; see [`Registry::histogram`].
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> FixedHistogram {
        if !self.registry.is_enabled() {
            return FixedHistogram::default();
        }
        self.registry.histogram(self.full(name), bounds)
    }

    /// A wall-clock span recording into `"{prefix}.{name}"`; see
    /// [`Registry::span`].
    #[must_use]
    pub fn span(&self, name: &str) -> TelemetrySpan {
        if !self.registry.is_enabled() {
            return TelemetrySpan {
                hist: FixedHistogram(None),
                start: None,
            };
        }
        self.registry.span(self.full(name))
    }
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotone counter handle.  Cheap to clone; `None` inside means the
/// owning registry is disabled and every operation is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a settable signed level.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(g) = &self.0 {
            g.store(value, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level (0 when disabled).
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct FixedHistogram(Option<Arc<HistogramCore>>);

impl FixedHistogram {
    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record_n(value, 1);
        }
    }

    /// Records `n` observations of `value` at once (bulk import).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if let Some(h) = &self.0 {
            h.record_n(value, n);
        }
    }

    /// Total observations recorded (0 when disabled).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// A snapshot of the bucket contents (empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map(|h| h.snapshot()).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII wall-clock span: records elapsed nanoseconds into its histogram
/// when dropped.
#[derive(Debug)]
pub struct TelemetrySpan {
    hist: FixedHistogram,
    start: Option<Instant>,
}

impl TelemetrySpan {
    /// Elapsed nanoseconds so far (0 when the registry is disabled).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Ends the span early, recording it now instead of at scope exit.
    pub fn finish(self) {}
}

impl Drop for TelemetrySpan {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// A span over the simulation's virtual clock.  Not RAII (virtual time
/// does not advance by itself): call [`VirtualSpan::finish`] with the
/// end tick.
#[derive(Debug)]
pub struct VirtualSpan {
    hist: FixedHistogram,
    start: Tick,
}

impl VirtualSpan {
    /// The span's start tick.
    #[must_use]
    pub fn start(&self) -> Tick {
        self.start
    }

    /// Records the tick distance from start to `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the start tick.
    pub fn finish(self, end: Tick) {
        self.hist.record(end.since(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_storage() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.report().counter("x.count"), 5);
    }

    #[test]
    fn scoped_metrics_prefix_and_share_storage() {
        let r = Registry::new();
        let a = r.scoped("serve.tenant.3");
        a.counter("rounds").add(2);
        a.gauge("streams").set(5);
        a.scoped("quota").counter("rejected").inc();
        // Same composed name, any path to it: one storage cell.
        r.counter("serve.tenant.3.rounds").inc();
        let report = r.report();
        assert_eq!(report.counter("serve.tenant.3.rounds"), 3);
        assert_eq!(report.gauges["serve.tenant.3.streams"], 5);
        assert_eq!(report.counter("serve.tenant.3.quota.rejected"), 1);
        assert_eq!(a.prefix(), "serve.tenant.3");
    }

    #[test]
    fn scoped_disabled_registry_is_noop() {
        let r = Registry::disabled();
        let scope = r.scoped("t");
        scope.counter("c").inc();
        scope.gauge("g").set(9);
        assert_eq!(scope.counter("c").get(), 0);
        assert!(!scope.registry().is_enabled());
    }

    #[test]
    fn gauges_set_and_adjust() {
        let r = Registry::new();
        let g = r.gauge("level");
        g.set(3);
        g.adjust(-5);
        assert_eq!(g.get(), -2);
        assert_eq!(r.report().gauges["level"], -2);
    }

    #[test]
    fn histogram_buckets_partition_values() {
        let r = Registry::new();
        let h = r.histogram("h", &[10, 20, 30]);
        h.record(5); // <= 10
        h.record(10); // <= 10 (inclusive bound)
        h.record(15); // <= 20
        h.record(31); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 1, 0, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 5 + 10 + 15 + 31);
    }

    #[test]
    fn histogram_bulk_record_matches_repeated() {
        let r = Registry::new();
        let h = r.histogram("bulk", &[3, 5, 7, 9]);
        h.record_n(3, 100);
        h.record_n(5, 7);
        assert_eq!(h.snapshot().bucket_count(3), Some(100));
        assert_eq!(h.snapshot().bucket_count(5), Some(7));
        assert_eq!(h.count(), 107);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("never");
        c.inc();
        assert_eq!(c.get(), 0);
        let h = r.histogram("none", &[1]);
        h.record(1);
        assert_eq!(h.count(), 0);
        r.record(Tick(1), TelemetryEvent::Note { text: "x".into() });
        assert!(r.journal().is_empty());
        let report = r.report();
        assert!(report.counters.is_empty() && report.journal.is_empty());
    }

    #[test]
    fn wall_span_records_on_drop() {
        let r = Registry::new();
        {
            let _span = r.span("op.latency");
            std::hint::black_box(42);
        }
        assert_eq!(
            r.histogram("op.latency", &DEFAULT_TIME_BOUNDS_NS).count(),
            1
        );
    }

    #[test]
    fn virtual_span_measures_tick_distance() {
        let r = Registry::new();
        let span = r.virtual_span("sim.phase", Tick(10));
        span.finish(Tick(250));
        let snap = r.histogram("sim.phase", &DEFAULT_TIME_BOUNDS_NS).snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 240);
    }

    #[test]
    fn virtual_spans_stay_monotonic_under_clock_skew() {
        // The fuzzer's skew fault steps the Tick source backwards;
        // `SkewedClock` clamps the observation, so a span opened before the
        // step and finished after it still sees end >= start and records a
        // well-defined (possibly zero) duration instead of panicking or
        // underflowing.
        let r = Registry::new();
        let mut clock = afta_sim::SkewedClock::new();
        clock.advance(100);
        let span = r.virtual_span("fuzz.round", clock.now());
        clock.apply_skew(-60); // observed time holds at 100
        let end = clock.advance(5); // raw 105 - 60 = 45, clamped to 100
        assert_eq!(end, Tick(100));
        span.finish(end);
        let snap = r
            .histogram("fuzz.round", &DEFAULT_TIME_BOUNDS_NS)
            .snapshot();
        assert_eq!((snap.count, snap.sum), (1, 0));
        // Once the base clock overtakes the watermark, spans measure real
        // distance again.
        let span = r.virtual_span("fuzz.round", clock.now());
        span.finish(clock.advance(200)); // raw 305 - 60 = 245
        let snap = r
            .histogram("fuzz.round", &DEFAULT_TIME_BOUNDS_NS)
            .snapshot();
        assert_eq!((snap.count, snap.sum), (2, 145));
    }

    #[test]
    fn clones_share_everything() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        r2.counter("shared").inc();
        r2.record(
            Tick(1),
            TelemetryEvent::Note {
                text: "from clone".into(),
            },
        );
        assert_eq!(r.report().counter("shared"), 2);
        assert_eq!(r.journal().len(), 1);
    }

    #[test]
    fn report_is_stable_and_sorted() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        let keys: Vec<_> = r.report().counters.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let r = Registry::new();
        let _ = r.histogram("bad", &[5, 3]);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let r = Registry::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = r.counter("contended");
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("contended").get(), 40_000);
    }
}
