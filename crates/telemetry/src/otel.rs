//! OTel-style JSONL export: the CI-facing serialisation of a telemetry
//! snapshot.
//!
//! The flight recorder's raw JSONL (one [`TelemetryRecord`] per line) is
//! a debugging format; external tooling wants the OpenTelemetry shape —
//! spans with ids, span events, and metric data points.  This module
//! renders a [`TelemetryReport`] that way, one JSON object per line:
//!
//! * one **span** line per export — the root span of the run, carrying
//!   every flight-recorder record as a span *event* (name = the record's
//!   [`kind`](crate::TelemetryEvent::kind), attributes = the event's
//!   fields, timestamp = the virtual tick);
//! * one **metric** line per counter, gauge, and histogram, in sorted
//!   name order.
//!
//! Everything is derived from the report and the [`TraceContext`]; no
//! wall clock, hostname, or process id leaks in.  Two exports of the
//! same seeded run are therefore **byte-identical** — the property the
//! `afta-ci` evidence gate asserts.
//!
//! Trace and span ids are derived deterministically from `(seed, shard)`
//! with splitmix64, so a campaign's shards share nothing yet every
//! re-run of a shard maps to the same ids — artifacts diff cleanly
//! across CI runs.
//!
//! ```
//! use afta_telemetry::{otel::TraceContext, Registry, TelemetryEvent, Tick};
//!
//! let registry = Registry::new();
//! registry.counter("voting.rounds").add(3);
//! registry.record(Tick(7), TelemetryEvent::DtofDip { n: 3, dtof: 1 });
//!
//! let ctx = TraceContext::derive(42, 0);
//! let jsonl = ctx.export("campaign.shard", &registry.report());
//! assert_eq!(jsonl.lines().count(), 2); // one span, one metric
//! assert_eq!(jsonl, ctx.export("campaign.shard", &registry.report()));
//! ```

use serde::Value;

use crate::report::{HistogramSnapshot, TelemetryReport};
use crate::TelemetryRecord;

/// Splitmix64 — the same mixer `afta-sim`'s `SeedFactory` uses, so id
/// derivation is stable and collision-resistant across shards.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic OTel trace identity for one shard of one seeded run.
///
/// The 128-bit trace id and the 64-bit root span id are pure functions
/// of `(seed, shard)`; re-exporting the same run reproduces them
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The master seed the ids derive from.
    pub seed: u64,
    /// The shard index within the campaign.
    pub shard: u64,
    trace_hi: u64,
    trace_lo: u64,
    root_span: u64,
}

impl TraceContext {
    /// Derives the trace identity for `(seed, shard)`.
    #[must_use]
    pub fn derive(seed: u64, shard: u64) -> Self {
        // Chain the seed and shard through the mixer so adjacent shards
        // (and adjacent seeds) land far apart in id space.
        let mut state = seed ^ 0xA5A5_5A5A_C3C3_3C3C;
        let a = splitmix64(&mut state);
        let mut state = a ^ shard;
        let trace_hi = splitmix64(&mut state);
        let trace_lo = splitmix64(&mut state);
        let root_span = splitmix64(&mut state);
        Self {
            seed,
            shard,
            trace_hi,
            trace_lo,
            root_span,
        }
    }

    /// The 32-hex-digit W3C trace id.
    #[must_use]
    pub fn trace_id(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }

    /// The 16-hex-digit root span id.
    #[must_use]
    pub fn span_id(&self) -> String {
        format!("{:016x}", self.root_span)
    }

    /// Renders `report` as OTel-style JSONL: the root span (journal as
    /// span events) followed by one metric line per counter, gauge, and
    /// histogram in sorted name order.  Pure function of `(self, name,
    /// report)` — byte-identical across re-exports.
    #[must_use]
    pub fn export(&self, name: &str, report: &TelemetryReport) -> String {
        let mut out = String::new();
        push_line(&mut out, &self.span_value(name, report));
        for (metric, value) in &report.counters {
            push_line(
                &mut out,
                &self.metric_value("counter", metric, |fields| {
                    fields.push(("value".into(), Value::UInt(*value)));
                }),
            );
        }
        for (metric, value) in &report.gauges {
            push_line(
                &mut out,
                &self.metric_value("gauge", metric, |fields| {
                    fields.push(("value".into(), Value::Int(*value)));
                }),
            );
        }
        for (metric, h) in &report.histograms {
            push_line(
                &mut out,
                &self.metric_value("histogram", metric, |fields| {
                    append_histogram(fields, h);
                }),
            );
        }
        out
    }

    /// The root span as a JSON value tree.
    fn span_value(&self, name: &str, report: &TelemetryReport) -> Value {
        let start = report.journal.first().map_or(0, |r| r.tick.0);
        let end = report.journal.last().map_or(start, |r| r.tick.0);
        Value::Object(vec![
            ("otel".into(), Value::Str("span".into())),
            ("traceId".into(), Value::Str(self.trace_id())),
            ("spanId".into(), Value::Str(self.span_id())),
            ("parentSpanId".into(), Value::Null),
            ("name".into(), Value::Str(name.into())),
            ("kind".into(), Value::Str("SPAN_KIND_INTERNAL".into())),
            ("startTick".into(), Value::UInt(start)),
            ("endTick".into(), Value::UInt(end)),
            (
                "attributes".into(),
                Value::Object(vec![
                    ("afta.seed".into(), Value::UInt(self.seed)),
                    ("afta.shard".into(), Value::UInt(self.shard)),
                ]),
            ),
            (
                "events".into(),
                Value::Array(report.journal.iter().map(span_event).collect()),
            ),
            (
                "droppedEventsCount".into(),
                Value::UInt(report.journal_dropped),
            ),
        ])
    }

    /// A metric line skeleton; `fill` appends the type-specific fields.
    fn metric_value(
        &self,
        kind: &str,
        metric: &str,
        fill: impl FnOnce(&mut Vec<(String, Value)>),
    ) -> Value {
        let mut fields = vec![
            ("otel".into(), Value::Str("metric".into())),
            ("traceId".into(), Value::Str(self.trace_id())),
            ("type".into(), Value::Str(kind.into())),
            ("name".into(), Value::Str(metric.into())),
        ];
        fill(&mut fields);
        Value::Object(fields)
    }
}

fn push_line(out: &mut String, value: &Value) {
    out.push_str(&serde_json::to_string(value).expect("otel line serialises"));
    out.push('\n');
}

/// One flight-recorder record as an OTel span event: name = the stable
/// kind label, timestamp = the virtual tick, attributes = the typed
/// event's own fields (unwrapped from serde's external enum tag).
fn span_event(record: &TelemetryRecord) -> Value {
    use serde::Serialize as _;
    let attributes = match record.event.to_value() {
        // Externally tagged payload variant: {"RedundancyRaised": {...}}.
        Value::Object(entries) if entries.len() == 1 => entries.into_iter().next().expect("one").1,
        // Unit variants (none today) or unexpected shapes: no attributes.
        _ => Value::Object(Vec::new()),
    };
    Value::Object(vec![
        ("name".into(), Value::Str(record.event.kind().into())),
        ("tick".into(), Value::UInt(record.tick.0)),
        ("seq".into(), Value::UInt(record.seq)),
        ("attributes".into(), attributes),
    ])
}

fn append_histogram(fields: &mut Vec<(String, Value)>, h: &HistogramSnapshot) {
    fields.push((
        "bounds".into(),
        Value::Array(h.bounds.iter().map(|&b| Value::UInt(b)).collect()),
    ));
    fields.push((
        "bucketCounts".into(),
        Value::Array(h.counts.iter().map(|&c| Value::UInt(c)).collect()),
    ));
    fields.push(("count".into(), Value::UInt(h.count)));
    fields.push(("sum".into(), Value::UInt(h.sum)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, TelemetryEvent};
    use afta_sim::Tick;

    /// The JSONL parser yields `Int` for small non-negative numbers;
    /// normalise before comparing against the exporter's `UInt`s.
    fn num(v: &Value) -> u64 {
        match v {
            Value::Int(i) => u64::try_from(*i).unwrap(),
            Value::UInt(u) => *u,
            other => panic!("expected integer, got {other:?}"),
        }
    }

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("voting.rounds").add(100);
        r.counter("voting.failures").add(2);
        r.gauge("switchboard.redundancy").set(5);
        r.histogram("voting.dtof", &[0, 1, 2, 3]).record(2);
        r.record(Tick(10), TelemetryEvent::DtofDip { n: 5, dtof: 1 });
        r.record(
            Tick(20),
            TelemetryEvent::RedundancyRaised { from: 3, to: 5 },
        );
        r
    }

    #[test]
    fn ids_are_deterministic_and_distinct_across_shards() {
        let a = TraceContext::derive(42, 0);
        let b = TraceContext::derive(42, 0);
        assert_eq!(a, b);
        assert_eq!(a.trace_id().len(), 32);
        assert_eq!(a.span_id().len(), 16);
        let other_shard = TraceContext::derive(42, 1);
        let other_seed = TraceContext::derive(43, 0);
        assert_ne!(a.trace_id(), other_shard.trace_id());
        assert_ne!(a.trace_id(), other_seed.trace_id());
    }

    #[test]
    fn export_is_byte_identical_across_runs() {
        let report = sample_registry().report();
        let ctx = TraceContext::derive(42, 3);
        assert_eq!(
            ctx.export("e6.shard", &report),
            ctx.export("e6.shard", &report)
        );
        // An independently rebuilt registry with the same content exports
        // the same bytes too.
        let again = sample_registry().report();
        assert_eq!(
            ctx.export("e6.shard", &report),
            ctx.export("e6.shard", &again)
        );
    }

    #[test]
    fn span_line_carries_journal_as_events() {
        let report = sample_registry().report();
        let jsonl = TraceContext::derive(7, 0).export("run", &report);
        let span_line = jsonl.lines().next().unwrap();
        let span: Value = serde_json::from_str(span_line).unwrap();
        assert_eq!(span.get("otel").unwrap().as_str(), Some("span"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("run"));
        let events = span.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("dtof-dip"));
        let attrs = events[1].get("attributes").unwrap();
        assert!(attrs.get("from").is_some() && attrs.get("to").is_some());
        assert_eq!(num(span.get("startTick").unwrap()), 10);
        assert_eq!(num(span.get("endTick").unwrap()), 20);
    }

    #[test]
    fn metric_lines_cover_every_metric_in_sorted_order() {
        let report = sample_registry().report();
        let jsonl = TraceContext::derive(7, 0).export("run", &report);
        let lines: Vec<Value> = jsonl
            .lines()
            .skip(1)
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let names: Vec<String> = lines
            .iter()
            .map(|l| l.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "voting.failures",
                "voting.rounds",
                "switchboard.redundancy",
                "voting.dtof"
            ]
        );
        let hist = lines.last().unwrap();
        assert_eq!(hist.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(num(hist.get("count").unwrap()), 1);
    }

    #[test]
    fn empty_report_exports_a_lone_span() {
        let jsonl = TraceContext::derive(1, 0).export("empty", &TelemetryReport::default());
        assert_eq!(jsonl.lines().count(), 1);
        let span: Value = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(num(span.get("startTick").unwrap()), 0);
        assert_eq!(span.get("events").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn trace_ids_do_not_collide_over_a_campaign() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..16u64 {
            for shard in 0..64u64 {
                assert!(seen.insert(TraceContext::derive(seed, shard).trace_id()));
            }
        }
    }
}
