//! The flight recorder: a bounded ring journal of typed, timestamped
//! telemetry events, serialisable to JSON Lines.
//!
//! The recorder is the "black box" of an AFTA system: when an assumption
//! clash or dimensioning failure is being diagnosed after the fact, the
//! journal holds the last `capacity` noteworthy events in exact order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use afta_sim::Tick;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A typed telemetry event.  Variants cover the noteworthy moments of
/// every AFTA layer; [`TelemetryEvent::Note`] is the free-form escape
/// hatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A fault was injected into the system under test.
    FaultInjected {
        /// Fault class name (`transient` / `intermittent` / `permanent`).
        class: String,
    },
    /// An alpha-count filter's verdict flipped.
    AlphaVerdictFlip {
        /// The monitored component.
        component: String,
        /// The alpha value at the flip.
        alpha: f64,
        /// The new verdict, rendered.
        verdict: String,
    },
    /// A voting round's distance-to-failure dipped to a critical level.
    DtofDip {
        /// Replicas in the round.
        n: usize,
        /// The round's dtof.
        dtof: u32,
    },
    /// The redundancy controller raised the replica count.
    RedundancyRaised {
        /// Replica count before.
        from: usize,
        /// Replica count after.
        to: usize,
    },
    /// The redundancy controller lowered the replica count.
    RedundancyLowered {
        /// Replica count before.
        from: usize,
        /// Replica count after.
        to: usize,
    },
    /// A reflective-DAG snapshot was injected (architecture reshaped).
    SnapshotSwapped {
        /// The snapshot label (e.g. `D1`, `D2`).
        label: String,
    },
    /// An assumption clash was detected by a monitor.
    AssumptionClash {
        /// The violated assumption's name.
        assumption: String,
        /// The clash disposition, rendered.
        disposition: String,
    },
    /// A voting round completed.
    VoteRound {
        /// Replicas in the round.
        n: usize,
        /// Votes differing from the majority; `None` when no majority.
        dissent: Option<usize>,
        /// Whether the round failed to find a majority.
        failed: bool,
    },
    /// The adaptive manager switched fault-tolerance patterns.
    PatternSwitch {
        /// The pattern left behind, rendered.
        from: String,
        /// The pattern now bound, rendered.
        to: String,
    },
    /// A watchdog deadline passed without a heartbeat.
    HeartbeatMiss {
        /// The watched component.
        component: String,
    },
    /// Free-form annotation.
    Note {
        /// The annotation text.
        text: String,
    },
}

impl TelemetryEvent {
    /// A short stable kind label (used in the human-readable report).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::FaultInjected { .. } => "fault-injected",
            TelemetryEvent::AlphaVerdictFlip { .. } => "alpha-verdict-flip",
            TelemetryEvent::DtofDip { .. } => "dtof-dip",
            TelemetryEvent::RedundancyRaised { .. } => "redundancy-raised",
            TelemetryEvent::RedundancyLowered { .. } => "redundancy-lowered",
            TelemetryEvent::SnapshotSwapped { .. } => "snapshot-swapped",
            TelemetryEvent::AssumptionClash { .. } => "assumption-clash",
            TelemetryEvent::VoteRound { .. } => "vote-round",
            TelemetryEvent::PatternSwitch { .. } => "pattern-switch",
            TelemetryEvent::HeartbeatMiss { .. } => "heartbeat-miss",
            TelemetryEvent::Note { .. } => "note",
        }
    }
}

/// One journal entry: a sequence number (total order), the virtual time
/// of the event, and the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Monotone sequence number, 1-based, gap-free across the journal's
    /// lifetime (evicted records keep their numbers).
    pub seq: u64,
    /// Virtual time of the event.
    pub tick: Tick,
    /// The event.
    pub event: TelemetryEvent,
}

struct Ring {
    buf: VecDeque<TelemetryRecord>,
    next_seq: u64,
}

/// A bounded ring journal.  Appends are O(1); when full, the oldest
/// record is evicted and counted in [`FlightRecorder::dropped`].
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 1,
            }),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event at `tick`, evicting the oldest record when full.
    pub fn record(&self, tick: Tick, event: TelemetryEvent) {
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(TelemetryRecord { seq, tick, event });
    }

    /// Records currently retained, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<TelemetryRecord> {
        self.ring.lock().buf.iter().cloned().collect()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// Whether the journal is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Serialises the retained records as JSON Lines, one record per
    /// line, oldest first.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.ring.lock().buf.iter() {
            out.push_str(&serde_json::to_string(record).expect("record serialises"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL journal back into records (the inverse of
    /// [`FlightRecorder::to_jsonl`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Vec<TelemetryRecord>, serde_json::Error> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(text: &str) -> TelemetryEvent {
        TelemetryEvent::Note { text: text.into() }
    }

    #[test]
    fn records_keep_order_and_sequence() {
        let rec = FlightRecorder::new(8);
        rec.record(Tick(1), note("a"));
        rec.record(Tick(2), note("b"));
        let records = rec.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[1].seq, 2);
        assert_eq!(records[0].tick, Tick(1));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 1..=5 {
            rec.record(Tick(i), note(&format!("e{i}")));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let records = rec.records();
        // Oldest two evicted; sequence numbers are preserved.
        assert_eq!(records[0].seq, 3);
        assert_eq!(records[2].seq, 5);
        assert_eq!(records[2].event, note("e5"));
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_variant() {
        let rec = FlightRecorder::new(32);
        let events = vec![
            TelemetryEvent::FaultInjected {
                class: "transient".into(),
            },
            TelemetryEvent::AlphaVerdictFlip {
                component: "c3".into(),
                alpha: 3.25,
                verdict: "permanent or intermittent".into(),
            },
            TelemetryEvent::DtofDip { n: 5, dtof: 1 },
            TelemetryEvent::RedundancyRaised { from: 3, to: 5 },
            TelemetryEvent::RedundancyLowered { from: 5, to: 3 },
            TelemetryEvent::SnapshotSwapped { label: "D2".into() },
            TelemetryEvent::AssumptionClash {
                assumption: "temp".into(),
                disposition: "unhandled".into(),
            },
            TelemetryEvent::VoteRound {
                n: 7,
                dissent: Some(2),
                failed: false,
            },
            TelemetryEvent::VoteRound {
                n: 3,
                dissent: None,
                failed: true,
            },
            TelemetryEvent::PatternSwitch {
                from: "D1".into(),
                to: "D2".into(),
            },
            TelemetryEvent::HeartbeatMiss {
                component: "task".into(),
            },
            TelemetryEvent::Note {
                text: "hello\n\"world\"".into(),
            },
        ];
        for (i, e) in events.iter().enumerate() {
            rec.record(Tick(i as u64), e.clone());
        }
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), events.len());
        let back = FlightRecorder::from_jsonl(&jsonl).unwrap();
        assert_eq!(back, rec.records());
    }

    #[test]
    fn kind_labels_are_distinct() {
        let kinds = [
            TelemetryEvent::FaultInjected {
                class: String::new(),
            }
            .kind(),
            TelemetryEvent::DtofDip { n: 0, dtof: 0 }.kind(),
            TelemetryEvent::Note {
                text: String::new(),
            }
            .kind(),
        ];
        assert_eq!(
            kinds
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            kinds.len()
        );
    }

    #[test]
    fn malformed_jsonl_is_an_error() {
        assert!(FlightRecorder::from_jsonl("{not json}").is_err());
        assert!(FlightRecorder::from_jsonl("").unwrap().is_empty());
    }
}
