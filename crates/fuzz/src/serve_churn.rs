//! Tenant-churn fuzzing for the multi-tenant service (`afta-serve`).
//!
//! The fuzzer's fault grammar was written for the three in-process
//! strategies; this driver re-targets the same seeded [`Schedule`]s at
//! the serving layer, mapping each [`FaultKind`] onto a tenant-lifecycle
//! hazard:
//!
//! | schedule fault | serving hazard |
//! |---|---|
//! | `VoterCrash` | evict the tenant; re-register when the crash heals |
//! | `Partition` / `LinkBurst` | mute one client stream for the window |
//! | `SefiStorm` | observation flood against one tenant (quota pressure) |
//! | `ClashEdit` | re-bound a tenant's mailbox (E1 tightens, E2 loosens) |
//! | `ClockSkew` | a quiet step: no ballots, the round ticks out empty |
//!
//! Every step ends with a [`Request::Tick`] per live tenant, so rounds
//! always complete (missing ballots count as dissent) and the run can
//! check the serving tier of the invariant set:
//!
//! * [`Invariant::NoLostShard`] — every *admitted* observation is
//!   processed and acknowledged: the tenants' digests (evicted ones
//!   included) carry exactly as many observations as clients got
//!   `Observed` replies for;
//! * [`Invariant::BusAccounting`] — every frame is accounted:
//!   `serve.frames == serve.handled + serve.queued + serve.rejected +
//!   serve.bad_frames`;
//! * [`Invariant::DtofNonNegative`] — no completed round reports a
//!   distance-to-failure beyond its expected-ballot count;
//! * [`Invariant::NoLivelock`] — one round completes per tick issued:
//!   quota pressure may starve ballots, never round progress.
//!
//! [`Request::Tick`]: afta_serve::Request::Tick

use std::collections::HashMap;

use afta_serve::{
    ballot_value, observe_value, Body, ClientAddr, Enqueued, Frame, Outbound, Reply, Request,
    ServeConfig, ServerCore, TenantId,
};
use afta_telemetry::Registry;

use crate::invariant::{Invariant, Violation};
use crate::schedule::{ClashSide, FaultKind, Schedule};

/// Tenants the churn driver hosts (ids `0..SERVE_TENANTS`).
pub const SERVE_TENANTS: u16 = 4;
/// Client streams per tenant (ids `0..SERVE_CLIENTS`).
pub const SERVE_CLIENTS: u32 = 3;
/// Cap on the observation flood one `SefiStorm` maps to.
const FLOOD_CAP: u32 = 16;

/// What one churn run did and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeChurnReport {
    /// Virtual steps executed.
    pub steps: u64,
    /// Data frames submitted (observes, ballots, ticks, floods).
    pub sent: u64,
    /// `Observed` acknowledgements received.
    pub observed: u64,
    /// Rejections received (quota, lifecycle, unknown tenant).
    pub rejected: u64,
    /// Voting rounds completed across all tenant registrations.
    pub rounds: u64,
    /// Tenant evictions the schedule forced.
    pub evictions: u64,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<Violation>,
}

impl ServeChurnReport {
    /// Whether the run upheld every serving invariant.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-run driver state outside the server.
struct Churn {
    core: ServerCore,
    registry: Registry,
    live: Vec<bool>,
    revive_at: HashMap<u16, u64>,
    muted_until: HashMap<(u16, u32), u64>,
    next_round: Vec<u64>,
    ticks_issued: u64,
    sent: u64,
    observed: u64,
    rejected: u64,
    evictions: u64,
    /// Rounds and observes banked from evicted registrations.
    banked_rounds: u64,
    banked_observes: u64,
    violations: Vec<Violation>,
}

/// Replays `schedule` as tenant churn against a fresh [`ServerCore`]
/// and checks the serving invariants.  Fully deterministic: the same
/// schedule produces the same report.
#[must_use]
pub fn run_serve_churn(schedule: &Schedule, registry: &Registry) -> ServeChurnReport {
    let config = ServeConfig {
        max_tenants: usize::from(SERVE_TENANTS) * 2,
        default_mailbox_cap: 8,
        ..ServeConfig::default()
    };
    let mut churn = Churn {
        core: ServerCore::new(config, registry),
        registry: registry.clone(),
        live: vec![false; usize::from(SERVE_TENANTS)],
        revive_at: HashMap::new(),
        muted_until: HashMap::new(),
        next_round: vec![1; usize::from(SERVE_TENANTS)],
        ticks_issued: 0,
        sent: 0,
        observed: 0,
        rejected: 0,
        evictions: 0,
        banked_rounds: 0,
        banked_observes: 0,
        violations: Vec::new(),
    };
    for t in 0..SERVE_TENANTS {
        churn.register(t, 0);
    }
    for step in 0..schedule.max_steps {
        let mut quiet = false;
        for event in schedule.events.iter().filter(|e| e.at == step) {
            match &event.kind {
                FaultKind::VoterCrash {
                    voter,
                    revive_after,
                } => {
                    let t = voter % SERVE_TENANTS;
                    churn.evict(t, step);
                    if *revive_after > 0 {
                        churn.revive_at.insert(t, step + revive_after);
                    }
                }
                FaultKind::Partition { a, b, heal_after } => {
                    let key = (b % SERVE_TENANTS, u32::from(*a) % SERVE_CLIENTS);
                    let until = if *heal_after == 0 {
                        u64::MAX
                    } else {
                        step + heal_after
                    };
                    churn.muted_until.insert(key, until);
                }
                FaultKind::LinkBurst { from, to, len, .. } => {
                    let key = (to % SERVE_TENANTS, u32::from(*from) % SERVE_CLIENTS);
                    churn.muted_until.insert(key, step + len);
                }
                FaultKind::SefiStorm { flips, .. } => {
                    let t = u16::try_from(flips % u32::from(SERVE_TENANTS)).expect("t < 4");
                    churn.flood(t, (*flips).min(FLOOD_CAP), step);
                }
                FaultKind::ClashEdit { side } => {
                    let t = u16::try_from(step % u64::from(SERVE_TENANTS)).expect("t < 4");
                    let cap = match side {
                        ClashSide::E1 => 2,
                        ClashSide::E2 => 16,
                    };
                    let bounced = churn.core.set_tenant_mailbox_cap(TenantId(t), cap);
                    churn.account(&bounced, step);
                }
                FaultKind::ClockSkew { .. } => quiet = true,
            }
        }
        let due: Vec<u16> = churn
            .revive_at
            .iter()
            .filter(|&(_, &at)| at <= step)
            .map(|(&t, _)| t)
            .collect();
        for t in due {
            churn.revive_at.remove(&t);
            churn.register(t, step);
        }
        if !quiet {
            for t in 0..SERVE_TENANTS {
                let round = churn.next_round[usize::from(t)];
                for c in 0..SERVE_CLIENTS {
                    if churn.muted_until.get(&(t, c)).is_some_and(|&u| u > step) {
                        continue;
                    }
                    churn.data(
                        t,
                        c,
                        Request::Observe {
                            key: "ballot".into(),
                            value: observe_value(schedule.seed, t, c, round),
                        },
                        step,
                    );
                    churn.data(
                        t,
                        c,
                        Request::Ballot {
                            round,
                            value: ballot_value(schedule.seed, t, c, round),
                        },
                        step,
                    );
                }
            }
        }
        // Drain whatever was admitted, then force the rounds shut and
        // drain again — a tick always finds mailbox room this way.
        let out = churn.core.pump_all();
        churn.account(&out, step);
        for t in 0..SERVE_TENANTS {
            if !churn.live[usize::from(t)] {
                continue;
            }
            let round = churn.next_round[usize::from(t)];
            churn.data(t, 0, Request::Tick { round }, step);
            churn.next_round[usize::from(t)] = round + 1;
            churn.ticks_issued += 1;
        }
        let out = churn.core.pump_all();
        churn.account(&out, step);
    }
    churn.finish(schedule.max_steps)
}

impl Churn {
    /// Registers tenant `t` (initial or post-crash re-registration).
    fn register(&mut self, t: u16, step: u64) {
        let frame = Frame::request(
            TenantId(t),
            0,
            Request::RegisterTenant {
                expected_clients: SERVE_CLIENTS,
                mailbox_cap: 0,
                ballot_min: -100,
                ballot_max: 100,
            },
        );
        match self.core.enqueue(self.addr(t, 0), &frame.encode()) {
            Enqueued::Handled(out) => self.account(&out, step),
            other => self.violations.push(Violation {
                invariant: Invariant::NoLivelock,
                strategy: "serve".into(),
                step,
                detail: format!("t{t} registration was not handled inline: {other:?}"),
            }),
        }
        self.live[usize::from(t)] = true;
        self.next_round[usize::from(t)] = 1;
    }

    /// Evicts tenant `t`, banking its final digest totals.
    fn evict(&mut self, t: u16, step: u64) {
        if !self.live[usize::from(t)] {
            return;
        }
        let frame = Frame::request(TenantId(t), 0, Request::Evict);
        match self.core.enqueue(self.addr(t, 0), &frame.encode()) {
            Enqueued::Handled(out) => {
                for (_, bytes) in out {
                    match Frame::decode(&bytes).expect("server frames decode").body {
                        Body::Reply(Reply::Evicted(digest)) => {
                            self.banked_rounds += digest.rounds;
                            self.banked_observes += digest.observes;
                        }
                        other => self.violations.push(Violation {
                            invariant: Invariant::NoLivelock,
                            strategy: "serve".into(),
                            step,
                            detail: format!("t{t} eviction answered {other:?}"),
                        }),
                    }
                }
            }
            other => self.violations.push(Violation {
                invariant: Invariant::NoLivelock,
                strategy: "serve".into(),
                step,
                detail: format!("t{t} eviction was not handled inline: {other:?}"),
            }),
        }
        self.live[usize::from(t)] = false;
        self.evictions += 1;
    }

    /// The observation flood a `SefiStorm` maps to: `n` back-to-back
    /// observes with no pump in between, so a tight mailbox must start
    /// rejecting — and account for every rejection.
    fn flood(&mut self, t: u16, n: u32, step: u64) {
        for i in 0..n {
            self.data(
                t,
                0,
                Request::Observe {
                    key: "ballot".into(),
                    value: i64::from(i),
                },
                step,
            );
        }
    }

    /// Submits one data request and accounts for the admission verdict.
    fn data(&mut self, t: u16, c: u32, request: Request, step: u64) {
        let frame = Frame::request(TenantId(t), c, request);
        self.sent += 1;
        match self.core.enqueue(self.addr(t, c), &frame.encode()) {
            Enqueued::Queued(_) => {}
            Enqueued::Handled(out) | Enqueued::Rejected(out) => self.account(&out, step),
        }
    }

    /// Counts replies and checks per-round properties.
    fn account(&mut self, out: &[Outbound], step: u64) {
        for (_, bytes) in out {
            let frame = Frame::decode(bytes).expect("server frames decode");
            match frame.body {
                Body::Reply(Reply::Observed { .. }) => self.observed += 1,
                Body::Reply(Reply::Rejected { .. }) => self.rejected += 1,
                Body::Reply(Reply::RoundResult(result)) if result.dtof > result.n => {
                    self.violations.push(Violation {
                        invariant: Invariant::DtofNonNegative,
                        strategy: "serve".into(),
                        step,
                        detail: format!(
                            "round {} of t{} reports dtof {} beyond n {}",
                            result.round, frame.tenant.0, result.dtof, result.n
                        ),
                    });
                }
                _ => {}
            }
        }
    }

    /// The churn driver's synthetic return address for `(t, c)`.
    #[allow(clippy::unused_self)]
    fn addr(&self, t: u16, c: u32) -> ClientAddr {
        ClientAddr(1000 + u64::from(t) * 100 + u64::from(c))
    }

    /// Final digests, the cross-checks, and the report.
    fn finish(mut self, steps: u64) -> ServeChurnReport {
        let out = self.core.pump_all();
        self.account(&out, steps);
        let mut total_rounds = self.banked_rounds;
        let mut total_observes = self.banked_observes;
        for tenant in self.core.tenant_ids() {
            let digest = self.core.tenant_digest(tenant).expect("hosted tenant");
            total_rounds += digest.rounds;
            total_observes += digest.observes;
        }
        if total_observes != self.observed {
            self.violations.push(Violation {
                invariant: Invariant::NoLostShard,
                strategy: "serve".into(),
                step: steps,
                detail: format!(
                    "digests carry {total_observes} observations but clients got {} acks",
                    self.observed
                ),
            });
        }
        if total_rounds != self.ticks_issued {
            self.violations.push(Violation {
                invariant: Invariant::NoLivelock,
                strategy: "serve".into(),
                step: steps,
                detail: format!(
                    "{} ticks issued but {total_rounds} rounds completed",
                    self.ticks_issued
                ),
            });
        }
        let frames = self.registry.counter("serve.frames").get();
        let accounted = self.registry.counter("serve.handled").get()
            + self.registry.counter("serve.queued").get()
            + self.registry.counter("serve.rejected").get()
            + self.registry.counter("serve.bad_frames").get();
        if frames != accounted {
            self.violations.push(Violation {
                invariant: Invariant::BusAccounting,
                strategy: "serve".into(),
                step: steps,
                detail: format!("serve.frames {frames} != accounted {accounted}"),
            });
        }
        ServeChurnReport {
            steps,
            sent: self.sent,
            observed: self.observed,
            rejected: self.rejected,
            rounds: total_rounds,
            evictions: self.evictions,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate, Profile};

    #[test]
    fn churn_is_deterministic() {
        let schedule = generate(0xAF7A, 28, Profile::Wild);
        let a = run_serve_churn(&schedule, &Registry::new());
        let b = run_serve_churn(&schedule, &Registry::new());
        assert_eq!(a, b);
    }

    #[test]
    fn churn_battery_upholds_the_serving_invariants() {
        for seed in 0xAF7A..0xAF7A + 24 {
            let schedule = generate(seed, 28, Profile::Battery);
            let report = run_serve_churn(&schedule, &Registry::new());
            assert!(
                report.passed(),
                "seed {seed:#x} violated: {:?}",
                report.violations
            );
            assert!(report.sent > 0 && report.rounds > 0);
        }
    }

    #[test]
    fn wild_churn_keeps_the_implementation_invariants() {
        // Wild schedules may evict tenants forever or starve ballots;
        // the implementation tier (accounting, no lost observations)
        // must hold regardless.
        let mut evictions = 0;
        let mut rejected = 0;
        for seed in 0x5EED..0x5EED + 24 {
            let schedule = generate(seed, 28, Profile::Wild);
            let report = run_serve_churn(&schedule, &Registry::new());
            let hard: Vec<_> = report
                .violations
                .iter()
                .filter(|v| !v.invariant.is_policy())
                .collect();
            assert!(hard.is_empty(), "seed {seed:#x} violated: {hard:?}");
            evictions += report.evictions;
            rejected += report.rejected;
        }
        assert!(evictions > 0, "the wild battery must churn tenants");
        assert!(rejected > 0, "the wild battery must exercise quotas");
    }
}
