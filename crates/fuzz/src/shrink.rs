//! Delta-debugging shrinker: minimize a failing schedule to a shortest
//! event list that still trips the same invariant.
//!
//! Classic `ddmin` over the event vector (remove chunks, halve the
//! granularity when stuck) followed by an explicit singleton pass run to
//! fixpoint, so the result is *1-minimal*: deleting any single remaining
//! event makes the target invariant stop firing.  Every candidate is a
//! full deterministic re-run, so the shrink trace itself is reproducible
//! from the seed.

use afta_telemetry::Registry;

use crate::invariant::{Invariant, Violation};
use crate::run::{run_schedule, BugFlags, RunConfig};
use crate::schedule::Schedule;

/// The result of a successful shrink.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The 1-minimal failing schedule.
    pub minimized: Schedule,
    /// The violation the minimized schedule still produces.
    pub violation: Violation,
    /// Human-readable log of every successful reduction, in order.
    pub trace: Vec<String>,
    /// Total schedule executions the shrink cost.
    pub runs: u64,
}

/// Shrinks `schedule` against `target`, returning `None` if the schedule
/// does not violate `target` in the first place.
///
/// Deterministic: candidates are tried in a fixed order and each
/// candidate run is itself deterministic, so the same (schedule, target)
/// pair always yields the same minimized schedule and trace.
#[must_use]
pub fn shrink(
    schedule: &Schedule,
    target: Invariant,
    flags: &BugFlags,
    cfg: &RunConfig,
) -> Option<ShrinkOutcome> {
    let session = Registry::disabled();
    let mut runs = 0u64;
    let mut fails = |candidate: &Schedule| -> Option<Violation> {
        runs += 1;
        run_schedule(candidate, flags, cfg, &session)
            .violation_of(target)
            .cloned()
    };

    let mut violation = fails(schedule)?;
    let mut current = schedule.clone();
    let mut trace = vec![format!(
        "start: {} events, target {target}: {}",
        current.events.len(),
        violation.detail
    )];

    // ddmin: remove progressively smaller chunks while the target
    // invariant keeps firing.
    let mut chunk = (current.events.len() / 2).max(1);
    loop {
        if current.events.len() <= 1 {
            break;
        }
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.events.len() {
            let end = (start + chunk).min(current.events.len());
            let mut events = current.events.clone();
            events.drain(start..end);
            let candidate = Schedule {
                seed: current.seed,
                max_steps: current.max_steps,
                events,
            };
            if let Some(v) = fails(&candidate) {
                trace.push(format!(
                    "drop events [{start}..{end}): {} -> {} events, {target} still trips",
                    current.events.len(),
                    candidate.events.len()
                ));
                current = candidate;
                violation = v;
                reduced = true;
                // Re-test from the same offset against the shorter list.
            } else {
                start = end;
            }
        }
        if reduced {
            chunk = (current.events.len() / 2).max(1);
        } else if chunk == 1 {
            break;
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    // Explicit singleton fixpoint: certify 1-minimality.
    loop {
        let mut removed = false;
        for index in 0..current.events.len() {
            let candidate = current.without_event(index);
            if let Some(v) = fails(&candidate) {
                trace.push(format!(
                    "drop single event {index} ({}): {target} still trips",
                    current.events[index]
                ));
                current = candidate;
                violation = v;
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }

    trace.push(format!(
        "1-minimal at {} events after {runs} runs",
        current.events.len()
    ));
    Some(ShrinkOutcome {
        minimized: current,
        violation,
        trace,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind};
    use std::time::Duration;

    fn fast() -> RunConfig {
        RunConfig {
            round_timeout: Duration::from_millis(25),
        }
    }

    #[test]
    fn shrink_returns_none_for_passing_schedule() {
        let quiet = Schedule::quiet(5, 12);
        assert!(shrink(&quiet, Invariant::NoLivelock, &BugFlags::default(), &fast()).is_none());
    }

    #[test]
    fn shrink_strips_irrelevant_events_and_is_one_minimal() {
        // Monotonic-spans violation (under the raw_skew bug flag) caused
        // by a negative skew step; the storm and partition are noise the
        // shrinker must remove.
        let schedule = Schedule {
            seed: 42,
            max_steps: 10,
            events: vec![
                FaultEvent {
                    at: 1,
                    kind: FaultKind::SefiStorm {
                        flips: 3,
                        sefi: false,
                    },
                },
                FaultEvent {
                    at: 2,
                    kind: FaultKind::ClockSkew { delta: 9 },
                },
                FaultEvent {
                    at: 3,
                    kind: FaultKind::Partition {
                        a: 1,
                        b: 2,
                        heal_after: 2,
                    },
                },
                FaultEvent {
                    at: 4,
                    kind: FaultKind::ClockSkew { delta: -6 },
                },
            ],
        };
        let flags = BugFlags {
            raw_skew: true,
            ..BugFlags::default()
        };
        let outcome = shrink(&schedule, Invariant::MonotonicSpans, &flags, &fast())
            .expect("schedule trips monotonic-spans under raw_skew");
        // The positive-then-negative skew pair is the minimal core: with
        // clamping disabled the raw trace dips exactly when accumulated
        // skew decreases below the previous observation.
        assert!(
            outcome.minimized.events.len() < schedule.events.len(),
            "trace: {:?}",
            outcome.trace
        );
        assert!(outcome
            .minimized
            .events
            .iter()
            .all(|ev| matches!(ev.kind, FaultKind::ClockSkew { .. })));
        // 1-minimality: removing any single event makes the target pass.
        let session = Registry::disabled();
        for i in 0..outcome.minimized.events.len() {
            let candidate = outcome.minimized.without_event(i);
            let report = run_schedule(&candidate, &flags, &fast(), &session);
            assert!(
                report.violation_of(Invariant::MonotonicSpans).is_none(),
                "removing event {i} should cure the violation"
            );
        }
    }

    #[test]
    fn shrink_trace_is_deterministic() {
        let schedule = Schedule {
            seed: 9,
            max_steps: 10,
            events: vec![
                FaultEvent {
                    at: 1,
                    kind: FaultKind::ClockSkew { delta: 7 },
                },
                FaultEvent {
                    at: 2,
                    kind: FaultKind::ClockSkew { delta: -5 },
                },
                FaultEvent {
                    at: 3,
                    kind: FaultKind::LinkBurst {
                        from: 0,
                        to: 1,
                        fault: crate::schedule::LinkFault::Duplicate,
                        len: 2,
                    },
                },
            ],
        };
        let flags = BugFlags {
            raw_skew: true,
            ..BugFlags::default()
        };
        let a = shrink(&schedule, Invariant::MonotonicSpans, &flags, &fast()).unwrap();
        let b = shrink(&schedule, Invariant::MonotonicSpans, &flags, &fast()).unwrap();
        assert_eq!(a.minimized, b.minimized);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.runs, b.runs);
    }
}
