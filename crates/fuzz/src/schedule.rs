//! Fault schedules: the fuzzer's input grammar and its seeded generator.
//!
//! A [`Schedule`] is a finite, sorted program of [`FaultEvent`]s over
//! virtual time — the *hazard script* one deterministic simulation run
//! executes against all three of the paper's strategies.  Everything
//! about a schedule derives from a single `u64` seed: the same seed
//! always produces the byte-identical schedule (and, downstream, the
//! byte-identical run and shrink trace).

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default virtual-step budget for generated schedules.
pub const DEFAULT_MAX_STEPS: u64 = 28;

/// Number of voter nodes in the §3.3 farm driver (`NodeId(1)..=NodeId(5)`;
/// `NodeId(0)` is the coordinator).
pub const VOTERS: u16 = 5;

/// Which link fault a [`FaultKind::LinkBurst`] applies for its duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkFault {
    /// Lose every frame on the link.
    Drop,
    /// Deliver every frame twice.
    Duplicate,
    /// Delay every frame past the round deadline.
    Delay,
}

/// Which side of the §2 *clashing edit* scenario a [`FaultKind::ClashEdit`]
/// plays: two operators concurrently revising the failure knowledge base
/// with contradictory beliefs about the module population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClashSide {
    /// `e1`: "the lot is benign" — downgrades the record to `F0`, which
    /// deselects memory protection and rebinds the patterns side to
    /// redoing (transient-fault assumption).
    E1,
    /// `e2`: "the lot is harsh" — upgrades the record to `F4`, selecting
    /// the most expensive memory method and rebinding the patterns side
    /// to reconfiguration (permanent-fault assumption).
    E2,
}

/// One atomic fault in a schedule, fired when the run reaches virtual
/// step [`FaultEvent::at`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cut the network between nodes `a` and `b` (coordinator is node 0,
    /// voters 1..=5).  Healed `heal_after` steps later; `0` = never.
    Partition {
        /// One end of the cut link.
        a: u16,
        /// The other end.
        b: u16,
        /// Steps until the cut heals (`0` = stays cut).
        heal_after: u64,
    },
    /// Degrade the directed link `from -> to` with `fault` for `len`
    /// steps, then restore it to perfect.
    LinkBurst {
        /// Sending node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// Which fault the link applies.
        fault: LinkFault,
        /// Steps until the link is restored.
        len: u64,
    },
    /// Crash voter `voter` (all its traffic is cut), revived
    /// `revive_after` steps later; `0` = stays down.  Also drives the
    /// §3.2 component oracle: the protected component fails permanently
    /// while the crash window is open.
    VoterCrash {
        /// The crashed voter (1..=5).
        voter: u16,
        /// Steps until the voter revives (`0` = stays down).
        revive_after: u64,
    },
    /// A radiation burst against the §3.1 memory: `flips` seeded bit
    /// flips across the method's devices, plus (when `sefi` is set) a
    /// single-event functional interrupt halting device 0 until a power
    /// cycle.  Also opens a transient-fault window on the §3.2 oracle.
    SefiStorm {
        /// Bit flips to inject, spread deterministically over devices.
        flips: u32,
        /// Whether to additionally inject a SEFI on device 0.
        sefi: bool,
    },
    /// One side of the clashing knowledge-base edit lands: the KB record
    /// for the module lot is rewritten and the memory strategy
    /// reconfigures (§3.1) while the patterns strategy rebinds (§3.2).
    ClashEdit {
        /// Which operator's belief wins this edit.
        side: ClashSide,
    },
    /// Step the virtual Tick source by `delta` ticks (negative = the
    /// clock tries to run backwards; the clamped-step discipline of
    /// `SkewedClock` must keep observations monotone).
    ClockSkew {
        /// Skew step in ticks.
        delta: i64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Partition { a, b, heal_after } => {
                write!(f, "partition {a}<->{b} heal_after={heal_after}")
            }
            FaultKind::LinkBurst {
                from,
                to,
                fault,
                len,
            } => write!(f, "link {from}->{to} {fault:?} len={len}"),
            FaultKind::VoterCrash {
                voter,
                revive_after,
            } => write!(f, "crash voter {voter} revive_after={revive_after}"),
            FaultKind::SefiStorm { flips, sefi } => {
                write!(f, "sefi-storm flips={flips} sefi={sefi}")
            }
            FaultKind::ClashEdit { side } => write!(f, "clash-edit {side:?}"),
            FaultKind::ClockSkew { delta } => write!(f, "clock-skew {delta:+}"),
        }
    }
}

/// One scheduled fault: fire `kind` when the run reaches step `at`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual step (1-based round number) at which the fault fires.
    pub at: u64,
    /// The fault.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}: {}", self.at, self.kind)
    }
}

/// A complete fuzz input: seed, step budget, and the sorted fault
/// program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The seed this schedule was generated from (also seeds the run's
    /// own random streams — network, memory scrubs, workload ops).
    pub seed: u64,
    /// Virtual steps (voting rounds / memory epochs) the run executes.
    pub max_steps: u64,
    /// The fault program, sorted by [`FaultEvent::at`] (stable, so
    /// same-step events keep generation order).
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// A fault-free schedule over `max_steps` steps.
    #[must_use]
    pub fn quiet(seed: u64, max_steps: u64) -> Self {
        Self {
            seed,
            max_steps,
            events: Vec::new(),
        }
    }

    /// Canonical pretty JSON encoding.  Field order follows declaration
    /// order, so the same schedule always encodes to the same bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedule serializes")
    }

    /// Parses a schedule from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Returns a copy with event `index` removed (used by the shrinker's
    /// singleton pass and the corpus 1-minimality meta-test).
    #[must_use]
    pub fn without_event(&self, index: usize) -> Self {
        let mut events = self.events.clone();
        events.remove(index);
        Self {
            seed: self.seed,
            max_steps: self.max_steps,
            events,
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed 0x{:016x} steps {} events {}",
            self.seed,
            self.max_steps,
            self.events.len()
        )?;
        for ev in &self.events {
            write!(f, "\n  {ev}")?;
        }
        Ok(())
    }
}

/// Generator hazard envelope.
///
/// The distinction mirrors the invariant taxonomy (see
/// [`crate::Invariant`]): *battery* schedules stay inside margins under
/// which even the policy invariants are guaranteed — they gate CI green.
/// *Wild* schedules roam the full hazard space (unhealed partitions,
/// `e1` downgrade edits, longer bursts) and are how new reproducers are
/// hunted; a wild schedule violating a policy invariant is a finding to
/// triage, not automatically a bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// CI-safe margins: every generated schedule must pass all
    /// invariants.
    Battery,
    /// Full hazard space, including schedules that legitimately defeat
    /// the policy invariants.
    Wild,
}

/// Generates the schedule for `seed` under `profile`.
///
/// Deterministic: the event stream is drawn from the dedicated
/// `"fuzz.schedule"` named stream of [`afta_sim::SeedFactory`], so runs
/// and replays that share a seed share the schedule byte-for-byte.
#[must_use]
pub fn generate(seed: u64, max_steps: u64, profile: Profile) -> Schedule {
    let factory = afta_sim::SeedFactory::new(seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(factory.derived_seed("fuzz.schedule"));
    let battery = profile == Profile::Battery;

    let count = if battery {
        rng.gen_range(1..=4usize)
    } else {
        rng.gen_range(1..=6usize)
    };
    // Leave a healing tail so battery schedules can always recover
    // before the step budget runs out.
    let latest = if battery {
        max_steps.saturating_sub(16).max(1)
    } else {
        max_steps.max(1)
    };

    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let at = rng.gen_range(1..=latest);
        let kind = match rng.gen_range(0..6u32) {
            0 => {
                let a = rng.gen_range(0..=VOTERS);
                let mut b = rng.gen_range(0..=VOTERS);
                if b == a {
                    b = (b + 1) % (VOTERS + 1);
                }
                let heal_after = if battery {
                    rng.gen_range(1..=5u64)
                } else if rng.gen_bool(0.2) {
                    0
                } else {
                    rng.gen_range(1..=8u64)
                };
                FaultKind::Partition { a, b, heal_after }
            }
            1 => {
                let from = rng.gen_range(0..=VOTERS);
                let mut to = rng.gen_range(0..=VOTERS);
                if to == from {
                    to = (to + 1) % (VOTERS + 1);
                }
                let fault = match rng.gen_range(0..3u32) {
                    0 => LinkFault::Drop,
                    1 => LinkFault::Duplicate,
                    _ => LinkFault::Delay,
                };
                let len = if battery {
                    rng.gen_range(1..=5u64)
                } else {
                    rng.gen_range(1..=10u64)
                };
                FaultKind::LinkBurst {
                    from,
                    to,
                    fault,
                    len,
                }
            }
            2 => {
                let voter = rng.gen_range(1..=VOTERS);
                let revive_after = if battery {
                    rng.gen_range(1..=5u64)
                } else if rng.gen_bool(0.2) {
                    0
                } else {
                    rng.gen_range(1..=8u64)
                };
                FaultKind::VoterCrash {
                    voter,
                    revive_after,
                }
            }
            3 => FaultKind::SefiStorm {
                flips: rng.gen_range(1..=24u32),
                sefi: rng.gen_bool(0.3),
            },
            4 => FaultKind::ClashEdit {
                side: if battery || rng.gen_bool(0.5) {
                    // E1 downgrades protection below the module's real
                    // behaviour — outside the battery envelope.
                    ClashSide::E2
                } else {
                    ClashSide::E1
                },
            },
            _ => FaultKind::ClockSkew {
                delta: rng.gen_range(-12..=20i64),
            },
        };
        events.push(FaultEvent { at, kind });
    }
    events.sort_by_key(|ev| ev.at);

    Schedule {
        seed,
        max_steps,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_bytes() {
        let a = generate(0xABCD_1234, DEFAULT_MAX_STEPS, Profile::Battery);
        let b = generate(0xABCD_1234, DEFAULT_MAX_STEPS, Profile::Battery);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_round_trips() {
        let s = generate(7, DEFAULT_MAX_STEPS, Profile::Wild);
        let back = Schedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn battery_schedules_stay_inside_margins() {
        for seed in 0..200u64 {
            let s = generate(seed, DEFAULT_MAX_STEPS, Profile::Battery);
            assert!(!s.events.is_empty() && s.events.len() <= 4);
            for ev in &s.events {
                assert!(ev.at >= 1 && ev.at <= DEFAULT_MAX_STEPS - 16);
                match &ev.kind {
                    FaultKind::Partition { heal_after, .. } => {
                        assert!(
                            (1..=5).contains(heal_after),
                            "battery partitions always heal: {ev}"
                        );
                    }
                    FaultKind::VoterCrash { revive_after, .. } => {
                        assert!(
                            (1..=5).contains(revive_after),
                            "battery crashes always revive: {ev}"
                        );
                    }
                    FaultKind::LinkBurst { len, .. } => assert!((1..=5).contains(len)),
                    FaultKind::ClashEdit { side } => {
                        assert_eq!(
                            *side,
                            ClashSide::E2,
                            "battery never downgrades the KB: {ev}"
                        );
                    }
                    FaultKind::SefiStorm { .. } | FaultKind::ClockSkew { .. } => {}
                }
            }
        }
    }

    #[test]
    fn events_are_sorted_by_step() {
        for seed in 0..50u64 {
            let s = generate(seed, DEFAULT_MAX_STEPS, Profile::Wild);
            for pair in s.events.windows(2) {
                assert!(pair[0].at <= pair[1].at);
            }
        }
    }

    #[test]
    fn without_event_removes_exactly_one() {
        let s = generate(3, DEFAULT_MAX_STEPS, Profile::Wild);
        if s.events.is_empty() {
            return;
        }
        let t = s.without_event(0);
        assert_eq!(t.events.len(), s.events.len() - 1);
        assert_eq!(t.seed, s.seed);
        assert_eq!(t.max_steps, s.max_steps);
    }
}
