//! Deterministic-simulation scenario fuzzer for the AFTA reproduction.
//!
//! De Florio's argument is that assumption failures surface at the
//! *composition* of strategies, not inside any single one.  This crate
//! hunts those compositions mechanically: a seeded generator composes
//! random fault programs — network partitions, drop/duplicate/delay
//! bursts, SEFI bit-flip storms, clashing `e1`/`e2` knowledge-base
//! edits, cascading voter loss, clock skew on the virtual Tick — and
//! replays each against all three of the paper's strategies at once:
//!
//! * §3.1 memory access (`afta-memaccess` over `afta-memsim` modules),
//! * §3.2 fault-tolerance patterns (`afta-ftpatterns` adaptive manager),
//! * §3.3 redundant voting (`afta-net`'s `DistributedVotingFarm` over
//!   `SimTransport`).
//!
//! After every schedule a typed [`Invariant`] set is checked; on
//! violation a delta-debugging [`shrink()`] minimizes the schedule to a
//! 1-minimal failing core keyed by a single `AFTA_SEED`, emitted as a
//! self-contained [`Reproducer`] file.  Minimized reproducers are
//! committed under `crates/fuzz/corpus/` and replayed as pinned
//! regression tests.
//!
//! Everything is keyed by one `u64` seed: the same seed produces the
//! byte-identical schedule JSON, run verdict, and shrink trace.
//!
//! # Example
//!
//! ```
//! use afta_fuzz::{generate, run_schedule, BugFlags, Profile, RunConfig};
//! use afta_telemetry::Registry;
//! use std::time::Duration;
//!
//! let schedule = generate(0xAF7A, 28, Profile::Battery);
//! let cfg = RunConfig { round_timeout: Duration::from_millis(25) };
//! let report = run_schedule(&schedule, &BugFlags::default(), &cfg, &Registry::disabled());
//! assert!(report.passed(), "battery schedules uphold every invariant");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod export;
pub mod invariant;
pub mod run;
pub mod schedule;
pub mod serve_churn;
pub mod shrink;

pub use corpus::{assert_one_minimal, load_corpus, replay_reproducer, Reproducer};
pub use export::{reproducer_to_lint, schedule_to_lint};
pub use invariant::{Invariant, Violation};
pub use run::{
    run_schedule, BugFlags, FarmSummary, MemSummary, PatternsSummary, RunConfig, RunReport,
};
pub use schedule::{
    generate, ClashSide, FaultEvent, FaultKind, LinkFault, Profile, Schedule, DEFAULT_MAX_STEPS,
};
pub use serve_churn::{run_serve_churn, ServeChurnReport, SERVE_CLIENTS, SERVE_TENANTS};
pub use shrink::{shrink, ShrinkOutcome};
