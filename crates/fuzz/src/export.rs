//! Exporting fuzz artefacts to the static analyzer.
//!
//! `afta-lint`'s envelope pass (`AFTA-D006`/`AFTA-D007`) checks a
//! schedule against the hazard envelope it claims *without executing
//! it*.  The lint crate deliberately does not depend on this one — it
//! mirrors the schedule JSON grammar instead — so this module is the
//! bridge in the only allowed direction: it renders a [`Schedule`] or a
//! corpus [`Reproducer`] to its canonical JSON and hands that to the
//! linter's parser.  A plain schedule claims the *battery* envelope (it
//! is what the battery profile generates for CI); a reproducer claims
//! *wild* (it was hunted in the full hazard space).
//!
//! The differential tests at the bottom are the point: every schedule
//! the battery generator can emit must lint clean under the battery
//! claim, pinning the linter's mirrored margins to the generator's real
//! ones.

use afta_lint::ScheduleDecl;

use crate::corpus::Reproducer;
use crate::schedule::Schedule;

/// Abstracts a generated schedule for the linter, under the battery
/// envelope claim.
///
/// `name` becomes the diagnostic's source label (use the file path or
/// the corpus entry name).
///
/// # Panics
///
/// Never in practice: the schedule serializes to the exact grammar the
/// linter mirrors.
#[must_use]
pub fn schedule_to_lint(name: &str, schedule: &Schedule) -> ScheduleDecl {
    ScheduleDecl::from_fuzz_json(name, &schedule.to_json())
        .expect("generated schedule JSON matches the linter's mirrored grammar")
}

/// Abstracts a corpus reproducer for the linter, under the wild
/// envelope claim.
///
/// # Panics
///
/// Never in practice: reproducer JSON embeds a well-formed schedule.
#[must_use]
pub fn reproducer_to_lint(name: &str, rep: &Reproducer) -> ScheduleDecl {
    ScheduleDecl::from_fuzz_json(name, &rep.to_json())
        .expect("reproducer JSON matches the linter's mirrored grammar")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate, FaultEvent, FaultKind, Profile, DEFAULT_MAX_STEPS};
    use afta_lint::EnvelopeClaim;

    #[test]
    fn plain_schedules_claim_the_battery() {
        let s = generate(7, DEFAULT_MAX_STEPS, Profile::Battery);
        let decl = schedule_to_lint("battery/7.json", &s);
        assert_eq!(decl.envelope, EnvelopeClaim::Battery);
        assert_eq!(decl.source, "battery/7.json");
        assert_eq!(decl.max_steps, s.max_steps);
        assert_eq!(decl.events.len(), s.events.len());
    }

    #[test]
    fn reproducers_claim_the_wild() {
        let rep = Reproducer {
            afta_seed: "0x0000000000000007".into(),
            invariant: crate::invariant::Invariant::NoLivelock,
            strategy: "farm".into(),
            detail: "x".into(),
            shrink_runs: 1,
            removed_events: 0,
            replay: "afta-fuzz replay <this-file>".into(),
            schedule: Schedule {
                seed: 7,
                max_steps: DEFAULT_MAX_STEPS,
                events: vec![FaultEvent {
                    at: 2,
                    kind: FaultKind::ClockSkew { delta: -3 },
                }],
            },
        };
        let decl = reproducer_to_lint("wild/skew.json", &rep);
        assert_eq!(decl.envelope, EnvelopeClaim::Wild);
        assert_eq!(decl.events.len(), 1);
        assert_eq!(decl.events[0].at, 2);
    }

    #[test]
    fn hazard_steps_mirror_the_event_stream() {
        let s = generate(0xAF7A, DEFAULT_MAX_STEPS, Profile::Wild);
        let decl = schedule_to_lint("wild/af7a.json", &s);
        let lint_steps: Vec<u64> = decl.events.iter().map(|e| e.at).collect();
        let fuzz_steps: Vec<u64> = s.events.iter().map(|e| e.at).collect();
        assert_eq!(lint_steps, fuzz_steps);
    }
}
