//! The deterministic runner: execute one [`Schedule`] against all three
//! strategies and check the invariant set.
//!
//! Each run is hermetic — its own [`SimNetwork`], memory modules, event
//! bus, and per-run telemetry registry — and every random draw comes
//! from a named stream of the schedule's seed, so the same schedule
//! always yields the byte-identical [`RunReport`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use afta_eventbus::Bus;
use afta_ftpatterns::{AdaptiveFtManager, Fault, FaultNotification};
use afta_memaccess::{configure, AccessMethod, FailureKnowledgeBase, FailureRecord};
use afta_memsim::{BehaviorClass, FaultRates, MemoryDevice, MemoryTechnology, Severity, Spd};
use afta_net::{
    run_voter, DistributedVotingFarm, FarmConfig, LinkProfile, NodeId, SimNetwork, Transport,
};
use afta_sim::{SeedFactory, SkewedClock};
use afta_telemetry::Registry;
use afta_voting::{dtof_checked, dtof_max, VoteOutcome};
use rand::{rngs::StdRng, Rng};
use serde::{Deserialize, Serialize};

use crate::invariant::{Invariant, Violation};
use crate::schedule::{ClashSide, FaultKind, LinkFault, Schedule, VOTERS};

/// Consecutive majority-less §3.3 rounds tolerated before the farm is
/// declared livelocked.
pub const FARM_LIVELOCK_WINDOW: u64 = 12;
/// Consecutive result-less §3.2 rounds tolerated before the manager is
/// declared livelocked.
pub const PATTERNS_LIVELOCK_WINDOW: u64 = 8;
/// Rounds after (quarantine, obstruction healed) within which a
/// quarantined voter must rejoin: two probe cycles plus slack.
pub const QUARANTINE_GRACE: u64 = 10;
/// §3.1 shards under test (one byte each).
pub const SHARDS: usize = 48;
/// Physical bytes per simulated memory module.
pub const MODULE_SIZE: usize = 256;
/// Memory operations (reads/writes) per virtual step.
pub const MEM_OPS_PER_STEP: usize = 4;
/// Steps a [`FaultKind::SefiStorm`] keeps the §3.2 transient-fault
/// window open.
pub const TRANSIENT_WINDOW: u64 = 3;

/// Intentionally plantable bugs, used by the invariant-coverage tests to
/// prove every invariant actually fires.  All off in production runs;
/// reproducer files never carry flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugFlags {
    /// §3.1: update the shadow model without writing the device
    /// (lost-update bug) — trips [`Invariant::NoLostShard`].
    pub mem_blind_writes: bool,
    /// §3.3: recompute majority-less rounds' dtof with wrapping
    /// arithmetic — trips [`Invariant::DtofNonNegative`].
    pub dtof_wrapping: bool,
    /// §3.3: disable quarantine probes — trips
    /// [`Invariant::QuarantineRejoins`].
    pub farm_no_probes: bool,
    /// §3.2: bump the bus-drop counter without a matching loss — trips
    /// [`Invariant::BusAccounting`].
    pub bus_miscount: bool,
    /// §3.2: report raw (unclamped) skewed ticks — trips
    /// [`Invariant::MonotonicSpans`].
    pub raw_skew: bool,
}

/// Runner knobs that are *not* part of the schedule (they affect
/// wall-clock speed, never the verdict).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// §3.3 round deadline.  Healthy rounds finish in microseconds; only
    /// faulted rounds pay this, so smaller is faster but must leave the
    /// in-process voters room to reply.
    pub round_timeout: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            round_timeout: Duration::from_millis(80),
        }
    }
}

impl RunConfig {
    /// Reads `AFTA_FUZZ_ROUND_TIMEOUT_MS` from the environment, falling
    /// back to the default.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(ms) = std::env::var("AFTA_FUZZ_ROUND_TIMEOUT_MS") {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                cfg.round_timeout = Duration::from_millis(ms.max(1));
            }
        }
        cfg
    }
}

/// §3.3 driver summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FarmSummary {
    /// Voting rounds executed.
    pub rounds: u64,
    /// Rounds that reached a majority.
    pub majorities: u64,
    /// Longest run of consecutive majority-less rounds.
    pub longest_outage: u64,
    /// Per-round digests (`r1 n3 v1/m0 dtof2 -> Hold` style).
    pub digests: Vec<String>,
}

/// §3.1 driver summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSummary {
    /// Method labels in binding order (reconfigurations append).
    pub method_history: Vec<String>,
    /// Shard operations executed.
    pub ops: u64,
    /// Errors the method *reported* (detected, hence tolerable).
    pub detected_losses: u64,
    /// Reads that returned wrong data with no error — each one is a
    /// [`Invariant::NoLostShard`] violation.
    pub wrong_reads: u64,
    /// KB-edit-driven reconfigurations performed.
    pub reconfigures: u64,
}

/// §3.2 driver summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternsSummary {
    /// Manager rounds executed.
    pub rounds: u64,
    /// Rounds that delivered no result.
    pub failed_rounds: u64,
    /// Longest run of consecutive result-less rounds.
    pub longest_outage: u64,
    /// D1<->D2 reshapes performed by the adaptive manager.
    pub reshapes: u64,
    /// Spares consumed (adaptive + forced-static paths).
    pub spares_consumed: u64,
    /// Fault notifications published on the bus.
    pub notifications: u64,
    /// Deliveries lost to the deliberately lagging subscriber.
    pub bus_lost: u64,
    /// Value of the `eventbus.bus_dropped_total` telemetry counter.
    pub bus_dropped_counter: u64,
    /// Tick observation per round (raw signed when the `raw_skew` bug
    /// flag is set, clamped otherwise).
    pub tick_trace: Vec<i64>,
}

/// The complete, deterministic verdict of one schedule run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// The schedule's seed.
    pub seed: u64,
    /// Every invariant violation observed, in driver order (farm, mem,
    /// patterns).
    pub violations: Vec<Violation>,
    /// §3.3 summary.
    pub farm: FarmSummary,
    /// §3.1 summary.
    pub mem: MemSummary,
    /// §3.2 summary.
    pub patterns: PatternsSummary,
}

impl RunReport {
    /// Whether the run upheld every invariant.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// First violation of `invariant`, if any.
    #[must_use]
    pub fn violation_of(&self, invariant: Invariant) -> Option<&Violation> {
        self.violations.iter().find(|v| v.invariant == invariant)
    }

    /// Canonical pretty JSON encoding (deterministic field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Executes `schedule` against all three strategies and checks every
/// invariant.
///
/// `session` receives aggregate `fuzz.*` counters; the run itself uses
/// private registries so schedules never observe each other.
#[must_use]
pub fn run_schedule(
    schedule: &Schedule,
    flags: &BugFlags,
    cfg: &RunConfig,
    session: &Registry,
) -> RunReport {
    session.counter("fuzz.schedules").inc();

    let (farm, mut violations) = run_farm(schedule, flags, cfg);
    let (mem, mem_violations) = run_mem(schedule, flags);
    let (patterns, pattern_violations) = run_patterns(schedule, flags);
    violations.extend(mem_violations);
    violations.extend(pattern_violations);

    session.counter("fuzz.rounds").add(farm.rounds);
    session
        .counter("fuzz.violations")
        .add(violations.len() as u64);

    RunReport {
        seed: schedule.seed,
        violations,
        farm,
        mem,
        patterns,
    }
}

// ---------------------------------------------------------------------
// §3.3 driver: DistributedVotingFarm over SimTransport
// ---------------------------------------------------------------------

enum NetAction {
    Cut(NodeId, NodeId),
    Heal(NodeId, NodeId),
    SetLink(NodeId, NodeId, LinkFault),
    ClearLink(NodeId, NodeId),
}

fn node(id: u16) -> NodeId {
    NodeId(id % (VOTERS + 1))
}

/// Per-voter intervals `[start, end)` during which the coordinator link
/// is obstructed (partition, crash, or drop/delay burst), for the
/// quarantine-rejoin deadline.  `end == u64::MAX` means "never heals".
fn obstruction_end(schedule: &Schedule, voter: u16) -> Option<u64> {
    let mut end = 0u64;
    let mut any = false;
    for ev in &schedule.events {
        let (start, this_end) = match &ev.kind {
            FaultKind::Partition { a, b, heal_after } => {
                let (a, b) = (node(*a).0, node(*b).0);
                if (a, b) != (0, voter) && (b, a) != (0, voter) {
                    continue;
                }
                (
                    ev.at,
                    if *heal_after == 0 {
                        u64::MAX
                    } else {
                        ev.at + heal_after
                    },
                )
            }
            FaultKind::VoterCrash {
                voter: v,
                revive_after,
            } => {
                if node(*v).0 != voter {
                    continue;
                }
                (
                    ev.at,
                    if *revive_after == 0 {
                        u64::MAX
                    } else {
                        ev.at + revive_after
                    },
                )
            }
            FaultKind::LinkBurst {
                from,
                to,
                fault: LinkFault::Drop | LinkFault::Delay,
                len,
            } => {
                let (f, t) = (node(*from).0, node(*to).0);
                if (f, t) != (0, voter) && (t, f) != (0, voter) {
                    continue;
                }
                (ev.at, ev.at + len)
            }
            _ => continue,
        };
        let _ = start;
        any = true;
        if this_end == u64::MAX {
            return None; // never heals: the invariant is excused
        }
        end = end.max(this_end);
    }
    any.then_some(end)
}

fn run_farm(
    schedule: &Schedule,
    flags: &BugFlags,
    cfg: &RunConfig,
) -> (FarmSummary, Vec<Violation>) {
    // Compile the schedule into per-step network actions.
    let mut plan: BTreeMap<u64, Vec<NetAction>> = BTreeMap::new();
    for ev in &schedule.events {
        match &ev.kind {
            FaultKind::Partition { a, b, heal_after } => {
                let (a, b) = (node(*a), node(*b));
                if a == b {
                    continue;
                }
                plan.entry(ev.at).or_default().push(NetAction::Cut(a, b));
                if *heal_after > 0 {
                    plan.entry(ev.at + heal_after)
                        .or_default()
                        .push(NetAction::Heal(a, b));
                }
            }
            FaultKind::VoterCrash {
                voter,
                revive_after,
            } => {
                let v = node(*voter);
                if v.0 == 0 {
                    continue;
                }
                plan.entry(ev.at)
                    .or_default()
                    .push(NetAction::Cut(NodeId(0), v));
                if *revive_after > 0 {
                    plan.entry(ev.at + revive_after)
                        .or_default()
                        .push(NetAction::Heal(NodeId(0), v));
                }
            }
            FaultKind::LinkBurst {
                from,
                to,
                fault,
                len,
            } => {
                let (f, t) = (node(*from), node(*to));
                if f == t {
                    continue;
                }
                plan.entry(ev.at)
                    .or_default()
                    .push(NetAction::SetLink(f, t, *fault));
                plan.entry(ev.at + (*len).max(1))
                    .or_default()
                    .push(NetAction::ClearLink(f, t));
            }
            _ => {}
        }
    }

    let net = SimNetwork::new(schedule.seed);
    let local = Registry::new();
    net.attach_telemetry(&local);

    let mut handles = Vec::new();
    for v in 1..=VOTERS {
        let endpoint = net.endpoint(NodeId(v));
        handles.push(std::thread::spawn(move || {
            // Honest voters: echo the round's input.
            run_voter(&endpoint, Duration::from_millis(5), |_round, input| {
                input.to_string()
            })
        }));
    }

    let coordinator: Arc<dyn Transport> = Arc::new(net.endpoint(NodeId(0)));
    let mut farm = DistributedVotingFarm::new(
        coordinator,
        (1..=VOTERS).map(NodeId).collect(),
        FarmConfig {
            initial_replicas: 3,
            round_timeout: cfg.round_timeout,
            alpha_threshold: 3.0,
            probe_every: if flags.farm_no_probes { 0 } else { 4 },
            ..FarmConfig::default()
        },
        &local,
    );

    let mut violations = Vec::new();
    let mut digests = Vec::with_capacity(schedule.max_steps as usize);
    let mut quarantined_by_round: Vec<Vec<NodeId>> = Vec::new();
    let mut majorities = 0u64;
    let mut outage = 0u64;
    let mut longest_outage = 0u64;

    for step in 1..=schedule.max_steps {
        if let Some(actions) = plan.get(&step) {
            for action in actions {
                match action {
                    NetAction::Cut(a, b) => net.partition(*a, *b),
                    NetAction::Heal(a, b) => net.heal(*a, *b),
                    NetAction::SetLink(f, t, fault) => {
                        let profile = match fault {
                            LinkFault::Drop => LinkProfile {
                                drop: Some(afta_faultinject::EnvironmentProfile::calm(1.0)),
                                ..LinkProfile::perfect()
                            },
                            LinkFault::Duplicate => LinkProfile {
                                duplicate: Some(afta_faultinject::EnvironmentProfile::calm(1.0)),
                                ..LinkProfile::perfect()
                            },
                            LinkFault::Delay => LinkProfile {
                                delay: Some((
                                    afta_faultinject::EnvironmentProfile::calm(1.0),
                                    cfg.round_timeout * 3,
                                )),
                                ..LinkProfile::perfect()
                            },
                        };
                        net.set_link(*f, *t, profile);
                    }
                    NetAction::ClearLink(f, t) => net.set_link(*f, *t, LinkProfile::perfect()),
                }
            }
        }

        let report = farm.round(&format!("v{step}"));
        digests.push(report.digest());
        quarantined_by_round.push(report.quarantined.clone());

        if report.succeeded() {
            majorities += 1;
            outage = 0;
        } else {
            outage += 1;
            longest_outage = longest_outage.max(outage);
            if outage == FARM_LIVELOCK_WINDOW + 1 {
                violations.push(Violation {
                    invariant: Invariant::NoLivelock,
                    strategy: "farm".into(),
                    step,
                    detail: format!(
                        "no majority for {} consecutive rounds (budget {FARM_LIVELOCK_WINDOW}); last: {}",
                        outage,
                        report.digest()
                    ),
                });
            }
        }

        // dtof arithmetic check (the `dtof_wrapping` flag re-derives the
        // value the way a naive unsigned subtraction would).
        let reported = if flags.dtof_wrapping
            && report.n > 0
            && matches!(report.outcome, VoteOutcome::NoMajority)
        {
            (report.n.div_ceil(2) as u32).wrapping_sub(report.n as u32)
        } else {
            report.dtof
        };
        let expected = match &report.outcome {
            VoteOutcome::Majority { dissent, .. } => dtof_checked(report.n, Some(*dissent)),
            VoteOutcome::NoMajority => Some(0),
        };
        let sound = match expected {
            Some(expected) if report.n == 0 => reported == expected,
            Some(expected) => reported == expected && reported <= dtof_max(report.n),
            None => false,
        };
        if !sound {
            violations.push(Violation {
                invariant: Invariant::DtofNonNegative,
                strategy: "farm".into(),
                step,
                detail: format!(
                    "round reported dtof {reported} for n={} outcome={:?} (expected {:?})",
                    report.n,
                    report.outcome.dissent(),
                    expected
                ),
            });
        }
    }

    net.close();
    for handle in handles {
        let _ = handle.join();
    }

    // Quarantine-rejoin deadlines, from the schedule's obstruction map.
    for v in 1..=VOTERS {
        let first_q = quarantined_by_round
            .iter()
            .position(|q| q.contains(&NodeId(v)));
        let Some(first_q) = first_q else { continue };
        let first_q_round = first_q as u64 + 1;
        let Some(healed) = obstruction_end(schedule, v) else {
            continue; // the obstruction never heals: excused
        };
        let deadline = first_q_round.max(healed) + QUARANTINE_GRACE;
        if deadline > schedule.max_steps {
            continue; // deadline beyond the horizon: not observable
        }
        let rejoined = (first_q_round..deadline)
            .any(|round| !quarantined_by_round[round as usize].contains(&NodeId(v)));
        if !rejoined {
            violations.push(Violation {
                invariant: Invariant::QuarantineRejoins,
                strategy: "farm".into(),
                step: deadline,
                detail: format!(
                    "voter {v} quarantined at round {first_q_round}, obstruction healed by \
                     round {healed}, still quarantined at deadline {deadline}"
                ),
            });
        }
    }

    (
        FarmSummary {
            rounds: schedule.max_steps,
            majorities,
            longest_outage,
            digests,
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// §3.1 driver: memory access methods under storms and clashing edits
// ---------------------------------------------------------------------

fn mem_spd() -> Spd {
    Spd {
        vendor: "acme".into(),
        model: "mx-1".into(),
        serial: "sn-0001".into(),
        lot: "lot-7".into(),
        size_mib: 64,
        clock_mhz: 100,
        width_bits: 8,
        technology: MemoryTechnology::Sdram,
    }
}

fn honest_record(schedule: &Schedule) -> FailureRecord {
    let storms = schedule
        .events
        .iter()
        .any(|ev| matches!(ev.kind, FaultKind::SefiStorm { .. }));
    if storms {
        FailureRecord::new(BehaviorClass::F4, Severity::Harsh)
    } else {
        FailureRecord::new(BehaviorClass::F1, Severity::Benign)
    }
}

fn run_mem(schedule: &Schedule, flags: &BugFlags) -> (MemSummary, Vec<Violation>) {
    let factory = SeedFactory::new(schedule.seed);
    let spd = mem_spd();
    let mut kb = FailureKnowledgeBase::new();
    kb.insert_lot(spd.lot_key(), honest_record(schedule));

    let report = configure(&spd, &kb).expect("builtin-free KB still matches the inserted lot");
    let mut method: Box<dyn AccessMethod> = report.method.instantiate(
        MODULE_SIZE,
        FaultRates::none(),
        factory.derived_seed("fuzz.mem.module"),
    );
    let mut method_history = vec![report.method.label().to_string()];

    let mut model = [0u8; SHARDS];
    let mut detected = [false; SHARDS];
    let mut violations: Vec<Violation> = Vec::new();
    let mut ops = 0u64;
    let mut detected_losses = 0u64;
    let mut wrong_reads = 0u64;
    let mut reconfigures = 0u64;

    let push_wrong_read = |violations: &mut Vec<Violation>,
                           wrong_reads: &mut u64,
                           step: u64,
                           shard: usize,
                           got: u8,
                           want: u8,
                           label: &str| {
        *wrong_reads += 1;
        // Keep reports bounded: every wrong read is counted, the first
        // few carry full evidence.
        if *wrong_reads <= 8 {
            violations.push(Violation {
                invariant: Invariant::NoLostShard,
                strategy: "mem".into(),
                step,
                detail: format!("shard {shard} silently read {got} (expected {want}) via {label}"),
            });
        }
    };

    // Write every shard once so the model and the devices agree.
    for shard in 0..SHARDS {
        if !flags.mem_blind_writes {
            match method.store(shard, &[0]) {
                Ok(()) => {}
                Err(_) => {
                    detected[shard] = true;
                    detected_losses += 1;
                }
            }
        }
        model[shard] = 0;
        ops += 1;
    }

    let mut ops_rng = factory.stream("fuzz.mem.ops");

    for step in 1..=schedule.max_steps {
        for ev in schedule.events.iter().filter(|ev| ev.at == step) {
            match &ev.kind {
                FaultKind::ClashEdit { side } => {
                    let record = match side {
                        ClashSide::E1 => FailureRecord::new(BehaviorClass::F0, Severity::Benign),
                        ClashSide::E2 => FailureRecord::new(BehaviorClass::F4, Severity::Harsh),
                    };
                    kb.insert_lot(spd.lot_key(), record);
                    let new_report = configure(&spd, &kb).expect("edited KB still matches the lot");
                    if new_report.method.label() != method_history.last().unwrap().as_str() {
                        reconfigures += 1;
                        let mut next: Box<dyn AccessMethod> = new_report.method.instantiate(
                            MODULE_SIZE,
                            FaultRates::none(),
                            factory.derived_seed("fuzz.mem.module") ^ reconfigures,
                        );
                        // Migrate shard contents.  A silently-wrong read
                        // here propagates the wrong value — exactly the
                        // hazard a clashing downgrade edit creates.
                        for (shard, flag) in detected.iter_mut().enumerate() {
                            let mut buf = [0u8; 1];
                            match method.load(shard, &mut buf) {
                                Ok(()) => {
                                    if next.store(shard, &buf).is_err() {
                                        *flag = true;
                                        detected_losses += 1;
                                    }
                                }
                                Err(_) => {
                                    *flag = true;
                                    detected_losses += 1;
                                }
                            }
                        }
                        method = next;
                        method_history.push(new_report.method.label().to_string());
                    }
                }
                FaultKind::SefiStorm { flips, sefi } => {
                    let mut storm_rng: StdRng =
                        factory.indexed_stream("fuzz.mem.storm", step as usize);
                    let mut devices = method.devices_mut();
                    if !devices.is_empty() {
                        for _ in 0..*flips {
                            let d = storm_rng.gen_range(0..devices.len());
                            let size = devices[d].size();
                            let addr = storm_rng.gen_range(0..size);
                            let bit = storm_rng.gen_range(0..8u32) as u8;
                            devices[d].inject_bit_flip(addr, bit);
                        }
                        if *sefi {
                            devices[0].inject_sefi();
                        }
                    }
                }
                _ => {}
            }
        }

        for _ in 0..MEM_OPS_PER_STEP {
            let shard = ops_rng.gen_range(0..SHARDS);
            if ops_rng.gen_bool(0.5) {
                let value = ops_rng.gen_range(0..=255u32) as u8;
                if flags.mem_blind_writes {
                    model[shard] = value;
                    detected[shard] = false;
                } else {
                    match method.store(shard, &[value]) {
                        Ok(()) => {
                            model[shard] = value;
                            detected[shard] = false;
                        }
                        Err(_) => {
                            model[shard] = value;
                            detected[shard] = true;
                            detected_losses += 1;
                        }
                    }
                }
            } else {
                let mut buf = [0u8; 1];
                match method.load(shard, &mut buf) {
                    Ok(()) => {
                        if buf[0] != model[shard] && !detected[shard] {
                            push_wrong_read(
                                &mut violations,
                                &mut wrong_reads,
                                step,
                                shard,
                                buf[0],
                                model[shard],
                                method.label(),
                            );
                        }
                    }
                    Err(_) => {
                        detected[shard] = true;
                        detected_losses += 1;
                    }
                }
            }
            ops += 1;
        }

        let _ = method.maintain();
    }

    // Final sweep: every shard must still read back as the model says,
    // or have announced its loss.
    for shard in 0..SHARDS {
        let mut buf = [0u8; 1];
        match method.load(shard, &mut buf) {
            Ok(()) => {
                if buf[0] != model[shard] && !detected[shard] {
                    push_wrong_read(
                        &mut violations,
                        &mut wrong_reads,
                        schedule.max_steps,
                        shard,
                        buf[0],
                        model[shard],
                        method.label(),
                    );
                }
            }
            Err(_) => {
                detected_losses += 1;
            }
        }
        ops += 1;
    }

    (
        MemSummary {
            method_history,
            ops,
            detected_losses,
            wrong_reads,
            reconfigures,
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// §3.2 driver: adaptive FT manager under oracle faults and clock skew
// ---------------------------------------------------------------------

fn run_patterns(schedule: &Schedule, flags: &BugFlags) -> (PatternsSummary, Vec<Violation>) {
    let registry = Registry::new();
    let bus = Bus::new();
    bus.attach_telemetry(&registry);
    // A deliberately tiny, never-drained subscriber: under notification
    // pressure the bus must *account* for every delivery it sheds.
    let lagging = bus.subscribe_with_capacity::<FaultNotification>(4);

    let mut manager = AdaptiveFtManager::new(3, 16, 3.0, bus.clone());
    manager.set_telemetry(registry.clone());

    // Oracle windows from the schedule.
    let transient: Vec<(u64, u64)> = schedule
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            FaultKind::SefiStorm { .. } => Some((ev.at, ev.at + TRANSIENT_WINDOW)),
            _ => None,
        })
        .collect();
    let permanent: Vec<(u64, u64)> = schedule
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            FaultKind::VoterCrash {
                voter: _,
                revive_after,
            } => Some((
                ev.at,
                if revive_after == 0 {
                    u64::MAX
                } else {
                    ev.at + revive_after
                },
            )),
            _ => None,
        })
        .collect();

    let mut clock = SkewedClock::new();
    let mut forced: Option<ClashSide> = None;
    let mut forced_version = 0usize;
    let mut forced_spares = 16u64;
    let mut forced_spares_consumed = 0u64;

    let mut failed_rounds = 0u64;
    let mut outage = 0u64;
    let mut longest_outage = 0u64;
    let mut tick_trace: Vec<i64> = Vec::with_capacity(schedule.max_steps as usize);
    let mut violations = Vec::new();

    for step in 1..=schedule.max_steps {
        for ev in schedule.events.iter().filter(|ev| ev.at == step) {
            match ev.kind {
                FaultKind::ClockSkew { delta } => {
                    clock.apply_skew(delta);
                }
                FaultKind::ClashEdit { side } => forced = Some(side),
                _ => {}
            }
        }

        let observed = clock.tick();
        tick_trace.push(if flags.raw_skew {
            // Bug flag: report the raw skewed reading, clamping skipped.
            clock.base().now().0 as i64 + clock.skew()
        } else {
            observed.0 as i64
        });
        let span = registry.virtual_span("fuzz.patterns.round", observed);

        let perm_active = permanent.iter().any(|&(s, e)| step >= s && step < e);
        let tran_active = transient.iter().any(|&(s, e)| step >= s && step <= e);
        let mut first_attempt = true;
        let mut attempt = |version: usize, _retry: u32| -> Result<u64, Fault> {
            let is_first = std::mem::take(&mut first_attempt);
            if perm_active && version == 0 {
                return Err(Fault);
            }
            if tran_active && is_first {
                return Err(Fault);
            }
            Ok(step)
        };

        // The statically bound redoing pattern compiled in its round
        // deadline: retries are spaced on the *observed* clock, so once a
        // skew step has pushed observed time past the wall-clock round
        // index the budget reads as already spent and no retry is issued.
        // The adaptive manager re-derives its deadline every round and is
        // immune — binding the timing assumption early is what a leap
        // second defeats.
        let deadline_spent = observed.0 > step;

        let succeeded = match forced {
            // Adaptive path: the manager picks and re-picks D1/D2.
            None => manager.execute_round(observed, attempt).is_some(),
            // The `e1` editor statically bound redoing: retries cannot
            // outwait a permanent fault, and their deadline arithmetic
            // trusts the observed clock.
            Some(ClashSide::E1) => {
                let mut value = None;
                let mut extra = false;
                for retry in 0..3u32 {
                    if retry > 0 {
                        if deadline_spent {
                            break;
                        }
                        extra = true;
                    }
                    if let Ok(v) = attempt(forced_version, retry) {
                        value = Some(v);
                        break;
                    }
                }
                if extra || value.is_none() {
                    bus.publish(FaultNotification {
                        component: "c3".into(),
                        tick: observed,
                    });
                }
                value.is_some()
            }
            // The `e2` editor statically bound reconfiguration: spares
            // burn on transient faults that a retry would have absorbed.
            Some(ClashSide::E2) => {
                let mut value = None;
                let mut consumed = false;
                loop {
                    match attempt(forced_version, 0) {
                        Ok(v) => {
                            value = Some(v);
                            break;
                        }
                        Err(Fault) => {
                            if forced_spares == 0 {
                                break;
                            }
                            forced_spares -= 1;
                            forced_version += 1;
                            forced_spares_consumed += 1;
                            consumed = true;
                        }
                    }
                }
                if consumed || value.is_none() {
                    bus.publish(FaultNotification {
                        component: "c3".into(),
                        tick: observed,
                    });
                }
                value.is_some()
            }
        };

        span.finish(clock.now());

        if succeeded {
            outage = 0;
        } else {
            failed_rounds += 1;
            outage += 1;
            longest_outage = longest_outage.max(outage);
            if outage == PATTERNS_LIVELOCK_WINDOW + 1 {
                violations.push(Violation {
                    invariant: Invariant::NoLivelock,
                    strategy: "patterns".into(),
                    step,
                    detail: format!(
                        "no result for {outage} consecutive rounds \
                         (budget {PATTERNS_LIVELOCK_WINDOW}); pattern {}",
                        forced.map_or_else(
                            || manager.active_pattern().to_string(),
                            |side| format!("forced {side:?}")
                        )
                    ),
                });
            }
        }
    }

    // Monotonicity of the reported tick trace.
    for (i, pair) in tick_trace.windows(2).enumerate() {
        if pair[1] < pair[0] {
            violations.push(Violation {
                invariant: Invariant::MonotonicSpans,
                strategy: "patterns".into(),
                step: i as u64 + 2,
                detail: format!(
                    "tick observation went backwards: {} -> {}",
                    pair[0], pair[1]
                ),
            });
            break;
        }
    }

    if flags.bus_miscount {
        // Bug flag: a drop path that bumps the counter without an
        // accompanying TopicStats loss.
        registry.counter("eventbus.bus_dropped_total").inc();
    }
    let stats = bus.topic_stats::<FaultNotification>();
    let (published, lost) = stats.map_or((0, 0), |s| (s.published, s.lost));
    let dropped_counter = registry.counter("eventbus.bus_dropped_total").get();
    if lost != dropped_counter {
        violations.push(Violation {
            invariant: Invariant::BusAccounting,
            strategy: "patterns".into(),
            step: schedule.max_steps,
            detail: format!(
                "TopicStats.lost = {lost} but eventbus.bus_dropped_total = {dropped_counter}"
            ),
        });
    }
    drop(lagging);

    let stats = manager.stats();
    (
        PatternsSummary {
            rounds: schedule.max_steps,
            failed_rounds,
            longest_outage,
            reshapes: stats.reshapes,
            spares_consumed: stats.spares_consumed + forced_spares_consumed,
            notifications: published,
            bus_lost: lost,
            bus_dropped_counter: dropped_counter,
            tick_trace,
        },
        violations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate, Profile, DEFAULT_MAX_STEPS};

    fn fast() -> RunConfig {
        RunConfig {
            round_timeout: Duration::from_millis(25),
        }
    }

    #[test]
    fn quiet_schedule_upholds_every_invariant() {
        let schedule = Schedule::quiet(11, 16);
        let report = run_schedule(
            &schedule,
            &BugFlags::default(),
            &fast(),
            &Registry::disabled(),
        );
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.farm.majorities, 16);
        assert_eq!(report.mem.wrong_reads, 0);
        assert_eq!(report.patterns.failed_rounds, 0);
    }

    /// The leap-second composition: a clash edit statically binds
    /// redoing (with its compiled-in round deadline), a skew step pushes
    /// the observed clock past the round index, and a run of transient
    /// storms then starves the retry budget for nine straight rounds.
    fn leap_second_schedule() -> Schedule {
        use crate::schedule::{ClashSide, FaultEvent, FaultKind};
        Schedule {
            seed: 0x1EAF,
            max_steps: DEFAULT_MAX_STEPS,
            events: vec![
                FaultEvent {
                    at: 2,
                    kind: FaultKind::ClashEdit {
                        side: ClashSide::E1,
                    },
                },
                FaultEvent {
                    at: 3,
                    kind: FaultKind::ClockSkew { delta: 9 },
                },
                FaultEvent {
                    at: 4,
                    kind: FaultKind::SefiStorm {
                        flips: 0,
                        sefi: false,
                    },
                },
                FaultEvent {
                    at: 8,
                    kind: FaultKind::SefiStorm {
                        flips: 0,
                        sefi: false,
                    },
                },
                FaultEvent {
                    at: 12,
                    kind: FaultKind::SefiStorm {
                        flips: 0,
                        sefi: false,
                    },
                },
            ],
        }
    }

    #[test]
    fn skew_starves_statically_bound_retries() {
        let schedule = leap_second_schedule();
        let report = run_schedule(
            &schedule,
            &BugFlags::default(),
            &fast(),
            &Registry::disabled(),
        );
        let v = report
            .violation_of(Invariant::NoLivelock)
            .expect("the composition livelocks the forced-redoing pattern");
        assert_eq!(v.strategy, "patterns");
        // Only the livelock trips: the zero-flip storms leave memory
        // untouched and the farm never sees the clock.
        assert!(report
            .violations
            .iter()
            .all(|v| v.invariant == Invariant::NoLivelock));
    }

    #[test]
    fn each_leap_second_event_is_load_bearing() {
        let schedule = leap_second_schedule();
        for index in 0..schedule.events.len() {
            let candidate = schedule.without_event(index);
            let report = run_schedule(
                &candidate,
                &BugFlags::default(),
                &fast(),
                &Registry::disabled(),
            );
            assert!(
                report.passed(),
                "removing event {index} ({:?}) should make the run pass, got {:?}",
                schedule.events[index],
                report.violations
            );
        }
    }

    #[test]
    fn run_is_byte_deterministic() {
        let schedule = generate(0xFEED_BEEF, DEFAULT_MAX_STEPS, Profile::Battery);
        let a = run_schedule(
            &schedule,
            &BugFlags::default(),
            &fast(),
            &Registry::disabled(),
        );
        let b = run_schedule(
            &schedule,
            &BugFlags::default(),
            &fast(),
            &Registry::disabled(),
        );
        assert_eq!(a.to_json(), b.to_json());
    }
}
