//! The `afta-fuzz` command-line interface.
//!
//! ```text
//! afta-fuzz <COMMAND> [OPTIONS]
//!
//! Commands:
//!   run                       Generate and execute seeded schedules
//!       [--seed HEX|DEC]        master seed (default: AFTA_SEED env, else 0xAF7A)
//!       [--schedules N]         schedule count (default: AFTA_FUZZ_SCHEDULES env, else 25)
//!       [--max-steps M]         virtual steps per schedule (default 28)
//!       [--profile battery|wild]
//!       [--corpus DIR]          also replay the reproducer corpus
//!       [--junit PATH]          write a JUnit XML report
//!       [--out-dir DIR]         where reproducers land (default target/fuzz)
//!   replay <FILE>             Re-run a reproducer; exit 0 iff it still trips
//!   shrink                    Re-find and minimize one schedule's failure
//!       --seed HEX|DEC [--index I] [--max-steps M] [--profile battery|wild]
//!       [--out PATH]
//!
//! Exit codes:
//!   0  every schedule passed / reproducer reproduced
//!   1  an invariant violated / reproducer drifted
//!   2  usage, I/O, or parse error
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use afta_ci::junit::{JunitCase, JunitReport, JunitSuite};
use afta_fuzz::{
    assert_one_minimal, generate, load_corpus, replay_reproducer, run_schedule, shrink, BugFlags,
    Profile, Reproducer, RunConfig, Schedule, DEFAULT_MAX_STEPS,
};
use afta_sim::SeedFactory;
use afta_telemetry::Registry;

const USAGE: &str = "usage: afta-fuzz <run|replay|shrink> [options]  (see --help)";
const DEFAULT_SEED: u64 = 0xAF7A;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("afta-fuzz: {msg}");
            }
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<u8, String> {
    let Some(command) = args.first() else {
        return Err("no command given".to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "replay" => cmd_replay(rest),
        "shrink" => cmd_shrink(rest),
        "-h" | "--help" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Pulls `--flag VALUE` out of `args`, returning the value if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn parse_seed(text: &str) -> Result<u64, String> {
    let text = text.trim();
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse::<u64>()
    };
    parsed.map_err(|_| format!("bad seed `{text}` (decimal or 0x-hex)"))
}

fn parse_profile(text: &str) -> Result<Profile, String> {
    match text {
        "battery" => Ok(Profile::Battery),
        "wild" => Ok(Profile::Wild),
        other => Err(format!("bad profile `{other}` (battery|wild)")),
    }
}

fn master_seed(flag: Option<String>) -> Result<u64, String> {
    if let Some(text) = flag {
        return parse_seed(&text);
    }
    if let Ok(text) = std::env::var("AFTA_SEED") {
        return parse_seed(&text);
    }
    Ok(DEFAULT_SEED)
}

fn cmd_run(args: &[String]) -> Result<u8, String> {
    let mut args = args.to_vec();
    let seed = master_seed(take_flag(&mut args, "--seed")?)?;
    let schedules = match take_flag(&mut args, "--schedules")? {
        Some(n) => n
            .parse::<u64>()
            .map_err(|_| "bad --schedules".to_string())?,
        None => std::env::var("AFTA_FUZZ_SCHEDULES")
            .ok()
            .and_then(|n| n.trim().parse().ok())
            .unwrap_or(25),
    };
    let max_steps = match take_flag(&mut args, "--max-steps")? {
        Some(n) => n
            .parse::<u64>()
            .map_err(|_| "bad --max-steps".to_string())?,
        None => DEFAULT_MAX_STEPS,
    };
    let profile = match take_flag(&mut args, "--profile")? {
        Some(p) => parse_profile(&p)?,
        None => Profile::Battery,
    };
    let corpus_dir = take_flag(&mut args, "--corpus")?.map(PathBuf::from);
    let junit_path = take_flag(&mut args, "--junit")?.map(PathBuf::from);
    let out_dir = take_flag(&mut args, "--out-dir")?
        .map_or_else(|| PathBuf::from("target/fuzz"), PathBuf::from);
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let cfg = RunConfig::from_env();
    let session = Registry::new();
    let factory = SeedFactory::new(seed);
    let flags = BugFlags::default();

    let mut battery = JunitSuite::new("fuzz.battery");
    let mut failures = 0u64;
    println!(
        "fuzz: master seed 0x{seed:016x}, {schedules} schedules x {max_steps} steps ({profile:?})"
    );
    for index in 0..schedules {
        let schedule_seed = factory.shard_seed(index);
        let schedule = generate(schedule_seed, max_steps, profile);
        let report = run_schedule(&schedule, &flags, &cfg, &session);
        let case_name = format!("schedule-{index}-seed-0x{schedule_seed:016x}");
        if report.passed() {
            battery
                .cases
                .push(JunitCase::pass("fuzz.battery", &case_name));
            continue;
        }
        failures += 1;
        let first = &report.violations[0];
        eprintln!("fuzz: schedule {index} (seed 0x{schedule_seed:016x}) violated {first}");
        let mut details = report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        if let Some(outcome) = shrink(&schedule, first.invariant, &flags, &cfg) {
            let reproducer = Reproducer::from_shrink(&outcome, schedule.events.len());
            std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
            let path = out_dir.join(format!(
                "repro-{}-seed-0x{schedule_seed:016x}.json",
                outcome.violation.invariant
            ));
            std::fs::write(&path, reproducer.to_json())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!(
                "fuzz: minimized to {} event(s) in {} runs -> {}",
                outcome.minimized.events.len(),
                outcome.runs,
                path.display()
            );
            details.push_str(&format!("\nreproducer: {}", path.display()));
        }
        battery.cases.push(JunitCase::fail(
            "fuzz.battery",
            &case_name,
            &format!("{} (seed 0x{schedule_seed:016x})", first.invariant),
            &details,
        ));
    }

    let mut suites = vec![battery];
    if let Some(dir) = corpus_dir {
        let (suite, corpus_failures) = replay_corpus(&dir, &cfg)?;
        failures += corpus_failures;
        suites.push(suite);
    }

    if let Some(path) = junit_path {
        let report = JunitReport { suites };
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        std::fs::write(&path, report.to_xml()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("fuzz: junit -> {}", path.display());
    }

    println!(
        "fuzz: {} schedules, {} violated, counters: schedules={} violations={}",
        schedules,
        failures,
        session.counter("fuzz.schedules").get(),
        session.counter("fuzz.violations").get()
    );
    Ok(u8::from(failures > 0))
}

fn replay_corpus(dir: &Path, cfg: &RunConfig) -> Result<(JunitSuite, u64), String> {
    let mut suite = JunitSuite::new("fuzz.corpus");
    let mut failures = 0u64;
    let entries = load_corpus(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    println!(
        "fuzz: replaying {} corpus entries from {}",
        entries.len(),
        dir.display()
    );
    for (name, reproducer) in entries {
        match replay_reproducer(&reproducer, cfg) {
            Ok(_) => match assert_one_minimal(&reproducer, cfg) {
                Ok(()) => suite.cases.push(JunitCase::pass("fuzz.corpus", &name)),
                Err(err) => {
                    failures += 1;
                    suite.cases.push(JunitCase::fail(
                        "fuzz.corpus",
                        &name,
                        &format!("not 1-minimal (seed {})", reproducer.afta_seed),
                        &err,
                    ));
                }
            },
            Err(err) => {
                failures += 1;
                suite.cases.push(JunitCase::fail(
                    "fuzz.corpus",
                    &name,
                    &format!("drifted (seed {})", reproducer.afta_seed),
                    &err,
                ));
            }
        }
    }
    Ok((suite, failures))
}

fn cmd_replay(args: &[String]) -> Result<u8, String> {
    let [path] = args else {
        return Err("replay takes exactly one reproducer file".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let reproducer = Reproducer::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let cfg = RunConfig::from_env();
    match replay_reproducer(&reproducer, &cfg) {
        Ok(report) => {
            let violation = report
                .violation_of(reproducer.invariant)
                .expect("replay_reproducer verified the violation");
            println!("reproduced: {violation}");
            Ok(0)
        }
        Err(drift) => {
            eprintln!("drifted: {drift}");
            Ok(1)
        }
    }
}

fn cmd_shrink(args: &[String]) -> Result<u8, String> {
    let mut args = args.to_vec();
    let seed = master_seed(take_flag(&mut args, "--seed")?)?;
    let index = match take_flag(&mut args, "--index")? {
        Some(n) => Some(n.parse::<u64>().map_err(|_| "bad --index".to_string())?),
        None => None,
    };
    let max_steps = match take_flag(&mut args, "--max-steps")? {
        Some(n) => n
            .parse::<u64>()
            .map_err(|_| "bad --max-steps".to_string())?,
        None => DEFAULT_MAX_STEPS,
    };
    let profile = match take_flag(&mut args, "--profile")? {
        Some(p) => parse_profile(&p)?,
        None => Profile::Wild,
    };
    let out = take_flag(&mut args, "--out")?.map(PathBuf::from);
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }

    let schedule_seed = match index {
        Some(index) => SeedFactory::new(seed).shard_seed(index),
        None => seed,
    };
    let schedule: Schedule = generate(schedule_seed, max_steps, profile);
    let cfg = RunConfig::from_env();
    let flags = BugFlags::default();
    let report = run_schedule(&schedule, &flags, &cfg, &Registry::disabled());
    let Some(first) = report.violations.first() else {
        println!("schedule 0x{schedule_seed:016x} passes every invariant; nothing to shrink");
        return Ok(0);
    };
    println!("violation: {first}");
    let outcome = shrink(&schedule, first.invariant, &flags, &cfg)
        .expect("initial run already violated the target");
    for line in &outcome.trace {
        println!("shrink: {line}");
    }
    let reproducer = Reproducer::from_shrink(&outcome, schedule.events.len());
    match out {
        Some(path) => {
            std::fs::write(&path, reproducer.to_json())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!("reproducer -> {}", path.display());
        }
        None => println!("{}", reproducer.to_json()),
    }
    Ok(1)
}
