//! The typed invariant set checked after every schedule.
//!
//! Two tiers, mirroring the paper's distinction between *implementation*
//! assumptions and *policy* assumptions:
//!
//! * **Implementation invariants** must hold under *any* schedule, wild
//!   or battery — a violation is always a bug: [`DtofNonNegative`],
//!   [`BusAccounting`], [`MonotonicSpans`], [`NoLostShard`].
//! * **Policy invariants** are guaranteed only inside the battery
//!   envelope (faults heal, edits never downgrade protection):
//!   [`NoLivelock`], [`QuarantineRejoins`].  Wild schedules may
//!   legitimately defeat them — that is what the reproducer corpus
//!   records.
//!
//! [`DtofNonNegative`]: Invariant::DtofNonNegative
//! [`BusAccounting`]: Invariant::BusAccounting
//! [`MonotonicSpans`]: Invariant::MonotonicSpans
//! [`NoLostShard`]: Invariant::NoLostShard
//! [`NoLivelock`]: Invariant::NoLivelock
//! [`QuarantineRejoins`]: Invariant::QuarantineRejoins

use serde::{Deserialize, Serialize};
use std::fmt;

/// One checkable property of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Invariant {
    /// No strategy may fail every round beyond its step budget: the §3.3
    /// farm recovers a majority within 12 consecutive rounds, the §3.2
    /// manager delivers a result within 8.
    NoLivelock,
    /// The §3.1 memory never *silently* loses a shard: every read either
    /// errors (detected, tolerable) or returns the last stored value.
    NoLostShard,
    /// Every reported distance-to-failure is the checked `dtof` for the
    /// round's `(n, m)` and never exceeds `dtof_max(n)` — the unsigned
    /// arithmetic never wraps.
    DtofNonNegative,
    /// An alpha-count-quarantined voter rejoins within a grace period
    /// once the obstruction that condemned it has healed.
    QuarantineRejoins,
    /// The event bus accounts for every undelivered notification:
    /// `TopicStats::lost` equals the `eventbus.bus_dropped_total`
    /// telemetry counter.
    BusAccounting,
    /// Telemetry tick observations never decrease, no matter what clock
    /// skew the schedule injects.
    MonotonicSpans,
}

impl Invariant {
    /// All invariants, in checking order.
    pub const ALL: [Invariant; 6] = [
        Invariant::NoLivelock,
        Invariant::NoLostShard,
        Invariant::DtofNonNegative,
        Invariant::QuarantineRejoins,
        Invariant::BusAccounting,
        Invariant::MonotonicSpans,
    ];

    /// Whether the battery envelope guarantees this invariant (`false`
    /// for the two that any schedule must uphold — wild included).
    #[must_use]
    pub fn is_policy(self) -> bool {
        matches!(self, Invariant::NoLivelock | Invariant::QuarantineRejoins)
    }

    /// Stable machine-readable name (used in reproducer files and JUnit
    /// case names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::NoLivelock => "no-livelock",
            Invariant::NoLostShard => "no-lost-shard",
            Invariant::DtofNonNegative => "dtof-non-negative",
            Invariant::QuarantineRejoins => "quarantine-rejoins",
            Invariant::BusAccounting => "bus-accounting",
            Invariant::MonotonicSpans => "monotonic-spans",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Which strategy driver observed it (`"farm"`, `"mem"`,
    /// `"patterns"`).
    pub strategy: String,
    /// The virtual step at which the violation was established.
    pub step: u64,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} @ step {}]: {}",
            self.invariant, self.strategy, self.step, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<_> = Invariant::ALL.iter().map(|i| i.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Invariant::NoLostShard.to_string(), "no-lost-shard");
    }

    #[test]
    fn policy_tier_is_exactly_the_two_recovery_properties() {
        let policy: Vec<_> = Invariant::ALL.iter().filter(|i| i.is_policy()).collect();
        assert_eq!(
            policy,
            vec![&Invariant::NoLivelock, &Invariant::QuarantineRejoins]
        );
    }

    #[test]
    fn violation_serde_round_trip() {
        let v = Violation {
            invariant: Invariant::BusAccounting,
            strategy: "patterns".into(),
            step: 7,
            detail: "lost 3 != dropped 2".into(),
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: Violation = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
