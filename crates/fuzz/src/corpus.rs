//! Reproducer files and the committed regression corpus.
//!
//! Every shrunk failure is written as a self-contained JSON
//! [`Reproducer`]: the minimized schedule, the invariant it trips, the
//! `AFTA_SEED` it came from, and the one-line replay command.  Corpus
//! files live in `crates/fuzz/corpus/` and are replayed as pinned
//! regression tests — plus a meta-test asserting each entry is still
//! 1-minimal.
//!
//! Corpus entries never carry [`BugFlags`]: a committed reproducer must
//! fail against the *production* runner, not against a planted bug.

use std::fs;
use std::io;
use std::path::Path;

use afta_telemetry::Registry;
use serde::{Deserialize, Serialize};

use crate::invariant::Invariant;
use crate::run::{run_schedule, BugFlags, RunConfig, RunReport};
use crate::schedule::Schedule;
use crate::shrink::ShrinkOutcome;

/// A self-contained, replayable record of one minimized failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reproducer {
    /// The originating seed, as the `AFTA_SEED` hex string.
    pub afta_seed: String,
    /// The invariant the schedule trips.
    pub invariant: Invariant,
    /// The strategy driver that observed it.
    pub strategy: String,
    /// The violation's evidence line at shrink time.
    pub detail: String,
    /// Total runs the shrink cost.
    pub shrink_runs: u64,
    /// Events removed by shrinking (original minus minimized).
    pub removed_events: u64,
    /// One-line replay command.
    pub replay: String,
    /// The 1-minimal failing schedule.
    pub schedule: Schedule,
}

impl Reproducer {
    /// Packages a shrink outcome as a reproducer file.
    #[must_use]
    pub fn from_shrink(outcome: &ShrinkOutcome, original_events: usize) -> Self {
        Self {
            afta_seed: format!("0x{:016x}", outcome.minimized.seed),
            invariant: outcome.violation.invariant,
            strategy: outcome.violation.strategy.clone(),
            detail: outcome.violation.detail.clone(),
            shrink_runs: outcome.runs,
            removed_events: (original_events - outcome.minimized.events.len()) as u64,
            replay: "afta-fuzz replay <this-file>".into(),
            schedule: outcome.minimized.clone(),
        }
    }

    /// Canonical pretty JSON encoding.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reproducer serializes")
    }

    /// Parses a reproducer file.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Loads every `*.json` reproducer under `dir`, sorted by file name (so
/// replay order is stable).
///
/// # Errors
///
/// Propagates I/O errors; a malformed file is an
/// [`io::ErrorKind::InvalidData`] error naming the file.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(String, Reproducer)>> {
    let mut names = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "json") {
            names.push(path);
        }
    }
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for path in names {
        let text = fs::read_to_string(&path)?;
        let rep = Reproducer::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        let name = path
            .file_stem()
            .map_or_else(String::new, |s| s.to_string_lossy().into_owned());
        out.push((name, rep));
    }
    Ok(out)
}

/// Replays a reproducer against the production runner (no bug flags).
///
/// # Errors
///
/// Returns a description of the drift if the named invariant no longer
/// trips — the regression the corpus exists to catch never regressed, or
/// the runner's behaviour changed.
pub fn replay_reproducer(rep: &Reproducer, cfg: &RunConfig) -> Result<RunReport, String> {
    let report = run_schedule(
        &rep.schedule,
        &BugFlags::default(),
        cfg,
        &Registry::disabled(),
    );
    match report.violation_of(rep.invariant) {
        Some(_) => Ok(report),
        None => Err(format!(
            "reproducer for {} (seed {}) no longer trips: got {:?}",
            rep.invariant,
            rep.afta_seed,
            report
                .violations
                .iter()
                .map(|v| v.invariant)
                .collect::<Vec<_>>()
        )),
    }
}

/// Certifies that `rep.schedule` is 1-minimal: deleting any single event
/// must make the whole run pass (no violations at all).
///
/// # Errors
///
/// Returns a description of the first event whose removal still fails.
pub fn assert_one_minimal(rep: &Reproducer, cfg: &RunConfig) -> Result<(), String> {
    let session = Registry::disabled();
    for index in 0..rep.schedule.events.len() {
        let candidate = rep.schedule.without_event(index);
        let report = run_schedule(&candidate, &BugFlags::default(), cfg, &session);
        if !report.passed() {
            return Err(format!(
                "not 1-minimal: removing event {index} ({}) still yields {:?}",
                rep.schedule.events[index],
                report
                    .violations
                    .iter()
                    .map(|v| v.invariant)
                    .collect::<Vec<_>>()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind};

    #[test]
    fn reproducer_json_round_trips() {
        let rep = Reproducer {
            afta_seed: "0x000000000000002a".into(),
            invariant: Invariant::NoLivelock,
            strategy: "farm".into(),
            detail: "no majority".into(),
            shrink_runs: 17,
            removed_events: 3,
            replay: "afta-fuzz replay <this-file>".into(),
            schedule: Schedule {
                seed: 42,
                max_steps: 16,
                events: vec![FaultEvent {
                    at: 1,
                    kind: FaultKind::Partition {
                        a: 0,
                        b: 1,
                        heal_after: 0,
                    },
                }],
            },
        };
        let back = Reproducer::from_json(&rep.to_json()).unwrap();
        assert_eq!(rep, back);
    }
}
