//! Invariant coverage: every one of the six invariants is tripped by at
//! least one seeded schedule — against an intentionally-broken runner
//! variant (a [`BugFlags`] plant) or, for the policy invariants, a wild
//! schedule outside the battery envelope — and each trip test is paired
//! with the flag-off/healed-schedule run passing.

use std::time::Duration;

use afta_fuzz::{
    run_schedule, BugFlags, ClashSide, FaultEvent, FaultKind, Invariant, RunConfig, Schedule,
};
use afta_telemetry::Registry;

fn fast() -> RunConfig {
    RunConfig {
        round_timeout: Duration::from_millis(25),
    }
}

fn event(at: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent { at, kind }
}

fn all_voters_cut(seed: u64, max_steps: u64) -> Schedule {
    Schedule {
        seed,
        max_steps,
        events: (1..=5)
            .map(|b| {
                event(
                    1,
                    FaultKind::Partition {
                        a: 0,
                        b,
                        heal_after: 0,
                    },
                )
            })
            .collect(),
    }
}

#[test]
fn no_livelock_trips_when_every_voter_is_cut_forever() {
    let schedule = all_voters_cut(1, 16);
    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    let violation = report
        .violation_of(Invariant::NoLivelock)
        .expect("a fully cut farm livelocks");
    assert_eq!(violation.strategy, "farm");

    // Healed variant: the same cuts, healing after 2 rounds.
    let healed = Schedule {
        events: schedule
            .events
            .iter()
            .map(|ev| match ev.kind {
                FaultKind::Partition { a, b, .. } => event(
                    ev.at,
                    FaultKind::Partition {
                        a,
                        b,
                        heal_after: 2,
                    },
                ),
                _ => unreachable!(),
            })
            .collect(),
        ..schedule
    };
    let report = run_schedule(
        &healed,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(
        report.violation_of(Invariant::NoLivelock).is_none(),
        "healing within the budget clears the livelock: {:?}",
        report.violations
    );
}

#[test]
fn no_lost_shard_trips_under_blind_writes() {
    let schedule = Schedule::quiet(2, 10);
    let flags = BugFlags {
        mem_blind_writes: true,
        ..BugFlags::default()
    };
    let report = run_schedule(&schedule, &flags, &fast(), &Registry::disabled());
    let violation = report
        .violation_of(Invariant::NoLostShard)
        .expect("blind writes lose the first nonzero store");
    assert_eq!(violation.strategy, "mem");
    assert!(report.mem.wrong_reads > 0);

    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(report.passed(), "violations: {:?}", report.violations);
}

#[test]
fn dtof_non_negative_trips_under_wrapping_arithmetic() {
    // Majority-less rounds are where a naive `ceil(n/2) - n` wraps.
    let schedule = all_voters_cut(3, 16);
    let flags = BugFlags {
        dtof_wrapping: true,
        ..BugFlags::default()
    };
    let report = run_schedule(&schedule, &flags, &fast(), &Registry::disabled());
    let violation = report
        .violation_of(Invariant::DtofNonNegative)
        .expect("wrapping dtof must be caught");
    assert_eq!(violation.strategy, "farm");
    assert!(
        violation.detail.contains("dtof"),
        "detail: {}",
        violation.detail
    );

    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(report.violation_of(Invariant::DtofNonNegative).is_none());
}

#[test]
fn quarantine_rejoins_trips_without_probes() {
    // Voter 1 cut for 4 rounds, healed with 15+ rounds to spare: with
    // probing disabled the quarantine is a roach motel.
    let schedule = Schedule {
        seed: 4,
        max_steps: 20,
        events: vec![event(
            1,
            FaultKind::Partition {
                a: 0,
                b: 1,
                heal_after: 4,
            },
        )],
    };
    let flags = BugFlags {
        farm_no_probes: true,
        ..BugFlags::default()
    };
    let report = run_schedule(&schedule, &flags, &fast(), &Registry::disabled());
    let violation = report
        .violation_of(Invariant::QuarantineRejoins)
        .expect("no probes means no rejoin");
    assert_eq!(violation.strategy, "farm");

    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(
        report.violation_of(Invariant::QuarantineRejoins).is_none(),
        "probes rejoin the healed voter: {:?}",
        report.violations
    );
}

#[test]
fn bus_accounting_trips_under_a_phantom_drop() {
    let schedule = Schedule::quiet(5, 10);
    let flags = BugFlags {
        bus_miscount: true,
        ..BugFlags::default()
    };
    let report = run_schedule(&schedule, &flags, &fast(), &Registry::disabled());
    let violation = report
        .violation_of(Invariant::BusAccounting)
        .expect("counter and TopicStats.lost must agree");
    assert_eq!(violation.strategy, "patterns");

    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(report.violation_of(Invariant::BusAccounting).is_none());
}

#[test]
fn bus_accounting_holds_even_when_the_lagging_subscriber_loses() {
    // Enough notifications to overflow the capacity-4 lagging
    // subscriber: losses happen, and the counter must track them 1:1.
    let schedule = Schedule {
        seed: 6,
        max_steps: 24,
        events: vec![
            event(
                1,
                FaultKind::ClashEdit {
                    side: ClashSide::E1,
                },
            ),
            event(
                2,
                FaultKind::VoterCrash {
                    voter: 1,
                    revive_after: 0,
                },
            ),
        ],
    };
    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(
        report.patterns.bus_lost > 0,
        "expected the lagging subscriber to shed deliveries: {:?}",
        report.patterns
    );
    assert!(report.violation_of(Invariant::BusAccounting).is_none());
    assert_eq!(
        report.patterns.bus_lost,
        report.patterns.bus_dropped_counter
    );
}

#[test]
fn monotonic_spans_trips_when_clamping_is_bypassed() {
    let schedule = Schedule {
        seed: 7,
        max_steps: 10,
        events: vec![
            event(2, FaultKind::ClockSkew { delta: 10 }),
            event(5, FaultKind::ClockSkew { delta: -8 }),
        ],
    };
    let flags = BugFlags {
        raw_skew: true,
        ..BugFlags::default()
    };
    let report = run_schedule(&schedule, &flags, &fast(), &Registry::disabled());
    let violation = report
        .violation_of(Invariant::MonotonicSpans)
        .expect("raw skew runs the trace backwards");
    assert_eq!(violation.strategy, "patterns");

    let report = run_schedule(
        &schedule,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert!(
        report.violation_of(Invariant::MonotonicSpans).is_none(),
        "the skewed clock's clamp keeps observations monotone"
    );
}
