//! Differential tests between the fuzz generator and `afta-lint`'s
//! static envelope mirror (`AFTA-D006`/`AFTA-D007`).
//!
//! The lint crate does not execute schedules — it re-derives the battery
//! margins from the schedule JSON alone.  These tests pin that mirror to
//! the generator's real behaviour: every schedule the battery profile
//! can emit must lint clean under the battery claim, and every committed
//! corpus reproducer must lint without a single error-severity finding.

use std::path::PathBuf;

use afta_fuzz::{load_corpus, reproducer_to_lint, schedule_to_lint, Profile, DEFAULT_MAX_STEPS};
use afta_lint::{LintDriver, LintTarget, Rule, Severity};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn battery_generator_never_escapes_the_lint_envelope() {
    let driver = LintDriver::new();
    for seed in 0..256u64 {
        let schedule = afta_fuzz::generate(seed, DEFAULT_MAX_STEPS, Profile::Battery);
        let mut target = LintTarget::new();
        target
            .schedules
            .push(schedule_to_lint(&format!("battery/{seed}.json"), &schedule));
        let report = driver.run(&target);
        assert!(
            report.is_clean(),
            "battery schedule for seed {seed} escaped the static envelope: {}",
            report.render_text()
        );
    }
}

#[test]
fn corpus_reproducers_lint_without_errors() {
    let entries = load_corpus(&corpus_dir()).expect("corpus directory loads");
    assert!(!entries.is_empty());
    let driver = LintDriver::new();
    for (name, rep) in entries {
        let mut target = LintTarget::new();
        target.schedules.push(reproducer_to_lint(&name, &rep));
        let report = driver.run(&target);
        // Wild reproducers may earn the informational D007 note, never a
        // D006 error: the battery gate stays closed to them by claim.
        assert_eq!(
            report.errors,
            0,
            "corpus entry `{name}` must lint clean of errors: {}",
            report.render_text()
        );
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.rule == Rule::D007 && d.severity == Severity::Note),
            "corpus entry `{name}` may only carry D007 notes: {}",
            report.render_text()
        );
    }
}

#[test]
fn deny_warnings_keeps_notes_note_level() {
    // `--deny warnings` over the corpus must stay green: D007 is a note,
    // and notes never escalate.
    let entries = load_corpus(&corpus_dir()).expect("corpus directory loads");
    let mut driver = LintDriver::new();
    driver.deny_warnings(true);
    for (name, rep) in entries {
        let mut target = LintTarget::new();
        target.schedules.push(reproducer_to_lint(&name, &rep));
        let report = driver.run(&target);
        assert_eq!(report.exit_code(), 0, "corpus entry `{name}` gated CI");
    }
}
