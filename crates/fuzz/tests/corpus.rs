//! The committed reproducer corpus, pinned as regression tests.
//!
//! Every entry must (a) still trip the invariant it records and (b) be
//! 1-minimal: deleting any single fault event makes the whole run pass.

use std::path::PathBuf;
use std::time::Duration;

use afta_fuzz::{assert_one_minimal, load_corpus, replay_reproducer, Invariant, RunConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn fast() -> RunConfig {
    RunConfig {
        round_timeout: Duration::from_millis(25),
    }
}

fn entry(name: &str) -> afta_fuzz::Reproducer {
    load_corpus(&corpus_dir())
        .expect("corpus directory loads")
        .into_iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("corpus entry `{name}` missing"))
        .1
}

#[test]
fn corpus_partition_quarantine_livelock_still_trips() {
    let rep = entry("partition-quarantine-livelock");
    assert_eq!(rep.invariant, Invariant::NoLivelock);
    let report = replay_reproducer(&rep, &fast()).expect("reproducer still reproduces");
    let violation = report.violation_of(Invariant::NoLivelock).unwrap();
    assert_eq!(violation.strategy, "farm");
}

#[test]
fn corpus_clash_edit_silent_loss_still_trips() {
    let rep = entry("clash-edit-silent-loss");
    assert_eq!(rep.invariant, Invariant::NoLostShard);
    let report = replay_reproducer(&rep, &fast()).expect("reproducer still reproduces");
    let violation = report.violation_of(Invariant::NoLostShard).unwrap();
    assert_eq!(violation.strategy, "mem");
    // The downgrade edit is what strips protection: M4 -> M0.
    assert_eq!(report.mem.method_history, vec!["M4", "M0"]);
}

#[test]
fn corpus_leap_second_retry_starvation_still_trips() {
    let rep = entry("leap-second-retry-starvation");
    assert_eq!(rep.invariant, Invariant::NoLivelock);
    let report = replay_reproducer(&rep, &fast()).expect("reproducer still reproduces");
    let violation = report.violation_of(Invariant::NoLivelock).unwrap();
    assert_eq!(violation.strategy, "patterns");
    assert!(violation.detail.contains("forced E1"));
    // The zero-flip storms are pure timing disturbances: memory and the
    // farm stay clean, the skewed deadline arithmetic alone livelocks.
    assert_eq!(report.mem.wrong_reads, 0);
    assert!(report
        .violations
        .iter()
        .all(|v| v.invariant == Invariant::NoLivelock));
}

#[test]
fn every_corpus_entry_replays_and_is_one_minimal() {
    let entries = load_corpus(&corpus_dir()).expect("corpus directory loads");
    assert!(entries.len() >= 3, "corpus must keep its seed entries");
    let cfg = fast();
    for (name, rep) in entries {
        replay_reproducer(&rep, &cfg)
            .unwrap_or_else(|e| panic!("corpus entry `{name}` drifted: {e}"));
        assert_one_minimal(&rep, &cfg)
            .unwrap_or_else(|e| panic!("corpus entry `{name}` not minimal: {e}"));
        assert!(
            !rep.afta_seed.is_empty() && rep.afta_seed.starts_with("0x"),
            "corpus entry `{name}` must record its AFTA_SEED"
        );
    }
}
