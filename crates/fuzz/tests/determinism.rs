//! End-to-end determinism: one `AFTA_SEED` pins the schedule bytes, the
//! run verdict bytes, and the shrink trace.

use std::time::Duration;

use afta_fuzz::{
    generate, run_schedule, shrink, BugFlags, FaultEvent, FaultKind, Invariant, Profile, RunConfig,
    Schedule, DEFAULT_MAX_STEPS,
};
use afta_telemetry::Registry;

fn fast() -> RunConfig {
    RunConfig {
        round_timeout: Duration::from_millis(25),
    }
}

#[test]
fn seed_pins_schedule_verdict_and_shrink_bytes() {
    let seed = 0x00DE_F109_u64;

    let schedule_a = generate(seed, DEFAULT_MAX_STEPS, Profile::Battery);
    let schedule_b = generate(seed, DEFAULT_MAX_STEPS, Profile::Battery);
    assert_eq!(schedule_a.to_json(), schedule_b.to_json());

    let report_a = run_schedule(
        &schedule_a,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    let report_b = run_schedule(
        &schedule_b,
        &BugFlags::default(),
        &fast(),
        &Registry::disabled(),
    );
    assert_eq!(report_a.to_json(), report_b.to_json());

    // Shrink determinism, on a schedule known to fail under a planted
    // bug: both passes must walk the identical trace.
    let failing = Schedule {
        seed,
        max_steps: 10,
        events: vec![
            FaultEvent {
                at: 1,
                kind: FaultKind::ClockSkew { delta: 6 },
            },
            FaultEvent {
                at: 2,
                kind: FaultKind::SefiStorm {
                    flips: 2,
                    sefi: false,
                },
            },
            FaultEvent {
                at: 3,
                kind: FaultKind::ClockSkew { delta: -5 },
            },
        ],
    };
    let flags = BugFlags {
        raw_skew: true,
        ..BugFlags::default()
    };
    let shrink_a = shrink(&failing, Invariant::MonotonicSpans, &flags, &fast()).unwrap();
    let shrink_b = shrink(&failing, Invariant::MonotonicSpans, &flags, &fast()).unwrap();
    assert_eq!(shrink_a.minimized.to_json(), shrink_b.minimized.to_json());
    assert_eq!(shrink_a.trace, shrink_b.trace);
    assert_eq!(shrink_a.runs, shrink_b.runs);
}

#[test]
fn different_seeds_differ() {
    let a = generate(1, DEFAULT_MAX_STEPS, Profile::Battery);
    let b = generate(2, DEFAULT_MAX_STEPS, Profile::Battery);
    assert_ne!(a, b, "adjacent seeds should not collide");
}

#[test]
fn wild_profile_is_deterministic_too() {
    for seed in [3u64, 0xDEAD_BEEF, u64::MAX] {
        let a = generate(seed, DEFAULT_MAX_STEPS, Profile::Wild);
        let b = generate(seed, DEFAULT_MAX_STEPS, Profile::Wild);
        assert_eq!(a.to_json(), b.to_json());
    }
}
