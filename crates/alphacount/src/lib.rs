//! # afta-alphacount — count-and-threshold fault discrimination
//!
//! The run-time strategy of §3.2 feeds fault notifications "into an
//! Alpha-count filter, that is, a count-and-threshold mechanism to
//! discriminate between different types of faults" (Bondavalli,
//! Chiaradonna, Di Giandomenico & Grandoni, IEEE ToC 49(3), 2000).
//!
//! The mechanism keeps a score α per monitored component:
//!
//! * when the component is judged **erroneous** in a round, α increases by
//!   a unit increment;
//! * when it is judged **correct**, α decays — multiplicatively (α ← K·α,
//!   0 ≤ K < 1) or subtractively (α ← max(0, α − D));
//! * when α crosses the threshold αT the fault is declared
//!   **permanent-or-intermittent**; below it, observed errors are still
//!   compatible with **transient** faults.
//!
//! The Fig. 4 scenario of the paper uses a threshold of 3.0: a permanent
//! design fault is repeatedly injected, the watchdog fires, α rises until
//! it "overcomes a threshold (3.0) and correspondingly the fault is
//! labeled as 'permanent or intermittent'".
//!
//! ```
//! use afta_alphacount::{AlphaCount, Judgment, Verdict};
//!
//! let mut ac = AlphaCount::with_threshold(3.0);
//! // Three errors in a row are still compatible with transients...
//! assert_eq!(ac.record(Judgment::Erroneous), Verdict::Transient);
//! assert_eq!(ac.record(Judgment::Erroneous), Verdict::Transient);
//! assert_eq!(ac.record(Judgment::Erroneous), Verdict::Transient);
//! // ...the fourth crosses αT = 3.0.
//! assert_eq!(ac.record(Judgment::Erroneous), Verdict::PermanentOrIntermittent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod observed;
pub mod windowed;

pub use observed::ObservedAlphaCount;

use serde::{Deserialize, Serialize};
use std::fmt;

/// The per-round judgment fed to the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Judgment {
    /// The monitored component behaved correctly this round.
    Correct,
    /// The monitored component was caught misbehaving this round.
    Erroneous,
}

/// The filter's current discrimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Errors seen so far are compatible with transient faults.
    Transient,
    /// The error density is too high for transients: the fault is
    /// permanent or intermittent, and reconfiguration-style treatment is
    /// warranted.
    PermanentOrIntermittent,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Transient => write!(f, "transient"),
            Verdict::PermanentOrIntermittent => write!(f, "permanent or intermittent"),
        }
    }
}

/// How α decays on a correct round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecayPolicy {
    /// α ← K·α with 0 ≤ K < 1 (the canonical alpha-count).
    Multiplicative(f64),
    /// α ← max(0, α − D) with D > 0 (the alpha-count variant with linear
    /// forgiveness).
    Subtractive(f64),
}

impl DecayPolicy {
    /// Applies one correct-round decay step to `alpha`.
    ///
    /// This is the per-policy textbook formula; [`AlphaCount::record`]
    /// uses the folded branch-free form instead, and a test asserts the
    /// two are bit-identical for non-negative finite α.
    #[must_use]
    pub fn apply(self, alpha: f64) -> f64 {
        match self {
            DecayPolicy::Multiplicative(k) => alpha * k,
            DecayPolicy::Subtractive(d) => (alpha - d).max(0.0),
        }
    }

    /// Non-panicking validity check: returns a description of the problem
    /// for an out-of-range parameter.  Static tools (`afta-lint`) use
    /// this to reject a configuration before construction would panic.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint when `K` is outside `[0, 1)` or
    /// `D` is not positive.
    pub fn check(self) -> Result<(), String> {
        match self {
            DecayPolicy::Multiplicative(k) => {
                if !(0.0..1.0).contains(&k) {
                    return Err(format!(
                        "multiplicative decay K must satisfy 0 <= K < 1, got {k}"
                    ));
                }
            }
            DecayPolicy::Subtractive(d) => {
                if d.is_nan() || d <= 0.0 {
                    return Err(format!("subtractive decay D must be positive, got {d}"));
                }
            }
        }
        Ok(())
    }

    fn validate(self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }
}

/// The alpha-count filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaCount {
    alpha: f64,
    increment: f64,
    threshold: f64,
    decay: DecayPolicy,
    rounds: u64,
    errors: u64,
    crossed_at: Option<u64>,
}

impl AlphaCount {
    /// The default decay used by the Fig. 4 reproduction.
    pub const DEFAULT_DECAY: DecayPolicy = DecayPolicy::Multiplicative(0.5);

    /// Creates a filter with unit increment, the given threshold, and the
    /// default multiplicative decay K = 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive.
    #[must_use]
    pub fn with_threshold(threshold: f64) -> Self {
        Self::new(1.0, threshold, Self::DEFAULT_DECAY)
    }

    /// Non-panicking validity check over a full parameterisation, for
    /// static tools that vet configurations before construction.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint when `increment <= 0`,
    /// `threshold <= 0`, or the decay parameter is out of range.
    pub fn check_params(increment: f64, threshold: f64, decay: DecayPolicy) -> Result<(), String> {
        if increment.is_nan() || increment <= 0.0 {
            return Err(format!("increment must be positive, got {increment}"));
        }
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(format!("threshold must be positive, got {threshold}"));
        }
        decay.check()
    }

    /// Creates a fully parameterised filter.
    ///
    /// # Panics
    ///
    /// Panics if `increment <= 0`, `threshold <= 0`, or the decay policy's
    /// parameter is out of range.
    #[must_use]
    pub fn new(increment: f64, threshold: f64, decay: DecayPolicy) -> Self {
        assert!(increment > 0.0, "increment must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        decay.validate();
        Self {
            alpha: 0.0,
            increment,
            threshold,
            decay,
            rounds: 0,
            errors: 0,
            crossed_at: None,
        }
    }

    /// Current score α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The threshold αT.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Rounds processed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Erroneous rounds seen so far.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The round at which α first exceeded αT, if it ever did.
    #[must_use]
    pub fn crossed_at(&self) -> Option<u64> {
        self.crossed_at
    }

    /// Current verdict without recording a new round.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        if self.alpha > self.threshold {
            Verdict::PermanentOrIntermittent
        } else {
            Verdict::Transient
        }
    }

    /// Records one round and returns the updated verdict.
    ///
    /// The α update is branch-free on the judgment: both the grow and
    /// the decay candidate are computed unconditionally and the result
    /// is selected with a conditional move, so an adversarial fault
    /// pattern that flips the judgment every round (the worst case for a
    /// branch predictor — and exactly what an intermittent fault looks
    /// like) costs the same as a steady stream.  Every decay policy is
    /// folded into the single form `max(α·K − D, 0)` (multiplicative:
    /// `D = 0`; subtractive: `K = 1`), which is bit-identical to the
    /// per-policy formulas because α is always non-negative and finite.
    pub fn record(&mut self, judgment: Judgment) -> Verdict {
        self.rounds += 1;
        let erroneous = judgment == Judgment::Erroneous;
        self.errors += u64::from(erroneous);
        let (k, d) = match self.decay {
            DecayPolicy::Multiplicative(k) => (k, 0.0),
            DecayPolicy::Subtractive(d) => (1.0, d),
        };
        let grown = self.alpha + self.increment;
        let decayed = (self.alpha * k - d).max(0.0);
        self.alpha = if erroneous { grown } else { decayed };
        let crossed = self.alpha > self.threshold;
        if crossed && self.crossed_at.is_none() {
            self.crossed_at = Some(self.rounds);
        }
        if crossed {
            Verdict::PermanentOrIntermittent
        } else {
            Verdict::Transient
        }
    }

    /// Resets α and the round counters (e.g. after the faulty component
    /// was replaced).
    pub fn reset(&mut self) {
        self.alpha = 0.0;
        self.rounds = 0;
        self.errors = 0;
        self.crossed_at = None;
    }
}

impl fmt::Display for AlphaCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alpha-count: α={:.3} / αT={:.3} ({})",
            self.alpha,
            self.threshold,
            self.verdict()
        )
    }
}

/// A bank of alpha-count filters, one per monitored component, sharing one
/// parameterisation — the shape the §3.2 middleware uses when several
/// components publish fault notifications on the same bus.
#[derive(Debug, Clone, Default)]
pub struct AlphaCountBank {
    template: Option<AlphaCount>,
    counters: std::collections::BTreeMap<String, AlphaCount>,
}

impl AlphaCountBank {
    /// Creates a bank whose filters are clones of `template` (with fresh
    /// state).
    #[must_use]
    pub fn new(template: AlphaCount) -> Self {
        let mut t = template;
        t.reset();
        Self {
            template: Some(t),
            counters: std::collections::BTreeMap::new(),
        }
    }

    /// Records a judgment for `component`, creating its filter on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if the bank was built with `Default::default()` and has no
    /// template.
    pub fn record(&mut self, component: &str, judgment: Judgment) -> Verdict {
        let template = self
            .template
            .as_ref()
            .expect("AlphaCountBank requires a template filter");
        self.counters
            .entry(component.to_owned())
            .or_insert_with(|| template.clone())
            .record(judgment)
    }

    /// The filter for `component`, if it has reported at least once.
    #[must_use]
    pub fn get(&self, component: &str) -> Option<&AlphaCount> {
        self.counters.get(component)
    }

    /// Components whose verdict is currently permanent-or-intermittent.
    pub fn suspects(&self) -> impl Iterator<Item = &str> {
        self.counters
            .iter()
            .filter(|(_, c)| c.verdict() == Verdict::PermanentOrIntermittent)
            .map(|(k, _)| k.as_str())
    }

    /// Number of tracked components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no component has reported yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_transient_at_zero() {
        let ac = AlphaCount::with_threshold(3.0);
        assert_eq!(ac.alpha(), 0.0);
        assert_eq!(ac.verdict(), Verdict::Transient);
        assert_eq!(ac.rounds(), 0);
    }

    #[test]
    fn fig4_scenario_crosses_at_fourth_error() {
        // Permanent fault injected every round: α = 1, 2, 3, 4 — the
        // verdict flips strictly above 3.0, i.e. at round 4.
        let mut ac = AlphaCount::with_threshold(3.0);
        for _ in 0..3 {
            assert_eq!(ac.record(Judgment::Erroneous), Verdict::Transient);
        }
        assert_eq!(
            ac.record(Judgment::Erroneous),
            Verdict::PermanentOrIntermittent
        );
        assert_eq!(ac.crossed_at(), Some(4));
        assert_eq!(ac.errors(), 4);
    }

    #[test]
    fn transient_bursts_decay_away() {
        let mut ac = AlphaCount::with_threshold(3.0);
        ac.record(Judgment::Erroneous);
        ac.record(Judgment::Erroneous);
        assert_eq!(ac.alpha(), 2.0);
        // A long correct streak pulls α back toward zero.
        for _ in 0..20 {
            ac.record(Judgment::Correct);
        }
        assert!(ac.alpha() < 1e-4);
        assert_eq!(ac.verdict(), Verdict::Transient);
        assert_eq!(ac.crossed_at(), None);
    }

    #[test]
    fn isolated_errors_never_cross() {
        // One error every 10 rounds with K=0.5 keeps α ≤ 1 + ε forever.
        let mut ac = AlphaCount::with_threshold(3.0);
        for round in 0..1000 {
            let j = if round % 10 == 0 {
                Judgment::Erroneous
            } else {
                Judgment::Correct
            };
            ac.record(j);
        }
        assert_eq!(ac.verdict(), Verdict::Transient);
        assert!(ac.alpha() < 1.01);
    }

    #[test]
    fn intermittent_fault_eventually_crosses() {
        // Errors every other round with K=0.5: α converges upward past 3.
        let mut ac = AlphaCount::with_threshold(3.0);
        let mut crossed = false;
        for round in 0..100 {
            let j = if round % 2 == 0 {
                Judgment::Erroneous
            } else {
                Judgment::Correct
            };
            if ac.record(j) == Verdict::PermanentOrIntermittent {
                crossed = true;
                break;
            }
        }
        assert!(
            !crossed,
            "K=0.5 alternating stays below 3.0 (converges to 2)"
        );
        // But with a gentler decay the same pattern crosses:
        let mut ac = AlphaCount::new(1.0, 3.0, DecayPolicy::Multiplicative(0.9));
        let mut crossed = false;
        for round in 0..100 {
            let j = if round % 2 == 0 {
                Judgment::Erroneous
            } else {
                Judgment::Correct
            };
            if ac.record(j) == Verdict::PermanentOrIntermittent {
                crossed = true;
                break;
            }
        }
        assert!(crossed);
    }

    #[test]
    fn subtractive_decay() {
        let mut ac = AlphaCount::new(1.0, 2.5, DecayPolicy::Subtractive(0.25));
        ac.record(Judgment::Erroneous);
        ac.record(Judgment::Correct);
        assert!((ac.alpha() - 0.75).abs() < 1e-12);
        // Floor at zero.
        for _ in 0..10 {
            ac.record(Judgment::Correct);
        }
        assert_eq!(ac.alpha(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut ac = AlphaCount::with_threshold(1.0);
        ac.record(Judgment::Erroneous);
        ac.record(Judgment::Erroneous);
        assert_eq!(ac.verdict(), Verdict::PermanentOrIntermittent);
        ac.reset();
        assert_eq!(ac.alpha(), 0.0);
        assert_eq!(ac.rounds(), 0);
        assert_eq!(ac.errors(), 0);
        assert_eq!(ac.crossed_at(), None);
        assert_eq!(ac.verdict(), Verdict::Transient);
    }

    #[test]
    fn decay_factor_exactly_one_is_rejected() {
        // K = 1.0 means "never forgive": α only grows and every
        // transient eventually reads as permanent.  The canonical
        // alpha-count requires K strictly below one, and the boundary
        // must be rejected exactly — not K = 1 + ε only.
        assert!(DecayPolicy::Multiplicative(1.0)
            .check()
            .unwrap_err()
            .contains("0 <= K < 1"));
        assert!(AlphaCount::check_params(1.0, 3.0, DecayPolicy::Multiplicative(1.0)).is_err());
        // The open boundary: the largest f64 below 1.0 is fine, as are
        // both extremes of the valid range.
        assert!(DecayPolicy::Multiplicative(1.0 - f64::EPSILON)
            .check()
            .is_ok());
        assert!(DecayPolicy::Multiplicative(0.0).check().is_ok());
        assert!(DecayPolicy::Multiplicative(f64::NAN).check().is_err());
    }

    #[test]
    fn subtractive_decay_edge_parameters() {
        // D must be strictly positive: zero would also never forgive.
        assert!(DecayPolicy::Subtractive(0.0).check().is_err());
        assert!(DecayPolicy::Subtractive(-1.0).check().is_err());
        assert!(DecayPolicy::Subtractive(f64::NAN).check().is_err());
        assert!(DecayPolicy::Subtractive(f64::MIN_POSITIVE).check().is_ok());
    }

    #[test]
    fn check_params_reports_without_panicking() {
        assert!(AlphaCount::check_params(1.0, 3.0, AlphaCount::DEFAULT_DECAY).is_ok());
        assert!(
            AlphaCount::check_params(0.0, 3.0, AlphaCount::DEFAULT_DECAY)
                .unwrap_err()
                .contains("increment")
        );
        assert!(
            AlphaCount::check_params(1.0, -1.0, AlphaCount::DEFAULT_DECAY)
                .unwrap_err()
                .contains("threshold")
        );
        assert!(
            AlphaCount::check_params(1.0, 3.0, DecayPolicy::Multiplicative(1.5))
                .unwrap_err()
                .contains("0 <= K < 1")
        );
        assert!(DecayPolicy::Subtractive(0.0).check().is_err());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = AlphaCount::with_threshold(0.0);
    }

    #[test]
    #[should_panic(expected = "0 <= K < 1")]
    fn bad_multiplicative_decay_rejected() {
        let _ = AlphaCount::new(1.0, 3.0, DecayPolicy::Multiplicative(1.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_subtractive_decay_rejected() {
        let _ = AlphaCount::new(1.0, 3.0, DecayPolicy::Subtractive(0.0));
    }

    #[test]
    #[should_panic(expected = "increment must be positive")]
    fn bad_increment_rejected() {
        let _ = AlphaCount::new(0.0, 3.0, AlphaCount::DEFAULT_DECAY);
    }

    #[test]
    fn crossed_at_records_first_crossing_only() {
        let mut ac = AlphaCount::with_threshold(1.0);
        ac.record(Judgment::Erroneous);
        ac.record(Judgment::Erroneous); // crosses here (α=2 > 1)
        let first = ac.crossed_at().unwrap();
        ac.record(Judgment::Erroneous);
        assert_eq!(ac.crossed_at(), Some(first));
    }

    #[test]
    fn bank_tracks_components_independently() {
        let mut bank = AlphaCountBank::new(AlphaCount::with_threshold(3.0));
        assert!(bank.is_empty());
        for _ in 0..4 {
            bank.record("c3", Judgment::Erroneous);
            bank.record("c5", Judgment::Correct);
        }
        assert_eq!(bank.len(), 2);
        assert_eq!(
            bank.get("c3").unwrap().verdict(),
            Verdict::PermanentOrIntermittent
        );
        assert_eq!(bank.get("c5").unwrap().verdict(), Verdict::Transient);
        let suspects: Vec<&str> = bank.suspects().collect();
        assert_eq!(suspects, vec!["c3"]);
        assert!(bank.get("ghost").is_none());
    }

    #[test]
    fn bank_template_state_is_fresh() {
        let mut dirty = AlphaCount::with_threshold(3.0);
        for _ in 0..10 {
            dirty.record(Judgment::Erroneous);
        }
        let mut bank = AlphaCountBank::new(dirty);
        assert_eq!(bank.record("x", Judgment::Correct), Verdict::Transient);
        assert_eq!(bank.get("x").unwrap().alpha(), 0.0);
    }

    #[test]
    fn displays() {
        let mut ac = AlphaCount::with_threshold(3.0);
        assert!(ac.to_string().contains("transient"));
        for _ in 0..4 {
            ac.record(Judgment::Erroneous);
        }
        assert!(ac.to_string().contains("permanent"));
        assert_eq!(Verdict::Transient.to_string(), "transient");
    }

    #[test]
    fn branch_free_update_is_bitwise_identical_to_reference() {
        // The folded `max(α·K − D, 0)` select in `record` must produce
        // bit-for-bit the same α trajectory as the per-policy textbook
        // formulas, for every policy, under a pseudo-random judgment
        // stream (xorshift so the test is deterministic).
        for decay in [
            DecayPolicy::Multiplicative(0.5),
            DecayPolicy::Multiplicative(0.9),
            DecayPolicy::Subtractive(0.25),
            DecayPolicy::Subtractive(1.5),
        ] {
            let mut ac = AlphaCount::new(1.0, 3.0, decay);
            let mut alpha_ref = 0.0f64;
            let mut state = 0x9e37_79b9_u64;
            for step in 0..10_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let judgment = if state.is_multiple_of(3) {
                    Judgment::Erroneous
                } else {
                    Judgment::Correct
                };
                match judgment {
                    Judgment::Erroneous => alpha_ref += 1.0,
                    Judgment::Correct => alpha_ref = decay.apply(alpha_ref),
                }
                ac.record(judgment);
                assert_eq!(
                    ac.alpha().to_bits(),
                    alpha_ref.to_bits(),
                    "diverged at step {step} under {decay:?}"
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut ac = AlphaCount::with_threshold(3.0);
        ac.record(Judgment::Erroneous);
        let json = serde_json::to_string(&ac).unwrap();
        let back: AlphaCount = serde_json::from_str(&json).unwrap();
        assert_eq!(ac, back);
    }
}
