//! The windowed count-and-threshold variant.
//!
//! Bondavalli et al. study a family of count-and-threshold mechanisms;
//! besides the exponentially-forgetting alpha-count this crate's root
//! module implements, the *sliding-window* variant counts the errors in
//! the last `W` rounds and declares the fault non-transient when that
//! count reaches `T`.  It reacts faster to dense bursts and forgets
//! sharply (a round falling out of the window stops counting entirely),
//! at the price of keeping `W` bits of history.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{Judgment, Verdict};

/// Sliding-window count-and-threshold filter.
///
/// ```
/// use afta_alphacount::{Judgment, Verdict};
/// use afta_alphacount::windowed::WindowedCount;
///
/// let mut wc = WindowedCount::new(10, 3);
/// for _ in 0..2 {
///     assert_eq!(wc.record(Judgment::Erroneous), Verdict::Transient);
/// }
/// assert_eq!(wc.record(Judgment::Erroneous), Verdict::PermanentOrIntermittent);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedCount {
    window: usize,
    threshold: usize,
    history: VecDeque<bool>,
    errors_in_window: usize,
    rounds: u64,
    crossed_at: Option<u64>,
}

impl WindowedCount {
    /// Creates a filter over the last `window` rounds declaring
    /// non-transient at `threshold` errors.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`, `threshold == 0`, or
    /// `threshold > window`.
    #[must_use]
    pub fn new(window: usize, threshold: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(threshold > 0, "threshold must be positive");
        assert!(
            threshold <= window,
            "threshold cannot exceed the window length"
        );
        Self {
            window,
            threshold,
            history: VecDeque::with_capacity(window),
            errors_in_window: 0,
            rounds: 0,
            crossed_at: None,
        }
    }

    /// Errors currently inside the window.
    #[must_use]
    pub fn errors_in_window(&self) -> usize {
        self.errors_in_window
    }

    /// Rounds processed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The round at which the count first reached the threshold, if ever.
    #[must_use]
    pub fn crossed_at(&self) -> Option<u64> {
        self.crossed_at
    }

    /// Current verdict without recording a new round.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        if self.errors_in_window >= self.threshold {
            Verdict::PermanentOrIntermittent
        } else {
            Verdict::Transient
        }
    }

    /// Records one round and returns the updated verdict.
    pub fn record(&mut self, judgment: Judgment) -> Verdict {
        self.rounds += 1;
        let is_error = judgment == Judgment::Erroneous;
        if self.history.len() == self.window && self.history.pop_front() == Some(true) {
            self.errors_in_window -= 1;
        }
        self.history.push_back(is_error);
        if is_error {
            self.errors_in_window += 1;
        }
        let v = self.verdict();
        if v == Verdict::PermanentOrIntermittent && self.crossed_at.is_none() {
            self.crossed_at = Some(self.rounds);
        }
        v
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.history.clear();
        self.errors_in_window = 0;
        self.rounds = 0;
        self.crossed_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_burst_crosses() {
        let mut wc = WindowedCount::new(5, 3);
        wc.record(Judgment::Erroneous);
        wc.record(Judgment::Erroneous);
        assert_eq!(wc.verdict(), Verdict::Transient);
        assert_eq!(
            wc.record(Judgment::Erroneous),
            Verdict::PermanentOrIntermittent
        );
        assert_eq!(wc.crossed_at(), Some(3));
    }

    #[test]
    fn sparse_errors_never_cross() {
        let mut wc = WindowedCount::new(5, 3);
        for round in 0..100 {
            let j = if round % 4 == 0 {
                Judgment::Erroneous
            } else {
                Judgment::Correct
            };
            assert_eq!(wc.record(j), Verdict::Transient, "round {round}");
        }
        // At most 2 errors ever share a 5-round window under period 4.
        assert!(wc.errors_in_window() <= 2);
    }

    #[test]
    fn forgetting_is_sharp() {
        let mut wc = WindowedCount::new(4, 3);
        wc.record(Judgment::Erroneous);
        wc.record(Judgment::Erroneous);
        assert_eq!(wc.errors_in_window(), 2);
        // Four quiet rounds flush the window completely.
        for _ in 0..4 {
            wc.record(Judgment::Correct);
        }
        assert_eq!(wc.errors_in_window(), 0);
        assert_eq!(wc.verdict(), Verdict::Transient);
    }

    #[test]
    fn recovery_after_crossing_is_possible() {
        // Unlike the hold-style alpha-count, the window forgets a crossed
        // verdict once the burst leaves the window.
        let mut wc = WindowedCount::new(4, 2);
        wc.record(Judgment::Erroneous);
        wc.record(Judgment::Erroneous);
        assert_eq!(wc.verdict(), Verdict::PermanentOrIntermittent);
        for _ in 0..4 {
            wc.record(Judgment::Correct);
        }
        assert_eq!(wc.verdict(), Verdict::Transient);
        // The first crossing stays on record.
        assert_eq!(wc.crossed_at(), Some(2));
    }

    #[test]
    fn reset_clears_everything() {
        let mut wc = WindowedCount::new(3, 2);
        wc.record(Judgment::Erroneous);
        wc.record(Judgment::Erroneous);
        wc.reset();
        assert_eq!(wc.errors_in_window(), 0);
        assert_eq!(wc.rounds(), 0);
        assert_eq!(wc.crossed_at(), None);
        assert_eq!(wc.verdict(), Verdict::Transient);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn threshold_bounded_by_window() {
        let _ = WindowedCount::new(3, 4);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = WindowedCount::new(0, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut wc = WindowedCount::new(5, 2);
        wc.record(Judgment::Erroneous);
        let json = serde_json::to_string(&wc).unwrap();
        let back: WindowedCount = serde_json::from_str(&json).unwrap();
        assert_eq!(wc, back);
    }

    #[test]
    fn comparison_with_alpha_count_on_alternating_pattern() {
        // Alternating error/correct: the K=0.5 alpha-count never crosses
        // 3.0 (converges to 2), while a 6-window/3-threshold windowed
        // count does cross — the two mechanisms genuinely discriminate
        // differently.
        let mut ac = crate::AlphaCount::with_threshold(3.0);
        let mut wc = WindowedCount::new(6, 3);
        let mut ac_crossed = false;
        let mut wc_crossed = false;
        for round in 0..50 {
            let j = if round % 2 == 0 {
                Judgment::Erroneous
            } else {
                Judgment::Correct
            };
            ac_crossed |= ac.record(j) == Verdict::PermanentOrIntermittent;
            wc_crossed |= wc.record(j) == Verdict::PermanentOrIntermittent;
        }
        assert!(!ac_crossed);
        assert!(wc_crossed);
    }
}
