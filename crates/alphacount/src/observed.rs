//! A telemetry-aware wrapper around [`AlphaCount`].
//!
//! [`AlphaCount`] itself is a pure, serialisable value type; this wrapper
//! adds the observability side effects: the `alphacount.*` counters and an
//! [`TelemetryEvent::AlphaVerdictFlip`] journal record on every verdict
//! change.

use afta_telemetry::{Counter, Registry, TelemetryEvent, Tick};

use crate::{AlphaCount, Judgment, Verdict};

/// An [`AlphaCount`] that reports into a telemetry [`Registry`].
///
/// Counters maintained:
///
/// * `alphacount.rounds` / `alphacount.errors` — judgments processed;
/// * `alphacount.flips` — verdict changes in either direction;
/// * `alphacount.false_positives` — flips back to transient: the filter
///   had crossed the threshold but subsequent correct rounds decayed α
///   below it again, refuting the earlier suspicion.
#[derive(Debug)]
pub struct ObservedAlphaCount {
    inner: AlphaCount,
    component: String,
    telemetry: Registry,
    rounds: Counter,
    errors: Counter,
    flips: Counter,
    false_positives: Counter,
}

impl ObservedAlphaCount {
    /// Wraps `inner`, attributing journal records to `component`.
    #[must_use]
    pub fn new(inner: AlphaCount, component: impl Into<String>, telemetry: Registry) -> Self {
        Self {
            inner,
            component: component.into(),
            rounds: telemetry.counter("alphacount.rounds"),
            errors: telemetry.counter("alphacount.errors"),
            flips: telemetry.counter("alphacount.flips"),
            false_positives: telemetry.counter("alphacount.false_positives"),
            telemetry,
        }
    }

    /// The wrapped filter.
    #[must_use]
    pub fn inner(&self) -> &AlphaCount {
        &self.inner
    }

    /// Unwraps the filter, discarding the telemetry binding.
    #[must_use]
    pub fn into_inner(self) -> AlphaCount {
        self.inner
    }

    /// The component this filter monitors.
    #[must_use]
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Records one judgment at virtual time `tick`, updating the counters
    /// and journaling the flip if the verdict changed.
    pub fn record(&mut self, tick: Tick, judgment: Judgment) -> Verdict {
        let before = self.inner.verdict();
        let after = self.inner.record(judgment);
        self.rounds.inc();
        if judgment == Judgment::Erroneous {
            self.errors.inc();
        }
        if after != before {
            self.flips.inc();
            if after == Verdict::Transient {
                self.false_positives.inc();
            }
            self.telemetry.record(
                tick,
                TelemetryEvent::AlphaVerdictFlip {
                    component: self.component.clone(),
                    alpha: self.inner.alpha(),
                    verdict: after.to_string(),
                },
            );
        }
        after
    }

    /// Resets the wrapped filter (the counters are cumulative and keep
    /// their values).
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_are_counted_and_journaled() {
        let telemetry = Registry::new();
        let mut ac =
            ObservedAlphaCount::new(AlphaCount::with_threshold(1.0), "c3", telemetry.clone());
        assert_eq!(ac.component(), "c3");

        // α: 1 (still transient), 2 (flips to permanent-or-intermittent),
        // then decay to 1.0 — no longer strictly above the threshold, so
        // the verdict flips back at tick 3: a false positive.
        ac.record(Tick(1), Judgment::Erroneous);
        ac.record(Tick(2), Judgment::Erroneous);
        ac.record(Tick(3), Judgment::Correct);
        ac.record(Tick(4), Judgment::Correct);
        assert_eq!(ac.inner().verdict(), Verdict::Transient);

        let report = telemetry.report();
        assert_eq!(report.counter("alphacount.rounds"), 4);
        assert_eq!(report.counter("alphacount.errors"), 2);
        assert_eq!(report.counter("alphacount.flips"), 2);
        assert_eq!(report.counter("alphacount.false_positives"), 1);

        let flips: Vec<_> = report.journal_of_kind("alpha-verdict-flip").collect();
        assert_eq!(flips.len(), 2);
        match &flips[0].event {
            TelemetryEvent::AlphaVerdictFlip {
                component,
                alpha,
                verdict,
            } => {
                assert_eq!(component, "c3");
                assert_eq!(*alpha, 2.0);
                assert_eq!(verdict, "permanent or intermittent");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(flips[1].tick, Tick(3));
    }

    #[test]
    fn disabled_registry_is_inert() {
        let mut ac =
            ObservedAlphaCount::new(AlphaCount::with_threshold(3.0), "x", Registry::disabled());
        for t in 0..10 {
            ac.record(Tick(t), Judgment::Erroneous);
        }
        assert_eq!(ac.inner().errors(), 10);
        assert_eq!(ac.into_inner().rounds(), 10);
    }

    #[test]
    fn reset_preserves_cumulative_counters() {
        let telemetry = Registry::new();
        let mut ac =
            ObservedAlphaCount::new(AlphaCount::with_threshold(3.0), "y", telemetry.clone());
        ac.record(Tick(0), Judgment::Erroneous);
        ac.reset();
        assert_eq!(ac.inner().rounds(), 0);
        assert_eq!(telemetry.report().counter("alphacount.rounds"), 1);
    }
}
