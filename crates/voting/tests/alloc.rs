//! Counting-allocator proof that a steady-state voting round is
//! allocation-free: once a [`VotingFarm`]'s [`RoundArena`] has grown to
//! the replica count, `round()` — replica execution, Boyer–Moore
//! majority vote, dissenter tracking, dtof — performs zero heap
//! allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use afta_voting::{RoundArena, VoteOutcome, VotingFarm};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `section` once as warm-up (growing the arena to its working
/// size), then measures its allocation count, best of three attempts.
/// Retries absorb incidental allocations from concurrently running
/// tests in this binary: any attempt that measures 0 proves the section
/// itself is alloc-free.
fn measured(mut section: impl FnMut()) -> u64 {
    section();
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = allocations();
        section();
        best = best.min(allocations() - before);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn steady_state_voting_round_is_zero_alloc() {
    // Replica 2 dissents every round, so the vote, the dissenter set,
    // and the dtof arithmetic are all exercised — not just consensus.
    let mut farm = VotingFarm::new(7, |i: usize, x: &u64| if i == 2 { u64::MAX } else { *x });

    let allocs = measured(|| {
        for input in 0..1_000u64 {
            let report = farm.round(&input);
            assert_eq!(report.outcome.value(), Some(&input));
            assert_eq!(farm.last_dissenters(), &[2]);
        }
    });
    assert_eq!(allocs, 0, "steady-state voting rounds must not allocate");
}

#[test]
fn arena_vote_is_zero_alloc_after_warmup() {
    let mut arena: RoundArena<u64> = RoundArena::with_replicas(5);

    let allocs = measured(|| {
        for round in 0..1_000u64 {
            let ballots = arena.begin_round();
            for replica in 0..5u64 {
                ballots.push(if replica == 3 { u64::MAX } else { round });
            }
            assert_eq!(
                arena.vote(),
                VoteOutcome::Majority {
                    value: round,
                    dissent: 1
                }
            );
        }
    });
    assert_eq!(allocs, 0, "arena rounds must not allocate after warm-up");
}

#[test]
fn replica_growth_allocates_then_settles() {
    let mut farm = VotingFarm::new(3, |_i: usize, x: &u64| *x);
    let _ = farm.round(&1);
    // Raising the replica count may grow the arena once...
    farm.set_replicas(9);
    let _ = farm.round(&2);
    // ...after which rounds are allocation-free again.
    let allocs = measured(|| {
        for input in 0..100u64 {
            let _ = farm.round(&input);
        }
    });
    assert_eq!(allocs, 0);
}
