//! Property tests on the voter family.

use afta_voting::{
    dtof_max, majority_vote, median_vote, plurality_vote, weighted_majority_vote, VoteOutcome,
    VotingFarm,
};
use proptest::prelude::*;

proptest! {
    /// Plurality never returns a value with fewer than `quorum` votes,
    /// and majority implies plurality (with quorum 1).
    #[test]
    fn plurality_quorum_and_consistency(
        votes in proptest::collection::vec(0u8..6, 1..20),
        quorum in 1usize..6,
    ) {
        if let VoteOutcome::Majority { value, dissent } = plurality_vote(&votes, quorum) {
            let count = votes.iter().filter(|&&v| v == value).count();
            prop_assert!(count >= quorum);
            prop_assert_eq!(dissent, votes.len() - count);
        }
        // A strict majority is always found by plurality too.
        if let VoteOutcome::Majority { value, .. } = majority_vote(&votes) {
            match plurality_vote(&votes, 1) {
                VoteOutcome::Majority { value: pv, .. } => prop_assert_eq!(pv, value),
                VoteOutcome::NoMajority => prop_assert!(false, "plurality missed a majority"),
            }
        }
    }

    /// The median is always one of the votes and lies within [min, max].
    #[test]
    fn median_is_a_vote_within_bounds(votes in proptest::collection::vec(-1000i64..1000, 1..25)) {
        match median_vote(&votes) {
            VoteOutcome::Majority { value, .. } => {
                prop_assert!(votes.contains(&value));
                prop_assert!(value >= *votes.iter().min().unwrap());
                prop_assert!(value <= *votes.iter().max().unwrap());
            }
            VoteOutcome::NoMajority => prop_assert!(false, "median always decides"),
        }
    }

    /// With at most (n-1)/2 corrupted values, the median equals some
    /// correct reading regardless of how the corrupted values are chosen.
    #[test]
    fn median_tolerates_minority_corruption(
        n in proptest::sample::select(vec![3usize, 5, 7, 9]),
        correct in -100i64..100,
        corrupt in proptest::collection::vec(any::<i64>(), 0..4),
    ) {
        let faulty = corrupt.len().min((n - 1) / 2);
        let mut votes: Vec<i64> = vec![correct; n - faulty];
        votes.extend(corrupt.iter().take(faulty));
        let out = median_vote(&votes);
        prop_assert_eq!(out.value(), Some(&correct));
    }

    /// Uniform weights reduce weighted voting to plain majority voting.
    #[test]
    fn uniform_weights_match_majority(votes in proptest::collection::vec(0u8..5, 1..15)) {
        let weighted: Vec<(u8, f64)> = votes.iter().map(|&v| (v, 1.0)).collect();
        let a = weighted_majority_vote(&weighted);
        let b = majority_vote(&votes);
        match (a, b) {
            (
                VoteOutcome::Majority { value: va, dissent: da },
                VoteOutcome::Majority { value: vb, dissent: db },
            ) => {
                prop_assert_eq!(va, vb);
                prop_assert_eq!(da, db);
            }
            (VoteOutcome::NoMajority, VoteOutcome::NoMajority) => {}
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }

    /// Farm round accounting: dtof is consistent with the outcome and n.
    #[test]
    fn farm_round_dtof_consistency(
        n in proptest::sample::select(vec![1usize, 3, 5, 7, 9]),
        broken in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let mut farm = VotingFarm::new(n, |i: usize, x: &u32| {
            if broken[i] { u32::MAX - i as u32 } else { *x }
        });
        let r = farm.round(&7);
        prop_assert!(r.dtof <= dtof_max(n));
        match &r.outcome {
            VoteOutcome::Majority { dissent, .. } => {
                prop_assert_eq!(r.dtof, dtof_max(n).saturating_sub(*dissent as u32));
            }
            VoteOutcome::NoMajority => prop_assert_eq!(r.dtof, 0),
        }
    }
}
