//! # afta-voting — replication, majority voting, and distance-to-failure
//!
//! §3.3 of the paper assumes "that the replication-and-voting service is
//! available through an interface similar to the one of the Voting Farm.
//! Such service sets up a so-called 'restoring organ' after the user
//! supplied the number of replicas and the method to replicate."  This
//! crate is that service:
//!
//! * [`majority_vote`] / [`epsilon_vote`] — exact and inexact majority
//!   voters;
//! * [`dtof`] — the paper's distance-to-failure,
//!   `dtof(n, m) = ceil(n/2) − m`, returning 0 when no majority exists;
//! * [`VotingFarm`] — a restoring organ whose replica count can be raised
//!   and lowered at run time (the knob the Reflective Switchboards turn);
//! * [`parallel_round`] — a thread-parallel replica execution helper.
//!
//! ```
//! use afta_voting::{dtof, majority_vote, VoteOutcome};
//!
//! // The paper's Fig. 5, n = 7:
//! assert_eq!(dtof(7, Some(0)), 4); // (a) consensus: farthest from failure
//! assert_eq!(dtof(7, Some(1)), 3); // (b)
//! assert_eq!(dtof(7, Some(2)), 2); // (c)
//! assert_eq!(dtof(7, Some(3)), 1);
//! assert_eq!(dtof(7, None), 0);    // (d) no majority: failure
//!
//! let outcome = majority_vote(&[1, 1, 2, 1, 1, 3, 1]);
//! assert_eq!(outcome, VoteOutcome::Majority { value: 1, dissent: 2 });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod telemetry;
pub mod voters;

pub use arena::RoundArena;
pub use telemetry::VoteTelemetry;
pub use voters::{median_vote, plurality_vote, weighted_majority_vote};

use std::fmt;

/// Result of a voting round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteOutcome<V> {
    /// A strict majority agreed on `value`; `dissent` replicas disagreed.
    Majority {
        /// The agreed value.
        value: V,
        /// Number of votes differing from the majority (the paper's *m*).
        dissent: usize,
    },
    /// No value reached a strict majority: the restoring organ failed this
    /// round.
    NoMajority,
}

impl<V> VoteOutcome<V> {
    /// The agreed value, if any.
    #[must_use]
    pub fn value(&self) -> Option<&V> {
        match self {
            VoteOutcome::Majority { value, .. } => Some(value),
            VoteOutcome::NoMajority => None,
        }
    }

    /// The dissent count *m*, or `None` when no majority was found.
    #[must_use]
    pub fn dissent(&self) -> Option<usize> {
        match self {
            VoteOutcome::Majority { dissent, .. } => Some(*dissent),
            VoteOutcome::NoMajority => None,
        }
    }

    /// The distance-to-failure of this outcome for `n` replicas.
    #[must_use]
    pub fn dtof(&self, n: usize) -> u32 {
        dtof(n, self.dissent())
    }
}

impl<V: fmt::Display> fmt::Display for VoteOutcome<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteOutcome::Majority { value, dissent } => {
                write!(f, "majority on {value} (dissent {dissent})")
            }
            VoteOutcome::NoMajority => write!(f, "no majority"),
        }
    }
}

/// The paper's distance-to-failure:
///
/// > `dtof(n, m) = ceil(n/2) − m`, where *n* is the current number of
/// > replicas and *m* is the amount of votes that differ from the
/// > majority, if any such majority exists.  If no majority can be found
/// > dtof returns 0.
///
/// # Panics
///
/// Panics if `n == 0` or `m > n`.
#[must_use]
pub fn dtof(n: usize, m: Option<usize>) -> u32 {
    assert!(n > 0, "dtof requires at least one replica");
    if let Some(m) = m {
        assert!(m <= n, "dissent cannot exceed the replica count");
    }
    dtof_checked(n, m).expect("arguments validated above")
}

/// Non-panicking variant of [`dtof`] for static analyzers: returns `None`
/// when `n == 0` or `m > n` instead of panicking, so a misconfigured
/// voting-farm dimensioning can be *diagnosed* rather than crashed on.
#[must_use]
pub fn dtof_checked(n: usize, m: Option<usize>) -> Option<u32> {
    if n == 0 {
        return None;
    }
    match m {
        None => Some(0),
        Some(m) if m > n => None,
        Some(m) => {
            let half_up = n.div_ceil(2) as i64;
            Some((half_up - m as i64).max(0) as u32)
        }
    }
}

/// The maximum possible distance for `n` replicas (full consensus).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn dtof_max(n: usize) -> u32 {
    dtof(n, Some(0))
}

/// Exact majority voting: a value wins when strictly more than half the
/// votes equal it.
///
/// Implemented as Boyer–Moore majority-vote (candidate pass + verify
/// pass): no hashing, no allocation beyond cloning the winner.  A strict
/// majority value, when one exists, is unique and is always the
/// Boyer–Moore candidate, so the outcome is identical to counting every
/// ballot — this equivalence is exercised by a differential test against
/// a hash-map reference voter.
#[must_use]
pub fn majority_vote<V: Eq + Clone>(votes: &[V]) -> VoteOutcome<V> {
    let Some((candidate, _)) = boyer_moore_candidate(votes) else {
        return VoteOutcome::NoMajority;
    };
    let count = votes.iter().filter(|v| *v == candidate).count();
    if 2 * count > votes.len() {
        VoteOutcome::Majority {
            value: candidate.clone(),
            dissent: votes.len() - count,
        }
    } else {
        VoteOutcome::NoMajority
    }
}

/// First pass of Boyer–Moore: the surviving candidate (and its pairing
/// balance).  If any strict majority exists, it is this candidate.
fn boyer_moore_candidate<V: Eq>(votes: &[V]) -> Option<(&V, usize)> {
    let mut it = votes.iter();
    let mut candidate = it.next()?;
    let mut balance = 1usize;
    for v in it {
        if balance == 0 {
            candidate = v;
            balance = 1;
        } else if v == candidate {
            balance += 1;
        } else {
            balance -= 1;
        }
    }
    Some((candidate, balance))
}

/// Inexact (epsilon) majority voting over floats: votes within `eps` of a
/// candidate count as agreeing with it; the winning cluster's
/// representative is the candidate with the most agreement.  Returns the
/// cluster representative, not a mean, so the output is always one of the
/// inputs.
///
/// # Panics
///
/// Panics if `eps` is negative or NaN.
#[must_use]
pub fn epsilon_vote(votes: &[f64], eps: f64) -> VoteOutcome<f64> {
    assert!(eps >= 0.0, "epsilon must be non-negative");
    if votes.is_empty() {
        return VoteOutcome::NoMajority;
    }
    let mut best_idx = 0;
    let mut best_count = 0;
    for (i, &candidate) in votes.iter().enumerate() {
        let count = votes
            .iter()
            .filter(|&&v| (v - candidate).abs() <= eps)
            .count();
        if count > best_count {
            best_count = count;
            best_idx = i;
        }
    }
    if 2 * best_count > votes.len() {
        VoteOutcome::Majority {
            value: votes[best_idx],
            dissent: votes.len() - best_count,
        }
    } else {
        VoteOutcome::NoMajority
    }
}

/// Report of one [`VotingFarm`] round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport<V> {
    /// Replica count used this round.
    pub n: usize,
    /// The voting outcome.
    pub outcome: VoteOutcome<V>,
    /// Distance-to-failure of the round.
    pub dtof: u32,
}

impl<V> RoundReport<V> {
    /// Whether the round delivered a result.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        matches!(self.outcome, VoteOutcome::Majority { .. })
    }
}

/// A restoring organ: *n* replicas of a method plus a majority voter,
/// with the replica count adjustable at run time.
///
/// The replicated method receives `(replica_index, input)` so a fault
/// injector can corrupt individual replicas.
///
/// ```
/// use afta_voting::VotingFarm;
///
/// // Replica 1 is broken and always returns garbage.
/// let mut farm = VotingFarm::new(3, |replica: usize, input: &i32| {
///     if replica == 1 { -1 } else { input * 2 }
/// });
/// let report = farm.round(&21);
/// assert_eq!(report.outcome.value(), Some(&42));
/// assert_eq!(report.dtof, 1); // ceil(3/2) - 1 dissent
/// ```
pub struct VotingFarm<In, Out, F>
where
    F: FnMut(usize, &In) -> Out,
{
    replicas: usize,
    method: F,
    rounds: u64,
    failures: u64,
    arena: RoundArena<Out>,
    _marker: std::marker::PhantomData<fn(&In) -> Out>,
}

impl<In, Out, F> fmt::Debug for VotingFarm<In, Out, F>
where
    F: FnMut(usize, &In) -> Out,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VotingFarm")
            .field("replicas", &self.replicas)
            .field("rounds", &self.rounds)
            .field("failures", &self.failures)
            .finish_non_exhaustive()
    }
}

impl<In, Out, F> VotingFarm<In, Out, F>
where
    Out: Eq + Clone,
    F: FnMut(usize, &In) -> Out,
{
    /// Sets up the restoring organ with `replicas` copies of `method`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    #[must_use]
    pub fn new(replicas: usize, method: F) -> Self {
        assert!(replicas > 0, "a restoring organ needs at least 1 replica");
        Self {
            replicas,
            method,
            rounds: 0,
            failures: 0,
            arena: RoundArena::with_replicas(replicas),
            _marker: std::marker::PhantomData,
        }
    }

    /// Current replica count.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds that ended with no majority.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Sets the replica count (the §3.3 "secure messages that ask to
    /// raise or lower the current number of replicas").
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_replicas(&mut self, n: usize) {
        assert!(n > 0, "a restoring organ needs at least 1 replica");
        self.replicas = n;
    }

    /// Raises the replica count by `by`, capped at `cap`.
    pub fn raise(&mut self, by: usize, cap: usize) {
        self.replicas = (self.replicas + by).min(cap);
    }

    /// Lowers the replica count by `by`, floored at `floor`.
    ///
    /// # Panics
    ///
    /// Panics if `floor == 0`.
    pub fn lower(&mut self, by: usize, floor: usize) {
        assert!(floor > 0, "floor must keep at least 1 replica");
        self.replicas = self.replicas.saturating_sub(by).max(floor);
    }

    /// Runs all replicas on `input` and votes on the results.
    ///
    /// Ballots land in the farm's [`RoundArena`], so in steady state a
    /// round allocates nothing (after the arena has grown to the current
    /// replica count).
    pub fn round(&mut self, input: &In) -> RoundReport<Out> {
        let ballots = self.arena.begin_round();
        for i in 0..self.replicas {
            ballots.push((self.method)(i, input));
        }
        let outcome = self.arena.vote();
        let d = outcome.dtof(self.replicas);
        self.rounds += 1;
        if !matches!(outcome, VoteOutcome::Majority { .. }) {
            self.failures += 1;
        }
        RoundReport {
            n: self.replicas,
            outcome,
            dtof: d,
        }
    }

    /// Replica indices that dissented from the last round's majority
    /// (empty after consensus or a failed round).  See
    /// [`RoundArena::dissenters`].
    #[must_use]
    pub fn last_dissenters(&self) -> &[usize] {
        self.arena.dissenters()
    }
}

/// Runs `n` replicas of a thread-safe method in parallel (one thread per
/// replica) and votes on the results.  Use for genuinely expensive
/// replicated computations; for simulation workloads the sequential
/// [`VotingFarm`] is faster.
///
/// # Panics
///
/// Panics if `n == 0` or a replica thread panics.
#[must_use]
pub fn parallel_round<In, Out, F>(n: usize, method: &F, input: &In) -> RoundReport<Out>
where
    In: Sync,
    Out: Eq + Clone + Send,
    F: Fn(usize, &In) -> Out + Sync,
{
    assert!(n > 0, "a restoring organ needs at least 1 replica");
    let votes: Vec<Out> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| scope.spawn(move || method(i, input)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replica thread panicked"))
            .collect()
    });
    let outcome = majority_vote(&votes);
    let d = outcome.dtof(n);
    RoundReport {
        n,
        outcome,
        dtof: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_dtof_values() {
        // n = 7: the paper's Fig. 5 panels (a)-(d).
        assert_eq!(dtof(7, Some(0)), 4);
        assert_eq!(dtof(7, Some(1)), 3);
        assert_eq!(dtof(7, Some(2)), 2);
        assert_eq!(dtof(7, Some(3)), 1);
        assert_eq!(dtof(7, None), 0);
    }

    #[test]
    fn dtof_bounds_hold_for_many_n() {
        for n in 1..=31usize {
            let max = dtof_max(n);
            assert_eq!(max, n.div_ceil(2) as u32);
            for m in 0..=n {
                let d = dtof(n, Some(m));
                assert!(d <= max, "n={n} m={m}");
            }
            assert_eq!(dtof(n, None), 0);
        }
    }

    #[test]
    fn dtof_checked_agrees_and_never_panics() {
        for n in 1..=15usize {
            for m in 0..=n {
                assert_eq!(dtof_checked(n, Some(m)), Some(dtof(n, Some(m))));
            }
            assert_eq!(dtof_checked(n, None), Some(0));
        }
        assert_eq!(dtof_checked(0, Some(0)), None);
        assert_eq!(dtof_checked(0, None), None);
        assert_eq!(dtof_checked(3, Some(4)), None);
    }

    #[test]
    fn dtof_zero_voter_round_is_undefined_not_zero() {
        // A round that asked nobody has no distance-to-failure: the
        // checked variant must distinguish "undefined" (None) from the
        // legitimate "majority already failed" (Some(0)).
        for m in [None, Some(0), Some(1), Some(usize::MAX)] {
            assert_eq!(dtof_checked(0, m), None);
        }
    }

    #[test]
    fn dtof_all_dissent_round_is_exactly_zero() {
        // m == n: every replica dissented.  The distance must clamp at
        // zero for every n — the subtraction ceil(n/2) - n would go
        // negative for n >= 1 if computed naively in unsigned arithmetic.
        for n in 1..=25usize {
            assert_eq!(dtof_checked(n, Some(n)), Some(0), "n = {n}");
            assert_eq!(dtof(n, Some(n)), 0, "n = {n}");
            // One past all-dissent is no longer a valid round at all.
            assert_eq!(dtof_checked(n, Some(n + 1)), None, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn dtof_zero_replicas_panics() {
        let _ = dtof(0, Some(0));
    }

    #[test]
    #[should_panic(expected = "dissent cannot exceed")]
    fn dtof_dissent_bound() {
        let _ = dtof(3, Some(4));
    }

    #[test]
    fn majority_basic() {
        assert_eq!(
            majority_vote(&[1, 1, 1]),
            VoteOutcome::Majority {
                value: 1,
                dissent: 0
            }
        );
        assert_eq!(
            majority_vote(&[1, 2, 1]),
            VoteOutcome::Majority {
                value: 1,
                dissent: 1
            }
        );
        assert_eq!(majority_vote(&[1, 2, 3]), VoteOutcome::NoMajority);
        // An exact half is NOT a strict majority.
        assert_eq!(majority_vote(&[1, 1, 2, 2]), VoteOutcome::NoMajority);
        assert_eq!(majority_vote::<i32>(&[]), VoteOutcome::NoMajority);
    }

    #[test]
    fn majority_matches_hashmap_reference() {
        // The pre-arena voter counted every ballot in a HashMap.  The
        // Boyer–Moore rewrite must be outcome-identical; enumerate every
        // 3-ary ballot pattern up to 6 replicas and compare.
        fn reference<V: Eq + std::hash::Hash + Clone>(votes: &[V]) -> VoteOutcome<V> {
            use std::collections::HashMap;
            if votes.is_empty() {
                return VoteOutcome::NoMajority;
            }
            let mut counts: HashMap<&V, usize> = HashMap::new();
            for v in votes {
                *counts.entry(v).or_insert(0) += 1;
            }
            let (best, count) = counts.into_iter().max_by_key(|&(_, c)| c).unwrap();
            if 2 * count > votes.len() {
                VoteOutcome::Majority {
                    value: best.clone(),
                    dissent: votes.len() - count,
                }
            } else {
                VoteOutcome::NoMajority
            }
        }
        for n in 0usize..=6 {
            for pattern in 0u32..3u32.pow(n as u32) {
                let mut p = pattern;
                let votes: Vec<u32> = (0..n)
                    .map(|_| {
                        let v = p % 3;
                        p /= 3;
                        v
                    })
                    .collect();
                assert_eq!(majority_vote(&votes), reference(&votes), "votes={votes:?}");
            }
        }
    }

    #[test]
    fn farm_reports_dissenters() {
        let mut farm = VotingFarm::new(5, |i: usize, x: &i32| if i % 2 == 1 { -1 } else { *x });
        let r = farm.round(&3);
        assert_eq!(r.outcome.value(), Some(&3));
        assert_eq!(farm.last_dissenters(), &[1, 3]);
        // A consensus round clears the set.
        farm.set_replicas(1);
        let _ = farm.round(&3);
        assert!(farm.last_dissenters().is_empty());
    }

    #[test]
    fn majority_single_vote() {
        assert_eq!(
            majority_vote(&["x"]),
            VoteOutcome::Majority {
                value: "x",
                dissent: 0
            }
        );
    }

    #[test]
    fn epsilon_vote_clusters() {
        // Three near-identical readings vs two outliers.
        let votes = [1.00, 1.01, 0.99, 5.0, -3.0];
        let out = epsilon_vote(&votes, 0.05);
        let v = *out.value().unwrap();
        assert!((v - 1.0).abs() <= 0.02);
        assert_eq!(out.dissent(), Some(2));
    }

    #[test]
    fn epsilon_vote_no_majority() {
        assert_eq!(
            epsilon_vote(&[1.0, 2.0, 3.0, 4.0], 0.1),
            VoteOutcome::NoMajority
        );
        assert_eq!(epsilon_vote(&[], 0.1), VoteOutcome::NoMajority);
    }

    #[test]
    fn epsilon_zero_is_exact() {
        let out = epsilon_vote(&[2.0, 2.0, 3.0], 0.0);
        assert_eq!(out.value(), Some(&2.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn epsilon_rejects_negative() {
        let _ = epsilon_vote(&[1.0], -0.1);
    }

    #[test]
    fn farm_round_and_counters() {
        let mut farm = VotingFarm::new(5, |i: usize, x: &i32| if i == 0 { 0 } else { *x });
        let r = farm.round(&7);
        assert_eq!(r.n, 5);
        assert!(r.succeeded());
        assert_eq!(r.outcome.value(), Some(&7));
        assert_eq!(r.dtof, 2); // ceil(5/2)=3, dissent 1
        assert_eq!(farm.rounds(), 1);
        assert_eq!(farm.failures(), 0);
    }

    #[test]
    fn farm_counts_failures() {
        // Every replica returns its own index: no majority.
        let mut farm = VotingFarm::new(3, |i: usize, _: &()| i);
        let r = farm.round(&());
        assert!(!r.succeeded());
        assert_eq!(r.dtof, 0);
        assert_eq!(farm.failures(), 1);
    }

    #[test]
    fn farm_resizing() {
        let mut farm = VotingFarm::new(3, |_: usize, x: &u8| *x);
        farm.raise(2, 9);
        assert_eq!(farm.replicas(), 5);
        farm.raise(100, 9);
        assert_eq!(farm.replicas(), 9);
        farm.lower(2, 3);
        assert_eq!(farm.replicas(), 7);
        farm.lower(100, 3);
        assert_eq!(farm.replicas(), 3);
        farm.set_replicas(5);
        assert_eq!(farm.replicas(), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1 replica")]
    fn farm_zero_replicas_rejected() {
        let _ = VotingFarm::new(0, |_: usize, x: &u8| *x);
    }

    #[test]
    fn parallel_round_agrees_with_sequential() {
        let method = |i: usize, x: &u64| if i == 2 { 0 } else { x * 3 };
        let par = parallel_round(5, &method, &14);
        let mut farm = VotingFarm::new(5, method);
        let seq = farm.round(&14);
        assert_eq!(par.outcome, seq.outcome);
        assert_eq!(par.dtof, seq.dtof);
        assert_eq!(par.outcome.value(), Some(&42));
    }

    #[test]
    fn outcome_accessors_and_display() {
        let m = VoteOutcome::Majority {
            value: 9,
            dissent: 1,
        };
        assert_eq!(m.value(), Some(&9));
        assert_eq!(m.dissent(), Some(1));
        assert!(m.to_string().contains("majority on 9"));
        let n: VoteOutcome<i32> = VoteOutcome::NoMajority;
        assert_eq!(n.value(), None);
        assert_eq!(n.dissent(), None);
        assert!(n.to_string().contains("no majority"));
    }

    #[test]
    fn farm_debug() {
        let farm = VotingFarm::new(3, |_: usize, x: &u8| *x);
        assert!(format!("{farm:?}").contains("VotingFarm"));
    }
}
