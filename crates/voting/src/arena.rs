//! Reusable per-farm round scratch — the zero-allocation voting path.
//!
//! The paper's §4 vision keeps the restoring organ switched on
//! permanently, which means a voting round must not cost a heap
//! round-trip.  A [`RoundArena`] owns every buffer a round needs — the
//! ballot vector the replicas write into and the dissenter index set the
//! verify pass fills — allocated once when the farm is built and *reset*
//! (never freed) between rounds.  After warm-up a round performs zero
//! allocations; the counting-allocator test in `tests/alloc.rs` pins
//! this down.
//!
//! [`VotingFarm`](crate::VotingFarm) embeds an arena and
//! `afta-net`'s `DistributedVotingFarm` threads one through its network
//! rounds, so both the local and the distributed hot paths inherit the
//! same steady-state behaviour.

use crate::{majority_vote, VoteOutcome};

/// Reusable scratch for voting rounds: ballots in, outcome and dissenter
/// set out, no steady-state allocation.
///
/// ```
/// use afta_voting::{RoundArena, VoteOutcome};
///
/// let mut arena = RoundArena::with_replicas(5);
/// for round in 0..3u64 {
///     let ballots = arena.begin_round();
///     for replica in 0..5u64 {
///         // Replica 3 is faulty and always votes 99.
///         ballots.push(if replica == 3 { 99 } else { round * 2 });
///     }
///     let outcome = arena.vote();
///     assert_eq!(outcome, VoteOutcome::Majority { value: round * 2, dissent: 1 });
///     assert_eq!(arena.dissenters(), &[3], "replica 3 is the dissenter");
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundArena<Out> {
    ballots: Vec<Out>,
    dissenters: Vec<usize>,
}

impl<Out> RoundArena<Out> {
    /// An empty arena; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ballots: Vec::new(),
            dissenters: Vec::new(),
        }
    }

    /// An arena pre-sized for `n` replicas, so even the first round does
    /// not allocate mid-vote.
    #[must_use]
    pub fn with_replicas(n: usize) -> Self {
        Self {
            ballots: Vec::with_capacity(n),
            dissenters: Vec::with_capacity(n),
        }
    }

    /// Clears the previous round and returns the ballot buffer for the
    /// replicas to push into.  Capacity is retained across rounds.
    pub fn begin_round(&mut self) -> &mut Vec<Out> {
        self.ballots.clear();
        self.dissenters.clear();
        &mut self.ballots
    }

    /// Pushes one ballot for the current round.  Equivalent to pushing
    /// onto the buffer returned by [`RoundArena::begin_round`]; useful
    /// when ballots arrive interleaved with other work (as in
    /// `afta-net`'s gather loop) and holding the buffer borrow across
    /// the round is inconvenient.
    pub fn push(&mut self, ballot: Out) {
        self.ballots.push(ballot);
    }

    /// The ballots cast this round (replica index → ballot).
    #[must_use]
    pub fn ballots(&self) -> &[Out] {
        &self.ballots
    }

    /// Replica indices that disagreed with the last majority, in replica
    /// order.  Empty after a consensus round *and* after a failed round
    /// (with no majority there is no value to dissent from).
    ///
    /// This is the farm-level input to fault localisation: a replica that
    /// keeps showing up here is the one to rebind (§3.3's raise/lower
    /// decisions act on the count; the set says *who*).
    #[must_use]
    pub fn dissenters(&self) -> &[usize] {
        &self.dissenters
    }
}

impl<Out: Eq + Clone> RoundArena<Out> {
    /// Votes on the ballots pushed since [`RoundArena::begin_round`],
    /// recording the dissenter set as a side effect.
    ///
    /// Outcome-identical to [`majority_vote`] on the same slice.
    pub fn vote(&mut self) -> VoteOutcome<Out> {
        let outcome = majority_vote(&self.ballots);
        self.dissenters.clear();
        if let VoteOutcome::Majority { value, .. } = &outcome {
            self.dissenters.extend(
                self.ballots
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| *b != value)
                    .map(|(i, _)| i),
            );
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trip() {
        let mut arena = RoundArena::with_replicas(3);
        arena.begin_round().extend([7, 7, 9]);
        assert_eq!(
            arena.vote(),
            VoteOutcome::Majority {
                value: 7,
                dissent: 1
            }
        );
        assert_eq!(arena.ballots(), &[7, 7, 9]);
        assert_eq!(arena.dissenters(), &[2]);
    }

    #[test]
    fn dissenters_empty_without_majority() {
        let mut arena = RoundArena::new();
        arena.begin_round().extend([1, 2, 3]);
        assert_eq!(arena.vote(), VoteOutcome::NoMajority);
        assert!(arena.dissenters().is_empty());
    }

    #[test]
    fn buffers_are_reused_across_rounds() {
        let mut arena = RoundArena::with_replicas(4);
        arena.begin_round().extend([1, 1, 1, 2]);
        let _ = arena.vote();
        let cap_before = arena.ballots.capacity();
        for _ in 0..100 {
            arena.begin_round().extend([5, 5, 5, 6]);
            let _ = arena.vote();
            assert_eq!(arena.dissenters(), &[3]);
        }
        assert_eq!(arena.ballots.capacity(), cap_before);
    }

    #[test]
    fn vote_matches_majority_vote_on_many_inputs() {
        // Differential: arena.vote() vs the free function, across every
        // 4-ary ballot pattern for n = 1..=5 replicas.
        let mut arena = RoundArena::new();
        for n in 1usize..=5 {
            for pattern in 0u32..4u32.pow(n as u32) {
                let mut p = pattern;
                let ballots = arena.begin_round();
                for _ in 0..n {
                    ballots.push(p % 4);
                    p /= 4;
                }
                let expected = majority_vote(arena.ballots());
                assert_eq!(arena.vote(), expected, "n={n} pattern={pattern}");
            }
        }
    }
}
