//! Telemetry bindings for voting rounds.
//!
//! [`VoteTelemetry`] pre-resolves the `voting.*` metric handles once and
//! then observes [`RoundReport`]s: every round lands in the
//! `voting.dtof` histogram, failed rounds bump `voting.failures` and are
//! journaled, and rounds whose distance-to-failure dips to the critical
//! band (dtof ≤ 1, the paper's "danger zone" that triggers a redundancy
//! raise) emit an [`TelemetryEvent::DtofDip`] record.

use afta_telemetry::{Counter, FixedHistogram, Registry, TelemetryEvent, Tick};

use crate::RoundReport;

/// Histogram bounds for the `voting.dtof` metric: dtof values 0..=8
/// (n ≤ 16 replicas); larger distances land in the overflow bucket.
pub const DTOF_BOUNDS: [u64; 9] = [0, 1, 2, 3, 4, 5, 6, 7, 8];

/// A dtof at or below this level is journaled as a dip.
pub const DIP_LEVEL: u32 = 1;

/// Pre-resolved `voting.*` metric handles.
#[derive(Debug)]
pub struct VoteTelemetry {
    registry: Registry,
    rounds: Counter,
    failures: Counter,
    dtof: FixedHistogram,
}

impl VoteTelemetry {
    /// Resolves the voting metrics on `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        Self {
            rounds: registry.counter("voting.rounds"),
            failures: registry.counter("voting.failures"),
            dtof: registry.histogram("voting.dtof", &DTOF_BOUNDS),
            registry: registry.clone(),
        }
    }

    /// Observes one round at virtual time `tick`.
    pub fn observe<V>(&self, tick: Tick, report: &RoundReport<V>) {
        self.rounds.inc();
        self.dtof.record(u64::from(report.dtof));
        if !report.succeeded() {
            self.failures.inc();
            self.registry.record(
                tick,
                TelemetryEvent::VoteRound {
                    n: report.n,
                    dissent: report.outcome.dissent(),
                    failed: true,
                },
            );
        } else if report.dtof <= DIP_LEVEL {
            self.registry.record(
                tick,
                TelemetryEvent::DtofDip {
                    n: report.n,
                    dtof: report.dtof,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VotingFarm;

    #[test]
    fn rounds_failures_and_dips_are_observed() {
        let registry = Registry::new();
        let vt = VoteTelemetry::new(&registry);

        // Healthy round: full consensus at n = 5, dtof = 3.
        let mut farm = VotingFarm::new(5, |_: usize, x: &i32| *x);
        vt.observe(Tick(1), &farm.round(&7));

        // Dipping round: 2 dissenters at n = 5, dtof = 1.
        let mut dipping = VotingFarm::new(5, |i: usize, x: &i32| if i < 2 { -1 } else { *x });
        vt.observe(Tick(2), &dipping.round(&7));

        // Failed round: three-way split.
        let mut split = VotingFarm::new(3, |i: usize, _: &()| i);
        vt.observe(Tick(3), &split.round(&()));

        let report = registry.report();
        assert_eq!(report.counter("voting.rounds"), 3);
        assert_eq!(report.counter("voting.failures"), 1);
        let h = report.histogram("voting.dtof").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.bucket_count(3), Some(1));
        assert_eq!(h.bucket_count(1), Some(1));
        assert_eq!(h.bucket_count(0), Some(1));

        let dips: Vec<_> = report.journal_of_kind("dtof-dip").collect();
        assert_eq!(dips.len(), 1);
        assert_eq!(dips[0].event, TelemetryEvent::DtofDip { n: 5, dtof: 1 });
        let failures: Vec<_> = report.journal_of_kind("vote-round").collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].event,
            TelemetryEvent::VoteRound {
                n: 3,
                dissent: None,
                failed: true
            }
        );
    }

    #[test]
    fn disabled_registry_observes_for_free() {
        let vt = VoteTelemetry::new(&Registry::disabled());
        let mut farm = VotingFarm::new(3, |_: usize, x: &i32| *x);
        vt.observe(Tick(0), &farm.round(&1));
    }
}
