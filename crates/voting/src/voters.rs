//! Additional voter flavours beyond strict majority.
//!
//! Johnson's *Design and Analysis of Fault-Tolerant Digital Systems* (the
//! paper's reference for the restoring organ) catalogues several voter
//! designs; the ones most useful alongside the strict-majority voter are
//! implemented here:
//!
//! * [`plurality_vote`] — the most frequent value wins even without an
//!   absolute majority (with a quorum guard);
//! * [`weighted_majority_vote`] — replicas carry reliability weights;
//! * [`median_vote`] — for ordered values, the middle element (immune to
//!   up-to-`(n-1)/2` arbitrarily corrupted extremes).

use std::collections::HashMap;
use std::hash::Hash;

use crate::VoteOutcome;

/// Plurality voting: the most frequent value wins provided it reaches the
/// `quorum` count; ties between distinct values return
/// [`VoteOutcome::NoMajority`] (a tie is indistinguishable from noise).
///
/// # Panics
///
/// Panics if `quorum == 0`.
#[must_use]
pub fn plurality_vote<V: Eq + Hash + Clone>(votes: &[V], quorum: usize) -> VoteOutcome<V> {
    assert!(quorum > 0, "quorum must be positive");
    if votes.is_empty() {
        return VoteOutcome::NoMajority;
    }
    let mut counts: HashMap<&V, usize> = HashMap::new();
    for v in votes {
        *counts.entry(v).or_insert(0) += 1;
    }
    let best_count = *counts.values().max().expect("non-empty");
    if best_count < quorum {
        return VoteOutcome::NoMajority;
    }
    let mut leaders = counts.iter().filter(|&(_, &c)| c == best_count);
    let (leader, _) = leaders.next().expect("at least one leader");
    if leaders.next().is_some() {
        return VoteOutcome::NoMajority; // tie
    }
    VoteOutcome::Majority {
        value: (*leader).clone(),
        dissent: votes.len() - best_count,
    }
}

/// Weighted majority voting: each vote carries a non-negative weight
/// (e.g. a reliability estimate); a value wins when its weight sum
/// strictly exceeds half the total weight.  `dissent` reports the *count*
/// of disagreeing replicas, for dtof compatibility.
///
/// # Panics
///
/// Panics if any weight is negative or NaN.
#[must_use]
pub fn weighted_majority_vote<V: Eq + Hash + Clone>(votes: &[(V, f64)]) -> VoteOutcome<V> {
    if votes.is_empty() {
        return VoteOutcome::NoMajority;
    }
    let mut weights: HashMap<&V, f64> = HashMap::new();
    let mut total = 0.0;
    for (v, w) in votes {
        assert!(w.is_finite() && *w >= 0.0, "weights must be non-negative");
        *weights.entry(v).or_insert(0.0) += w;
        total += w;
    }
    let (best, weight) = weights
        .into_iter()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .expect("non-empty");
    if 2.0 * weight > total {
        let dissent = votes.iter().filter(|(v, _)| v != best).count();
        VoteOutcome::Majority {
            value: best.clone(),
            dissent,
        }
    } else {
        VoteOutcome::NoMajority
    }
}

/// Median voting over ordered values: returns the middle element of the
/// sorted votes.  With `n` replicas and at most `(n-1)/2` corrupted
/// values the median is always produced by a correct replica, even when
/// the corrupted values are arbitrary — which makes this the voter of
/// choice for sensor-style numeric channels.
///
/// `dissent` counts votes different from the median value.
#[must_use]
pub fn median_vote<V: Ord + Clone>(votes: &[V]) -> VoteOutcome<V> {
    if votes.is_empty() {
        return VoteOutcome::NoMajority;
    }
    let mut sorted: Vec<&V> = votes.iter().collect();
    sorted.sort();
    let median = sorted[sorted.len() / 2].clone();
    let dissent = votes.iter().filter(|v| **v != median).count();
    VoteOutcome::Majority {
        value: median,
        dissent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurality_wins_without_absolute_majority() {
        // 2-2-1 split with quorum 2: tie -> no result.
        assert_eq!(plurality_vote(&[1, 1, 2, 2, 3], 2), VoteOutcome::NoMajority);
        // 2-1-1 split: plurality of 2 wins though it is not a majority.
        assert_eq!(
            plurality_vote(&[1, 1, 2, 3], 2),
            VoteOutcome::Majority {
                value: 1,
                dissent: 2
            }
        );
        // Strict-majority voter would reject the same vector.
        assert_eq!(crate::majority_vote(&[1, 1, 2, 3]), VoteOutcome::NoMajority);
    }

    #[test]
    fn plurality_respects_quorum() {
        assert_eq!(plurality_vote(&[1, 2, 3], 2), VoteOutcome::NoMajority);
        assert_eq!(
            plurality_vote(&[1, 2, 3], 1),
            VoteOutcome::NoMajority,
            "three-way tie still fails"
        );
        assert_eq!(
            plurality_vote(&[7], 1),
            VoteOutcome::Majority {
                value: 7,
                dissent: 0
            }
        );
    }

    #[test]
    fn plurality_empty() {
        assert_eq!(plurality_vote::<u8>(&[], 1), VoteOutcome::NoMajority);
    }

    #[test]
    #[should_panic(expected = "quorum must be positive")]
    fn plurality_zero_quorum_rejected() {
        let _ = plurality_vote(&[1], 0);
    }

    #[test]
    fn weighted_reliability_shifts_the_outcome() {
        // Unweighted: 2 vs 1 in count -> value 1 wins.
        // Weighted: the single high-reliability replica outweighs them.
        let votes = [(1u8, 0.2), (1, 0.2), (2, 0.9)];
        assert_eq!(
            weighted_majority_vote(&votes),
            VoteOutcome::Majority {
                value: 2,
                dissent: 2
            }
        );
    }

    #[test]
    fn weighted_no_majority_on_balance() {
        let votes = [(1u8, 1.0), (2, 1.0)];
        assert_eq!(weighted_majority_vote(&votes), VoteOutcome::NoMajority);
        assert_eq!(weighted_majority_vote::<u8>(&[]), VoteOutcome::NoMajority);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_rejects_negative_weights() {
        let _ = weighted_majority_vote(&[(1u8, -1.0)]);
    }

    #[test]
    fn median_ignores_arbitrary_extremes() {
        // Two corrupted channels report absurd values; the median is
        // still a correct reading.
        let out = median_vote(&[100, 101, 99, i32::MAX, i32::MIN]);
        let v = *out.value().unwrap();
        assert!((99..=101).contains(&v));
    }

    #[test]
    fn median_exact_agreement() {
        assert_eq!(
            median_vote(&[5, 5, 5]),
            VoteOutcome::Majority {
                value: 5,
                dissent: 0
            }
        );
        assert_eq!(median_vote::<i32>(&[]), VoteOutcome::NoMajority);
    }

    #[test]
    fn median_single_value() {
        assert_eq!(
            median_vote(&[9]),
            VoteOutcome::Majority {
                value: 9,
                dissent: 0
            }
        );
    }
}
