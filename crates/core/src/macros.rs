//! The `assumptions!` declaration macro.
//!
//! The paper's complaint is that assumptions are "either sifted off or
//! hardwired in the executable code" because expressing them is tedious.
//! [`assumptions!`](crate::assumptions) makes declaring a whole registry
//! as cheap as writing
//! the comment the assumption would otherwise hide in.

/// Declares an [`AssumptionRegistry`](crate::AssumptionRegistry) from a
/// list of assumption blocks.
///
/// Each block requires `id` and `expects`, in that order, followed by any
/// of the optional fields `statement`, `kind`, `criticality`, `binding`,
/// `origin`, `rationale`, `hardwired` — in the order shown below.
/// Evaluates to `Result<AssumptionRegistry, Error>` (duplicate ids are
/// reported, not panicked on).
///
/// ```
/// use afta_core::{assumptions, Expectation};
///
/// let registry = afta_core::assumptions![
///     {
///         id: "hvel-16bit",
///         expects: "horizontal_velocity" => Expectation::int_range(-32768, 32767),
///         statement: "horizontal velocity fits a 16-bit signed integer",
///         kind: PhysicalEnvironment,
///         criticality: Catastrophic,
///         origin: "ariane4/flight-software",
///     },
///     {
///         id: "mem-cmos",
///         expects: "memory_technology" => Expectation::equals("cmos"),
///         binding: CompileTime,
///         hardwired: true,
///     },
/// ]?;
/// assert_eq!(registry.len(), 2);
/// # Ok::<(), afta_core::Error>(())
/// ```
#[macro_export]
macro_rules! assumptions {
    (
        $(
            {
                id: $id:expr,
                expects: $fact:expr => $exp:expr
                $(, statement: $stmt:expr)?
                $(, kind: $kind:ident)?
                $(, criticality: $crit:ident)?
                $(, binding: $bind:ident)?
                $(, origin: $origin:expr)?
                $(, rationale: $rat:expr)?
                $(, hardwired: $hw:expr)?
                $(,)?
            }
        ),* $(,)?
    ) => {{
        let build = || -> ::std::result::Result<$crate::AssumptionRegistry, $crate::Error> {
            let mut registry = $crate::AssumptionRegistry::new();
            $(
                {
                    #[allow(unused_mut)]
                    let mut builder = $crate::Assumption::builder($id).expects($fact, $exp);
                    $( builder = builder.statement($stmt); )?
                    $( builder = builder.kind($crate::AssumptionKind::$kind); )?
                    $( builder = builder.criticality($crate::Criticality::$crit); )?
                    $( builder = builder.binding_time($crate::BindingTime::$bind); )?
                    $( builder = builder.origin($origin); )?
                    $( builder = builder.rationale($rat); )?
                    $(
                        if $hw {
                            builder = builder.hardwired();
                        }
                    )?
                    registry.register(builder.build())?;
                }
            )*
            Ok(registry)
        };
        build()
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn full_blocks_build_everything() {
        let registry = crate::assumptions![
            {
                id: "hvel",
                expects: "hvel" => Expectation::int_range(-32768, 32767),
                statement: "velocity fits i16",
                kind: PhysicalEnvironment,
                criticality: Catastrophic,
                binding: DesignTime,
                origin: "ariane4",
                rationale: "envelope",
                hardwired: false,
            },
        ]
        .unwrap();
        let a = registry.assumption(&"hvel".into()).unwrap();
        assert_eq!(a.kind(), AssumptionKind::PhysicalEnvironment);
        assert_eq!(a.criticality(), Criticality::Catastrophic);
        assert_eq!(a.provenance().origin, "ariane4");
        assert_eq!(a.visibility(), Visibility::Exposed);
    }

    #[test]
    fn minimal_blocks_use_defaults() {
        let registry = crate::assumptions![
            { id: "a", expects: "k" => Expectation::Present },
            { id: "b", expects: "k2" => Expectation::equals(true), hardwired: true },
        ]
        .unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(
            registry.assumption(&"b".into()).unwrap().visibility(),
            Visibility::Hardwired
        );
    }

    #[test]
    fn duplicate_ids_surface_as_errors() {
        let result = crate::assumptions![
            { id: "dup", expects: "k" => Expectation::Present },
            { id: "dup", expects: "k" => Expectation::Present },
        ];
        assert!(matches!(result, Err(crate::Error::DuplicateAssumption(_))));
    }

    #[test]
    fn works_in_function_scope_and_module_scope() {
        // Function scope (this test); module scope is exercised by the
        // doctest on the macro itself.
        fn build() -> crate::AssumptionRegistry {
            crate::assumptions![{ id: "x", expects: "k" => Expectation::Present }].unwrap()
        }
        assert_eq!(build().len(), 1);
    }

    #[test]
    fn registry_behaves_normally_afterwards() {
        let mut registry = crate::assumptions![
            {
                id: "temp",
                expects: "temperature_c" => Expectation::int_range(-10, 40),
            },
        ]
        .unwrap();
        let report = registry.observe(Observation::new("temperature_c", 99i64));
        assert_eq!(report.clashes.len(), 1);
    }
}
