//! The cross-layer knowledge web of §5.
//!
//! The paper envisions "a web of cooperating reactive agents serving
//! different software design concerns (e.g. model-specific,
//! deployment-specific, verification-specific, execution-specific)
//! responding to external stimuli and autonomically adjusting their
//! internal state", such that "a design assumption failure caught by a
//! run-time detector should trigger a request for adaptation at model
//! level, and vice-versa".
//!
//! [`KnowledgeWeb`] is that fabric: [`KnowledgeAgent`]s attached to the
//! development-time layers exchange [`Deduction`]s; publishing one
//! propagates it to every other agent, and any deductions they produce in
//! response are propagated in turn, breadth-first, until quiescence (or a
//! safety cap).

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Observation;

/// A software-development "time stage" hosting knowledge agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Model/design level (MDE tools, UML, contracts).
    Model,
    /// Verification and validation activities.
    Verification,
    /// Compile-time (the §3.1 Autoconf-like stage).
    Compile,
    /// Deployment-time (descriptors, assembly).
    Deployment,
    /// Run-time (detectors, autonomic executives).
    Runtime,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Model => "model",
            Layer::Verification => "verification",
            Layer::Compile => "compile",
            Layer::Deployment => "deployment",
            Layer::Runtime => "runtime",
        };
        write!(f, "{s}")
    }
}

/// A piece of knowledge unraveled in one layer and shared with the others.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deduction {
    /// The agent that produced the deduction.
    pub producer: String,
    /// The layer it originated in.
    pub origin: Layer,
    /// Topic for coarse routing, e.g. `"fault-model"`.
    pub topic: String,
    /// The fact deduced.
    pub observation: Observation,
    /// Free-form explanation.
    pub note: String,
}

impl Deduction {
    /// Creates a deduction.
    pub fn new(
        producer: impl Into<String>,
        origin: Layer,
        topic: impl Into<String>,
        observation: Observation,
        note: impl Into<String>,
    ) -> Self {
        Self {
            producer: producer.into(),
            origin,
            topic: topic.into(),
            observation,
            note: note.into(),
        }
    }
}

impl fmt::Display for Deduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}@{}] {}: {} — {}",
            self.producer, self.origin, self.topic, self.observation, self.note
        )
    }
}

/// A cooperating reactive agent serving one design concern.
pub trait KnowledgeAgent: Send {
    /// The agent's unique name within its web.
    fn name(&self) -> &str;

    /// The layer the agent serves.
    fn layer(&self) -> Layer;

    /// Reacts to a deduction from another agent, possibly producing
    /// follow-on deductions (which the web will propagate).
    fn consider(&mut self, deduction: &Deduction) -> Vec<Deduction>;
}

/// Outcome of a propagation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationOutcome {
    /// Total deductions propagated (the seed plus follow-ons).
    pub propagated: usize,
    /// True if the safety cap cut propagation short.
    pub truncated: bool,
}

/// The web of cooperating agents.
pub struct KnowledgeWeb {
    agents: Vec<Box<dyn KnowledgeAgent>>,
    log: Vec<Deduction>,
    cap: usize,
}

impl fmt::Debug for KnowledgeWeb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.agents.iter().map(|a| a.name()).collect();
        f.debug_struct("KnowledgeWeb")
            .field("agents", &names)
            .field("log", &self.log.len())
            .field("cap", &self.cap)
            .finish()
    }
}

impl Default for KnowledgeWeb {
    fn default() -> Self {
        Self {
            agents: Vec::new(),
            log: Vec::new(),
            cap: 10_000,
        }
    }
}

impl KnowledgeWeb {
    /// Creates an empty web with the default propagation cap (10 000
    /// deductions per publish).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the per-publish propagation cap.  The cap guards against
    /// non-quiescent agent loops (agent A's reaction re-triggering agent B
    /// forever).
    pub fn set_propagation_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// Attaches an agent.
    pub fn attach(&mut self, agent: impl KnowledgeAgent + 'static) {
        self.agents.push(Box::new(agent));
    }

    /// Number of attached agents.
    #[must_use]
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Every deduction ever propagated through the web, oldest first.
    #[must_use]
    pub fn log(&self) -> &[Deduction] {
        &self.log
    }

    /// Deductions on a given topic.
    pub fn on_topic<'a>(&'a self, topic: &'a str) -> impl Iterator<Item = &'a Deduction> + 'a {
        self.log.iter().filter(move |d| d.topic == topic)
    }

    /// Publishes a deduction and propagates it (and all follow-ons) to
    /// quiescence, breadth-first.  A deduction is delivered to every agent
    /// except its own producer.
    pub fn publish(&mut self, seed: Deduction) -> PropagationOutcome {
        let mut queue = VecDeque::new();
        queue.push_back(seed);
        let mut propagated = 0usize;
        let mut truncated = false;

        while let Some(d) = queue.pop_front() {
            if propagated >= self.cap {
                truncated = true;
                break;
            }
            propagated += 1;
            for agent in &mut self.agents {
                if agent.name() == d.producer {
                    continue;
                }
                for follow_on in agent.consider(&d) {
                    queue.push_back(follow_on);
                }
            }
            self.log.push(d);
        }

        PropagationOutcome {
            propagated,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    /// A runtime detector that reports fault classes; on hearing about a
    /// permanent fault it asks the model layer for adaptation.
    struct RuntimeDetector;
    impl KnowledgeAgent for RuntimeDetector {
        fn name(&self) -> &str {
            "runtime-detector"
        }
        fn layer(&self) -> Layer {
            Layer::Runtime
        }
        fn consider(&mut self, _d: &Deduction) -> Vec<Deduction> {
            Vec::new()
        }
    }

    /// A model-layer agent that reacts to fault-model news by recording an
    /// adaptation request (the §5 example flow).
    struct ModelAgent {
        adaptation_requests: usize,
    }
    impl KnowledgeAgent for ModelAgent {
        fn name(&self) -> &str {
            "model-agent"
        }
        fn layer(&self) -> Layer {
            Layer::Model
        }
        fn consider(&mut self, d: &Deduction) -> Vec<Deduction> {
            if d.topic == "fault-model" {
                self.adaptation_requests += 1;
                vec![Deduction::new(
                    "model-agent",
                    Layer::Model,
                    "adaptation-request",
                    Observation::new("pattern", "reconfiguration"),
                    "fault model changed; requesting pattern rebinding",
                )]
            } else {
                Vec::new()
            }
        }
    }

    fn fault_news() -> Deduction {
        Deduction::new(
            "runtime-detector",
            Layer::Runtime,
            "fault-model",
            Observation::new("fault_class", "permanent"),
            "alpha-count crossed threshold",
        )
    }

    #[test]
    fn publish_reaches_other_layers_and_propagates_follow_ons() {
        let mut web = KnowledgeWeb::new();
        web.attach(RuntimeDetector);
        web.attach(ModelAgent {
            adaptation_requests: 0,
        });
        let out = web.publish(fault_news());
        assert_eq!(out.propagated, 2); // seed + model agent's follow-on
        assert!(!out.truncated);
        assert_eq!(web.log().len(), 2);
        assert_eq!(web.on_topic("adaptation-request").count(), 1);
        assert_eq!(web.on_topic("fault-model").count(), 1);
    }

    #[test]
    fn producer_does_not_hear_itself() {
        // An agent that would echo forever if it heard its own deductions.
        struct Echo;
        impl KnowledgeAgent for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn layer(&self) -> Layer {
                Layer::Deployment
            }
            fn consider(&mut self, d: &Deduction) -> Vec<Deduction> {
                vec![Deduction::new(
                    "echo",
                    Layer::Deployment,
                    d.topic.clone(),
                    d.observation.clone(),
                    "echoed",
                )]
            }
        }
        let mut web = KnowledgeWeb::new();
        web.attach(Echo);
        let out = web.publish(fault_news());
        // seed delivered to echo -> echo emits one -> echo skips itself -> done
        assert_eq!(out.propagated, 2);
        assert!(!out.truncated);
    }

    #[test]
    fn cap_stops_nonquiescent_loops() {
        struct PingPong(&'static str);
        impl KnowledgeAgent for PingPong {
            fn name(&self) -> &str {
                self.0
            }
            fn layer(&self) -> Layer {
                Layer::Runtime
            }
            fn consider(&mut self, d: &Deduction) -> Vec<Deduction> {
                vec![Deduction::new(
                    self.0,
                    Layer::Runtime,
                    d.topic.clone(),
                    d.observation.clone(),
                    "ping",
                )]
            }
        }
        let mut web = KnowledgeWeb::new();
        web.set_propagation_cap(50);
        web.attach(PingPong("a"));
        web.attach(PingPong("b"));
        let out = web.publish(fault_news());
        assert!(out.truncated);
        assert_eq!(out.propagated, 50);
    }

    #[test]
    fn empty_web_logs_seed_only() {
        let mut web = KnowledgeWeb::new();
        assert_eq!(web.agent_count(), 0);
        let out = web.publish(fault_news());
        assert_eq!(out.propagated, 1);
        assert_eq!(web.log().len(), 1);
    }

    #[test]
    fn layer_and_deduction_display() {
        assert_eq!(Layer::Runtime.to_string(), "runtime");
        assert_eq!(Layer::Compile.to_string(), "compile");
        let d = fault_news();
        let s = d.to_string();
        assert!(s.contains("runtime-detector"));
        assert!(s.contains("fault-model"));
    }

    #[test]
    fn deduction_serde_roundtrip() {
        let d = fault_news();
        let json = serde_json::to_string(&d).unwrap();
        let back: Deduction = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.observation.value, Value::Text("permanent".into()));
    }

    #[test]
    fn web_debug_lists_agents() {
        let mut web = KnowledgeWeb::new();
        web.attach(RuntimeDetector);
        assert!(format!("{web:?}").contains("runtime-detector"));
    }
}
