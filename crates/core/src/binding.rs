//! Assumption variables with postponed binding.
//!
//! The paper's "key idea" (§6) is "to provide the designer with the ability
//! to formulate dynamic assumptions (assumption variables) whose boundings
//! get postponed at a later, more appropriate, time".  [`AssumptionVar`]
//! is that construct: a set of design-time [`Alternative`]s plus a
//! [`Binder`] strategy that picks one when the truth of the context is
//! finally known.
//!
//! [`MinCostBinder`] implements the §3.1 selection algorithm verbatim:
//! "first we isolate those methods that are able to tolerate **f**, then we
//! arrange them into a list ordered according to some cost function;
//! finally we select the minimum element of that list."

use std::fmt;

use crate::assumption::{AssumptionId, BindingTime};

/// One design-time alternative for an assumption variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Alternative<T> {
    /// Short label, e.g. `"M3"`.
    pub label: String,
    /// The artefact selected when this alternative is bound (a memory
    /// access method, a design-pattern snapshot, a replica count, ...).
    pub payload: T,
    /// Context behaviours this alternative tolerates, e.g. `["f0","f1"]`.
    pub tolerates: Vec<String>,
    /// Cost under the designer's cost function ("e.g. proportional to the
    /// expenditure of resources").  Lower is better.
    pub cost: f64,
}

impl<T> Alternative<T> {
    /// Creates an alternative.
    pub fn new(
        label: impl Into<String>,
        payload: T,
        tolerates: impl IntoIterator<Item = impl Into<String>>,
        cost: f64,
    ) -> Self {
        Self {
            label: label.into(),
            payload,
            tolerates: tolerates.into_iter().map(Into::into).collect(),
            cost,
        }
    }

    /// Whether this alternative tolerates the named context behaviour.
    #[must_use]
    pub fn tolerates(&self, behavior: &str) -> bool {
        self.tolerates.iter().any(|t| t == behavior)
    }
}

/// Errors arising from (re)binding an assumption variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingError {
    /// The variable has no alternatives at all.
    NoAlternatives,
    /// No alternative tolerates the observed behaviour: a guaranteed
    /// assumption failure, surfaced *before* deployment instead of after.
    NoneTolerates(String),
    /// The variable has not been bound yet.
    NotBound,
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::NoAlternatives => write!(f, "assumption variable has no alternatives"),
            BindingError::NoneTolerates(b) => {
                write!(f, "no alternative tolerates observed behavior {b:?}")
            }
            BindingError::NotBound => write!(f, "assumption variable is not bound yet"),
        }
    }
}

impl std::error::Error for BindingError {}

/// A binding strategy: picks one alternative given the observed context
/// behaviour.
pub trait Binder<T> {
    /// Returns the index of the alternative to bind.
    ///
    /// # Errors
    ///
    /// Implementations return [`BindingError::NoAlternatives`] or
    /// [`BindingError::NoneTolerates`] when no choice is possible.
    fn select(
        &self,
        observed_behavior: &str,
        alternatives: &[Alternative<T>],
    ) -> Result<usize, BindingError>;
}

/// The §3.1 binder: among the alternatives tolerating the observed
/// behaviour, pick the one with minimal cost (first declared wins ties).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinCostBinder;

impl<T> Binder<T> for MinCostBinder {
    fn select(
        &self,
        observed_behavior: &str,
        alternatives: &[Alternative<T>],
    ) -> Result<usize, BindingError> {
        if alternatives.is_empty() {
            return Err(BindingError::NoAlternatives);
        }
        alternatives
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tolerates(observed_behavior))
            .min_by(|(_, a), (_, b)| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .ok_or_else(|| BindingError::NoneTolerates(observed_behavior.to_owned()))
    }
}

/// One entry in the rebinding audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct BindingRecord {
    /// Index of the alternative bound.
    pub index: usize,
    /// Label of the alternative bound.
    pub label: String,
    /// The observed behaviour that triggered the binding.
    pub observed_behavior: String,
}

/// An assumption variable: alternatives declared at design time, bound at
/// [`BindingTime`] `binding_time`, rebindable thereafter.
///
/// ```
/// use afta_core::{Alternative, AssumptionVar, BindingTime, MinCostBinder};
///
/// let mut var = AssumptionVar::new("mem-method", BindingTime::CompileTime)
///     .with(Alternative::new("M0", "raw", ["f0"], 1.0))
///     .with(Alternative::new("M1", "retry", ["f0", "f1"], 2.0))
///     .with(Alternative::new("M4", "ecc+rep", ["f0", "f1", "f3", "f4"], 8.0));
///
/// // The deployment machine turns out to have SDRAM with SEL+SEU (f4):
/// let chosen = var.bind("f4", &MinCostBinder)?;
/// assert_eq!(*chosen, "ecc+rep");
/// assert_eq!(var.bound_label(), Some("M4"));
/// # Ok::<(), afta_core::BindingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AssumptionVar<T> {
    id: AssumptionId,
    binding_time: BindingTime,
    alternatives: Vec<Alternative<T>>,
    bound: Option<usize>,
    history: Vec<BindingRecord>,
}

impl<T> AssumptionVar<T> {
    /// Creates an unbound variable.
    pub fn new(id: impl Into<AssumptionId>, binding_time: BindingTime) -> Self {
        Self {
            id: id.into(),
            binding_time,
            alternatives: Vec::new(),
            bound: None,
            history: Vec::new(),
        }
    }

    /// Adds an alternative (builder style).
    #[must_use]
    pub fn with(mut self, alt: Alternative<T>) -> Self {
        self.alternatives.push(alt);
        self
    }

    /// Adds an alternative in place.
    pub fn push(&mut self, alt: Alternative<T>) {
        self.alternatives.push(alt);
    }

    /// The variable's id.
    #[must_use]
    pub fn id(&self) -> &AssumptionId {
        &self.id
    }

    /// The stage this variable is meant to be bound at.
    #[must_use]
    pub fn binding_time(&self) -> BindingTime {
        self.binding_time
    }

    /// The declared alternatives.
    #[must_use]
    pub fn alternatives(&self) -> &[Alternative<T>] {
        &self.alternatives
    }

    /// Binds (or rebinds) the variable for the observed behaviour using
    /// `binder`, returning the selected payload.
    ///
    /// # Errors
    ///
    /// Propagates the binder's [`BindingError`].
    pub fn bind<B: Binder<T>>(
        &mut self,
        observed_behavior: &str,
        binder: &B,
    ) -> Result<&T, BindingError> {
        let idx = binder.select(observed_behavior, &self.alternatives)?;
        self.bound = Some(idx);
        self.history.push(BindingRecord {
            index: idx,
            label: self.alternatives[idx].label.clone(),
            observed_behavior: observed_behavior.to_owned(),
        });
        Ok(&self.alternatives[idx].payload)
    }

    /// The currently bound payload.
    ///
    /// # Errors
    ///
    /// Returns [`BindingError::NotBound`] before the first successful bind.
    pub fn value(&self) -> Result<&T, BindingError> {
        self.bound
            .map(|i| &self.alternatives[i].payload)
            .ok_or(BindingError::NotBound)
    }

    /// Label of the currently bound alternative, if bound.
    #[must_use]
    pub fn bound_label(&self) -> Option<&str> {
        self.bound.map(|i| self.alternatives[i].label.as_str())
    }

    /// The full rebinding audit trail, oldest first.
    #[must_use]
    pub fn history(&self) -> &[BindingRecord] {
        &self.history
    }

    /// Number of times the variable has been (re)bound.
    #[must_use]
    pub fn rebind_count(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var() -> AssumptionVar<&'static str> {
        AssumptionVar::new("mem", BindingTime::CompileTime)
            .with(Alternative::new("M0", "raw", ["f0"], 1.0))
            .with(Alternative::new("M1", "retry", ["f0", "f1"], 2.0))
            .with(Alternative::new("M2", "remap", ["f0", "f2"], 3.0))
            .with(Alternative::new("M3", "rep", ["f0", "f1", "f3"], 5.0))
            .with(Alternative::new("M4", "ecc", ["f0", "f1", "f3", "f4"], 8.0))
    }

    #[test]
    fn min_cost_picks_cheapest_tolerant() {
        let mut v = var();
        assert_eq!(*v.bind("f0", &MinCostBinder).unwrap(), "raw");
        assert_eq!(*v.bind("f1", &MinCostBinder).unwrap(), "retry");
        assert_eq!(*v.bind("f2", &MinCostBinder).unwrap(), "remap");
        assert_eq!(*v.bind("f3", &MinCostBinder).unwrap(), "rep");
        assert_eq!(*v.bind("f4", &MinCostBinder).unwrap(), "ecc");
        assert_eq!(v.rebind_count(), 5);
    }

    #[test]
    fn min_cost_ties_go_to_first_declared() {
        let mut v = AssumptionVar::new("x", BindingTime::RunTime)
            .with(Alternative::new("A", 1, ["b"], 2.0))
            .with(Alternative::new("B", 2, ["b"], 2.0));
        v.bind("b", &MinCostBinder).unwrap();
        assert_eq!(v.bound_label(), Some("A"));
    }

    #[test]
    fn unknown_behavior_is_surfaced() {
        let mut v = var();
        assert_eq!(
            v.bind("f9", &MinCostBinder).unwrap_err(),
            BindingError::NoneTolerates("f9".into())
        );
        // A failed bind leaves the previous binding intact.
        assert_eq!(v.value().unwrap_err(), BindingError::NotBound);
    }

    #[test]
    fn empty_variable_errors() {
        let mut v: AssumptionVar<u8> = AssumptionVar::new("e", BindingTime::DeploymentTime);
        assert_eq!(
            v.bind("anything", &MinCostBinder).unwrap_err(),
            BindingError::NoAlternatives
        );
    }

    #[test]
    fn value_before_bind_is_not_bound() {
        let v = var();
        assert_eq!(v.value().unwrap_err(), BindingError::NotBound);
        assert_eq!(v.bound_label(), None);
    }

    #[test]
    fn history_records_rebindings() {
        let mut v = var();
        v.bind("f1", &MinCostBinder).unwrap();
        v.bind("f4", &MinCostBinder).unwrap();
        let labels: Vec<&str> = v.history().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["M1", "M4"]);
        assert_eq!(v.history()[0].observed_behavior, "f1");
        assert_eq!(v.history()[1].index, 4);
    }

    #[test]
    fn push_adds_alternative() {
        let mut v: AssumptionVar<u8> = AssumptionVar::new("p", BindingTime::RunTime);
        v.push(Alternative::new("A", 7, ["x"], 1.0));
        assert_eq!(v.alternatives().len(), 1);
        assert_eq!(*v.bind("x", &MinCostBinder).unwrap(), 7);
    }

    #[test]
    fn accessors() {
        let v = var();
        assert_eq!(v.id().as_str(), "mem");
        assert_eq!(v.binding_time(), BindingTime::CompileTime);
        assert!(v.alternatives()[0].tolerates("f0"));
        assert!(!v.alternatives()[0].tolerates("f4"));
    }

    #[test]
    fn error_displays() {
        assert!(BindingError::NoAlternatives.to_string().contains("no"));
        assert!(BindingError::NoneTolerates("f7".into())
            .to_string()
            .contains("f7"));
        assert!(BindingError::NotBound.to_string().contains("not bound"));
    }

    #[test]
    fn custom_binder_is_usable() {
        // A binder that always picks the most expensive tolerant option
        // (e.g. a safety-first policy).
        struct MaxCost;
        impl<T> Binder<T> for MaxCost {
            fn select(
                &self,
                behavior: &str,
                alts: &[Alternative<T>],
            ) -> Result<usize, BindingError> {
                alts.iter()
                    .enumerate()
                    .filter(|(_, a)| a.tolerates(behavior))
                    .max_by(|(_, a), (_, b)| a.cost.partial_cmp(&b.cost).unwrap())
                    .map(|(i, _)| i)
                    .ok_or_else(|| BindingError::NoneTolerates(behavior.into()))
            }
        }
        let mut v = var();
        v.bind("f1", &MaxCost).unwrap();
        assert_eq!(v.bound_label(), Some("M4")); // M4 tolerates f1 at cost 8
    }
}
