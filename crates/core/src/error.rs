//! Error type for the core framework.

use std::fmt;

use crate::assumption::AssumptionId;

/// Errors returned by the core assumption framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An assumption with the same id is already registered.
    DuplicateAssumption(AssumptionId),
    /// No assumption with this id is registered.
    UnknownAssumption(AssumptionId),
    /// An adaptation handler is already attached to this assumption.
    HandlerAlreadyAttached(AssumptionId),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateAssumption(id) => {
                write!(f, "assumption {id:?} is already registered")
            }
            Error::UnknownAssumption(id) => write!(f, "unknown assumption {id:?}"),
            Error::HandlerAlreadyAttached(id) => {
                write!(f, "an adaptation handler is already attached to {id:?}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let id = AssumptionId::new("x");
        assert!(Error::DuplicateAssumption(id.clone())
            .to_string()
            .contains("already registered"));
        assert!(Error::UnknownAssumption(id.clone())
            .to_string()
            .contains("unknown"));
        assert!(Error::HandlerAlreadyAttached(id)
            .to_string()
            .contains("handler"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
