//! Context facts, observed values, and the expectations assumptions place
//! on them.
//!
//! The paper formalises an assumption failure as a clash between an
//! assumption *f* ("horizontal velocity can be represented by a short
//! integer") and the bold-face truth **f** ("horizontal velocity is now
//! *n*", with *n* out of range).  [`Value`] is the truth side,
//! [`Expectation`] is the assumption side, and [`Expectation::admits`]
//! decides whether they clash.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed context value: the current truth of a fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A boolean fact, e.g. "ECC is present".
    Bool(bool),
    /// An integer fact, e.g. a velocity or a replica count.
    Int(i64),
    /// A floating-point fact, e.g. a failure rate.
    Float(f64),
    /// A textual fact, e.g. a memory technology name.
    Text(String),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened to floats.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the text payload, if this is a [`Value::Text`].
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// What an assumption expects of a context fact.
///
/// ```
/// use afta_core::{Expectation, Value};
/// let e = Expectation::int_range(-32768, 32767);
/// assert!(e.admits(&Value::Int(1000)));
/// assert!(!e.admits(&Value::Int(40_000)));   // the Ariane-5 clash
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expectation {
    /// The fact must equal this value exactly.
    Equals(Value),
    /// The fact must differ from this value.
    NotEquals(Value),
    /// An integer fact must lie in `[min, max]` (inclusive).
    IntRange {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// A numeric fact must lie in `[min, max]` (inclusive).
    FloatRange {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The fact must be one of the listed values.
    OneOf(Vec<Value>),
    /// The fact must be a numeric value at most `max`.
    AtMost(f64),
    /// The fact must be a numeric value at least `min`.
    AtLeast(f64),
    /// The fact must merely be *known* (present), whatever its value.
    Present,
    /// Every sub-expectation must admit the value (conjunction).
    AllOf(Vec<Expectation>),
    /// At least one sub-expectation must admit the value (disjunction).
    AnyOf(Vec<Expectation>),
    /// The sub-expectation must reject the value (negation).
    Not(Box<Expectation>),
}

impl Expectation {
    /// Shorthand for [`Expectation::IntRange`].
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn int_range(min: i64, max: i64) -> Self {
        assert!(min <= max, "int_range requires min <= max");
        Expectation::IntRange { min, max }
    }

    /// Shorthand for [`Expectation::FloatRange`].
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is NaN.
    #[must_use]
    pub fn float_range(min: f64, max: f64) -> Self {
        assert!(!min.is_nan() && !max.is_nan(), "bounds must not be NaN");
        assert!(min <= max, "float_range requires min <= max");
        Expectation::FloatRange { min, max }
    }

    /// Shorthand for [`Expectation::Equals`].
    pub fn equals(v: impl Into<Value>) -> Self {
        Expectation::Equals(v.into())
    }

    /// Does the observed value satisfy this expectation?
    ///
    /// A type mismatch (e.g. expecting an int range but observing text) is
    /// treated as *not admitted*: an assumption about a fact of the wrong
    /// shape is exactly the kind of latent clash the framework must flag.
    #[must_use]
    pub fn admits(&self, observed: &Value) -> bool {
        match self {
            Expectation::Equals(v) => observed == v,
            Expectation::NotEquals(v) => observed != v,
            Expectation::IntRange { min, max } => {
                observed.as_int().is_some_and(|i| i >= *min && i <= *max)
            }
            Expectation::FloatRange { min, max } => {
                observed.as_float().is_some_and(|f| f >= *min && f <= *max)
            }
            Expectation::OneOf(vs) => vs.contains(observed),
            Expectation::AtMost(max) => observed.as_float().is_some_and(|f| f <= *max),
            Expectation::AtLeast(min) => observed.as_float().is_some_and(|f| f >= *min),
            Expectation::Present => true,
            Expectation::AllOf(es) => es.iter().all(|e| e.admits(observed)),
            Expectation::AnyOf(es) => es.iter().any(|e| e.admits(observed)),
            Expectation::Not(e) => !e.admits(observed),
        }
    }

    /// Conjunction of `self` and `other`.
    #[must_use]
    pub fn and(self, other: Expectation) -> Self {
        match self {
            Expectation::AllOf(mut es) => {
                es.push(other);
                Expectation::AllOf(es)
            }
            first => Expectation::AllOf(vec![first, other]),
        }
    }

    /// Disjunction of `self` and `other`.
    #[must_use]
    pub fn or(self, other: Expectation) -> Self {
        match self {
            Expectation::AnyOf(mut es) => {
                es.push(other);
                Expectation::AnyOf(es)
            }
            first => Expectation::AnyOf(vec![first, other]),
        }
    }

    /// Negation of `self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expectation::Not(Box::new(self))
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expectation::Equals(v) => write!(f, "= {v}"),
            Expectation::NotEquals(v) => write!(f, "!= {v}"),
            Expectation::IntRange { min, max } => write!(f, "in [{min}, {max}]"),
            Expectation::FloatRange { min, max } => write!(f, "in [{min}, {max}]"),
            Expectation::OneOf(vs) => {
                write!(f, "one of {{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Expectation::AtMost(x) => write!(f, "<= {x}"),
            Expectation::AtLeast(x) => write!(f, ">= {x}"),
            Expectation::Present => write!(f, "present"),
            Expectation::AllOf(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expectation::AnyOf(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expectation::Not(e) => write!(f, "not {e}"),
        }
    }
}

/// A single observed context fact: key plus current truth.
///
/// Observations are produced by [`crate::probe::ContextProbe`]s (endogenous
/// knowledge) or fed in directly by the embedding system (exogenous
/// knowledge) and consumed by
/// [`AssumptionRegistry::observe`](crate::registry::AssumptionRegistry::observe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The fact key, e.g. `"horizontal_velocity"`.
    pub key: String,
    /// The observed truth.
    pub value: Value,
}

impl Observation {
    /// Creates an observation for fact `key` with value `value`.
    pub fn new(key: impl Into<String>, value: impl Into<Value>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.key, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Int(1).as_text(), None);
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
    }

    #[test]
    fn int_range_admits() {
        let e = Expectation::int_range(-32768, 32767);
        assert!(e.admits(&Value::Int(-32768)));
        assert!(e.admits(&Value::Int(32767)));
        assert!(!e.admits(&Value::Int(32768)));
        assert!(!e.admits(&Value::Int(-32769)));
        // Type mismatch is a clash.
        assert!(!e.admits(&Value::Text("fast".into())));
        assert!(!e.admits(&Value::Float(0.0)));
    }

    #[test]
    fn float_range_widens_ints() {
        let e = Expectation::float_range(0.0, 1.0);
        assert!(e.admits(&Value::Int(0)));
        assert!(e.admits(&Value::Int(1)));
        assert!(e.admits(&Value::Float(0.5)));
        assert!(!e.admits(&Value::Int(2)));
        assert!(!e.admits(&Value::Float(f64::NAN)));
    }

    #[test]
    fn equals_and_not_equals() {
        assert!(Expectation::equals("sdram").admits(&Value::Text("sdram".into())));
        assert!(!Expectation::equals("sdram").admits(&Value::Text("cmos".into())));
        assert!(Expectation::NotEquals(Value::Bool(false)).admits(&Value::Bool(true)));
        assert!(!Expectation::NotEquals(Value::Bool(false)).admits(&Value::Bool(false)));
    }

    #[test]
    fn one_of() {
        let e = Expectation::OneOf(vec![Value::Int(3), Value::Int(5)]);
        assert!(e.admits(&Value::Int(3)));
        assert!(!e.admits(&Value::Int(4)));
    }

    #[test]
    fn at_most_at_least() {
        assert!(Expectation::AtMost(3.0).admits(&Value::Int(3)));
        assert!(!Expectation::AtMost(3.0).admits(&Value::Float(3.1)));
        assert!(Expectation::AtLeast(3.0).admits(&Value::Float(3.0)));
        assert!(!Expectation::AtLeast(3.0).admits(&Value::Int(2)));
        // Non-numeric values never satisfy numeric expectations.
        assert!(!Expectation::AtMost(3.0).admits(&Value::Text("x".into())));
    }

    #[test]
    fn combinators_compose() {
        // "In the Ariane-4 envelope OR flagged as wide-range mode."
        let e = Expectation::int_range(-32768, 32767).or(Expectation::equals("wide-range"));
        assert!(e.admits(&Value::Int(100)));
        assert!(e.admits(&Value::Text("wide-range".into())));
        assert!(!e.admits(&Value::Int(40_000)));

        // Conjunction narrows: in [0, 100] AND not 13.
        let e = Expectation::int_range(0, 100).and(Expectation::equals(13i64).not());
        assert!(e.admits(&Value::Int(12)));
        assert!(!e.admits(&Value::Int(13)));
        assert!(!e.admits(&Value::Int(101)));

        // Chaining keeps flattening into the same conjunction.
        let e = Expectation::AtLeast(0.0)
            .and(Expectation::AtMost(10.0))
            .and(Expectation::equals(5i64).not());
        assert!(matches!(&e, Expectation::AllOf(es) if es.len() == 3));
        assert!(e.admits(&Value::Int(4)));
        assert!(!e.admits(&Value::Int(5)));

        let e = Expectation::equals(1i64)
            .or(Expectation::equals(2i64))
            .or(Expectation::equals(3i64));
        assert!(matches!(&e, Expectation::AnyOf(es) if es.len() == 3));
        assert!(e.admits(&Value::Int(3)));
        assert!(!e.admits(&Value::Int(4)));
    }

    #[test]
    fn combinator_displays() {
        let e = Expectation::int_range(0, 9).and(Expectation::Present);
        assert_eq!(e.to_string(), "(in [0, 9] and present)");
        let e = Expectation::equals(1i64).or(Expectation::equals(2i64));
        assert_eq!(e.to_string(), "(= 1 or = 2)");
        assert_eq!(Expectation::Present.not().to_string(), "not present");
    }

    #[test]
    fn combinators_roundtrip_serde() {
        let e = Expectation::int_range(0, 9)
            .and(Expectation::equals(5i64).not())
            .or(Expectation::equals("special"));
        let json = serde_json::to_string(&e).unwrap();
        let back: Expectation = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn present_admits_anything() {
        assert!(Expectation::Present.admits(&Value::Bool(false)));
        assert!(Expectation::Present.admits(&Value::Text("whatever".into())));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn int_range_validates_bounds() {
        let _ = Expectation::int_range(5, 4);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn float_range_rejects_nan() {
        let _ = Expectation::float_range(f64::NAN, 1.0);
    }

    #[test]
    fn displays() {
        assert_eq!(Expectation::int_range(0, 9).to_string(), "in [0, 9]");
        assert_eq!(Expectation::equals(true).to_string(), "= true");
        assert_eq!(
            Expectation::OneOf(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "one of {1, 2}"
        );
        assert_eq!(Observation::new("k", 3i64).to_string(), "k = 3");
        assert_eq!(Value::Text("a".into()).to_string(), "\"a\"");
    }

    #[test]
    fn observation_roundtrips_serde() {
        let o = Observation::new("horizontal_velocity", 40_000i64);
        let json = serde_json::to_string(&o).unwrap();
        let back: Observation = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
