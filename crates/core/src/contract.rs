//! Design-by-Contract, wired to assumptions.
//!
//! §4 of the paper credits Design by Contract with forcing the designer
//! "to consider explicitly the mutual dependencies and assumptions among
//! correlated software components".  This module provides a small DbC
//! engine whose pre-/post-conditions and invariants *name the assumptions
//! they rest on*, so that a contract violation immediately implicates the
//! assumptions to re-examine — the cross-layer feedback loop of §5.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assumption::{AssumptionId, BindingTime};

/// Which clause of a contract was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A client obligation did not hold on entry.
    Precondition,
    /// A supplier benefit did not hold on exit.
    Postcondition,
    /// A stable property did not hold at a check boundary.
    Invariant,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Precondition => write!(f, "precondition"),
            ViolationKind::Postcondition => write!(f, "postcondition"),
            ViolationKind::Invariant => write!(f, "invariant"),
        }
    }
}

/// A contract violation, implicating the assumptions the failed condition
/// rested on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractViolation {
    /// Which clause failed.
    pub kind: ViolationKind,
    /// The name of the failed condition.
    pub condition: String,
    /// Assumptions the condition declared itself dependent on; these are
    /// the hypotheses to re-verify when diagnosing the failure.
    pub implicated: Vec<AssumptionId>,
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?} violated", self.kind, self.condition)?;
        if !self.implicated.is_empty() {
            write!(f, " (implicates assumptions:")?;
            for id in &self.implicated {
                write!(f, " {id}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl std::error::Error for ContractViolation {}

/// A named predicate over a state `S`, annotated with the assumptions it
/// rests on.
pub struct Condition<S: ?Sized> {
    name: String,
    assumes: Vec<AssumptionId>,
    binding: Option<BindingTime>,
    check: Box<dyn Fn(&S) -> bool + Send + Sync>,
}

impl<S: ?Sized> fmt::Debug for Condition<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condition")
            .field("name", &self.name)
            .field("assumes", &self.assumes)
            .finish_non_exhaustive()
    }
}

impl<S: ?Sized> Condition<S> {
    /// Creates a condition.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            assumes: Vec::new(),
            binding: None,
            check: Box::new(check),
        }
    }

    /// Declares that this condition rests on the given assumption.
    #[must_use]
    pub fn assuming(mut self, id: impl Into<AssumptionId>) -> Self {
        self.assumes.push(id.into());
        self
    }

    /// Declares when the condition's logic was fixed.  A consumer bound
    /// at compile time cannot adapt to a value bound later — the static
    /// analyzer uses this to catch binding-time inversions.
    #[must_use]
    pub fn bound_at(mut self, binding: BindingTime) -> Self {
        self.binding = Some(binding);
        self
    }

    /// When the condition's logic was fixed, if declared.
    #[must_use]
    pub fn binding(&self) -> Option<BindingTime> {
        self.binding
    }

    /// The condition's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assumptions this condition declared itself dependent on.
    #[must_use]
    pub fn assumes(&self) -> &[AssumptionId] {
        &self.assumes
    }

    /// Evaluates the condition on `state`.
    #[must_use]
    pub fn holds(&self, state: &S) -> bool {
        (self.check)(state)
    }

    fn violation(&self, kind: ViolationKind) -> ContractViolation {
        ContractViolation {
            kind,
            condition: self.name.clone(),
            implicated: self.assumes.clone(),
        }
    }
}

/// A contract over operations on state `S`: preconditions, postconditions,
/// invariants.
///
/// ```
/// use afta_core::contract::Contract;
///
/// // The Therac-25 contract the hardware used to enforce:
/// let contract = Contract::<i32>::builder()
///     .invariant("beam energy within safe bounds", |&e| (0..=100).contains(&e))
///     .pre("machine not in fault state", |&e| e >= 0)
///     .build();
///
/// assert!(contract.check_entry(&50).is_ok());
/// let violation = contract.check_entry(&1_000).unwrap_err();
/// assert_eq!(violation.condition, "beam energy within safe bounds");
/// ```
pub struct Contract<S: ?Sized> {
    pre: Vec<Condition<S>>,
    post: Vec<Condition<S>>,
    invariants: Vec<Condition<S>>,
}

impl<S: ?Sized> fmt::Debug for Contract<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Contract")
            .field("pre", &self.pre.len())
            .field("post", &self.post.len())
            .field("invariants", &self.invariants.len())
            .finish()
    }
}

impl<S: ?Sized> Default for Contract<S> {
    fn default() -> Self {
        Self {
            pre: Vec::new(),
            post: Vec::new(),
            invariants: Vec::new(),
        }
    }
}

impl<S: ?Sized> Contract<S> {
    /// Starts building a contract.
    #[must_use]
    pub fn builder() -> ContractBuilder<S> {
        ContractBuilder {
            contract: Contract::default(),
        }
    }

    /// Checks invariants then preconditions (entry protocol).
    ///
    /// # Errors
    ///
    /// Returns the first [`ContractViolation`] found.
    pub fn check_entry(&self, state: &S) -> Result<(), ContractViolation> {
        for c in &self.invariants {
            if !c.holds(state) {
                return Err(c.violation(ViolationKind::Invariant));
            }
        }
        for c in &self.pre {
            if !c.holds(state) {
                return Err(c.violation(ViolationKind::Precondition));
            }
        }
        Ok(())
    }

    /// Checks postconditions then invariants (exit protocol).
    ///
    /// # Errors
    ///
    /// Returns the first [`ContractViolation`] found.
    pub fn check_exit(&self, state: &S) -> Result<(), ContractViolation> {
        for c in &self.post {
            if !c.holds(state) {
                return Err(c.violation(ViolationKind::Postcondition));
            }
        }
        for c in &self.invariants {
            if !c.holds(state) {
                return Err(c.violation(ViolationKind::Invariant));
            }
        }
        Ok(())
    }

    /// Runs `op` under the contract: entry checks, the operation, exit
    /// checks.
    ///
    /// # Errors
    ///
    /// Returns the first violation encountered; the operation does not run
    /// if entry checks fail.
    pub fn execute<R>(
        &self,
        state: &mut S,
        op: impl FnOnce(&mut S) -> R,
    ) -> Result<R, ContractViolation>
    where
        S: Sized,
    {
        self.check_entry(state)?;
        let r = op(state);
        self.check_exit(state)?;
        Ok(r)
    }

    /// Number of conditions across all clauses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pre.len() + self.post.len() + self.invariants.len()
    }

    /// True when the contract has no conditions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A serialisable description of one contract clause: its protocol slot,
/// its name, and the assumptions it declared itself dependent on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClauseDescriptor {
    /// Which protocol slot the clause occupies.
    pub kind: ViolationKind,
    /// The clause's name.
    pub name: String,
    /// Assumptions the clause rests on (empty = unstated hypotheses).
    pub assumes: Vec<AssumptionId>,
    /// When the clause's logic was fixed, if the designer declared it.
    pub binding: Option<BindingTime>,
}

/// A serialisable description of a [`Contract`]: the §4 "exposed
/// knowledge" view of it.  Check predicates are code and do not
/// serialise; everything inspectable — clause names and the assumption
/// web they hang on — does, so deployment-time tools (e.g. `afta-lint`)
/// can reason over contracts without executing them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ContractDescriptor {
    /// A name for the contract (e.g. the operation or component it guards).
    pub name: String,
    /// Every clause, in protocol order: invariants, pre, post.
    pub clauses: Vec<ClauseDescriptor>,
}

impl<S: ?Sized> Contract<S> {
    /// Exports the contract's inspectable structure under `name`.
    pub fn describe(&self, name: impl Into<String>) -> ContractDescriptor {
        let clause = |kind: ViolationKind| {
            move |c: &Condition<S>| ClauseDescriptor {
                kind,
                name: c.name.clone(),
                assumes: c.assumes.clone(),
                binding: c.binding,
            }
        };
        let mut clauses = Vec::with_capacity(self.len());
        clauses.extend(self.invariants.iter().map(clause(ViolationKind::Invariant)));
        clauses.extend(self.pre.iter().map(clause(ViolationKind::Precondition)));
        clauses.extend(self.post.iter().map(clause(ViolationKind::Postcondition)));
        ContractDescriptor {
            name: name.into(),
            clauses,
        }
    }
}

/// Builder for [`Contract`].
#[derive(Debug)]
pub struct ContractBuilder<S: ?Sized> {
    contract: Contract<S>,
}

impl<S: ?Sized> ContractBuilder<S> {
    /// Adds a precondition.
    #[must_use]
    pub fn pre(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.contract.pre.push(Condition::new(name, check));
        self
    }

    /// Adds a postcondition.
    #[must_use]
    pub fn post(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.contract.post.push(Condition::new(name, check));
        self
    }

    /// Adds an invariant.
    #[must_use]
    pub fn invariant(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.contract.invariants.push(Condition::new(name, check));
        self
    }

    /// Adds a fully built condition as a precondition (use this form to
    /// attach assumption ids via [`Condition::assuming`]).
    #[must_use]
    pub fn pre_condition(mut self, c: Condition<S>) -> Self {
        self.contract.pre.push(c);
        self
    }

    /// Adds a fully built condition as a postcondition.
    #[must_use]
    pub fn post_condition(mut self, c: Condition<S>) -> Self {
        self.contract.post.push(c);
        self
    }

    /// Adds a fully built condition as an invariant.
    #[must_use]
    pub fn invariant_condition(mut self, c: Condition<S>) -> Self {
        self.contract.invariants.push(c);
        self
    }

    /// Finalises the contract.
    #[must_use]
    pub fn build(self) -> Contract<S> {
        self.contract
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Machine {
        energy: i32,
        interlock_engaged: bool,
    }

    fn therac_contract() -> Contract<Machine> {
        Contract::builder()
            .invariant_condition(
                Condition::new("beam energy within safe bounds", |m: &Machine| {
                    (0..=100).contains(&m.energy)
                })
                .assuming("no-residual-fault")
                .assuming("hw-interlocks-present"),
            )
            .pre("interlock engaged before dosing", |m: &Machine| {
                m.interlock_engaged
            })
            .post("energy delivered is non-negative", |m: &Machine| {
                m.energy >= 0
            })
            .build()
    }

    #[test]
    fn entry_ok_when_all_hold() {
        let c = therac_contract();
        let m = Machine {
            energy: 50,
            interlock_engaged: true,
        };
        assert!(c.check_entry(&m).is_ok());
    }

    #[test]
    fn invariant_violation_implicates_assumptions() {
        let c = therac_contract();
        let m = Machine {
            energy: 25_000,
            interlock_engaged: true,
        };
        let v = c.check_entry(&m).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Invariant);
        assert_eq!(
            v.implicated,
            vec![
                AssumptionId::new("no-residual-fault"),
                AssumptionId::new("hw-interlocks-present")
            ]
        );
        let msg = v.to_string();
        assert!(msg.contains("invariant"));
        assert!(msg.contains("no-residual-fault"));
    }

    #[test]
    fn precondition_checked_after_invariants() {
        let c = therac_contract();
        let m = Machine {
            energy: 50,
            interlock_engaged: false,
        };
        let v = c.check_entry(&m).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Precondition);
        assert_eq!(v.condition, "interlock engaged before dosing");
    }

    #[test]
    fn execute_runs_op_between_checks() {
        let c = therac_contract();
        let mut m = Machine {
            energy: 10,
            interlock_engaged: true,
        };
        let delivered = c.execute(&mut m, |m| {
            m.energy += 5;
            m.energy
        });
        assert_eq!(delivered.unwrap(), 15);
    }

    #[test]
    fn execute_catches_bad_exit_state() {
        let c = therac_contract();
        let mut m = Machine {
            energy: 10,
            interlock_engaged: true,
        };
        // The op drives the machine out of the safe envelope — exactly the
        // Therac-25 failure the removed hardware interlocks used to catch.
        let v = c
            .execute(&mut m, |m| {
                m.energy = 25_000;
            })
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::Invariant);
    }

    #[test]
    fn execute_skips_op_on_entry_failure() {
        let c = therac_contract();
        let mut m = Machine {
            energy: 10,
            interlock_engaged: false,
        };
        let mut ran = false;
        let r = c.execute(&mut m, |_| {
            ran = true;
        });
        assert!(r.is_err());
        assert!(!ran);
    }

    #[test]
    fn postcondition_violation() {
        let c = Contract::<i32>::builder()
            .post("result is even", |&x| x % 2 == 0)
            .build();
        let mut x = 0;
        let v = c.execute(&mut x, |x| *x = 3).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Postcondition);
        assert!(v.implicated.is_empty());
    }

    #[test]
    fn empty_contract_admits_everything() {
        let c = Contract::<u8>::default();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.check_entry(&0).is_ok());
        assert!(c.check_exit(&255).is_ok());
    }

    #[test]
    fn condition_accessors() {
        let cond = Condition::new("positive", |&x: &i32| x > 0).assuming("a1");
        assert_eq!(cond.name(), "positive");
        assert!(cond.holds(&1));
        assert!(!cond.holds(&-1));
        let dbg = format!("{cond:?}");
        assert!(dbg.contains("positive"));
    }

    #[test]
    fn violation_kind_display() {
        assert_eq!(ViolationKind::Precondition.to_string(), "precondition");
        assert_eq!(ViolationKind::Postcondition.to_string(), "postcondition");
        assert_eq!(ViolationKind::Invariant.to_string(), "invariant");
    }

    #[test]
    fn contract_debug() {
        let c = therac_contract();
        let dbg = format!("{c:?}");
        assert!(dbg.contains("Contract"));
    }

    #[test]
    fn describe_exports_clauses_in_protocol_order() {
        let d = therac_contract().describe("dose-delivery");
        assert_eq!(d.name, "dose-delivery");
        assert_eq!(d.clauses.len(), 3);
        assert_eq!(d.clauses[0].kind, ViolationKind::Invariant);
        assert_eq!(
            d.clauses[0].assumes,
            vec![
                AssumptionId::new("no-residual-fault"),
                AssumptionId::new("hw-interlocks-present")
            ]
        );
        assert_eq!(d.clauses[1].kind, ViolationKind::Precondition);
        assert!(d.clauses[1].assumes.is_empty());
        assert_eq!(d.clauses[2].kind, ViolationKind::Postcondition);
    }

    #[test]
    fn descriptor_roundtrips_serde() {
        let d = therac_contract().describe("dose-delivery");
        let json = serde_json::to_string(&d).unwrap();
        let back: ContractDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn condition_assumes_accessor() {
        let cond = Condition::new("positive", |&x: &i32| x > 0).assuming("a1");
        assert_eq!(cond.assumes(), &[AssumptionId::new("a1")]);
    }

    #[test]
    fn clause_binding_time_is_exported() {
        let c = Contract::<i32>::builder()
            .pre_condition(
                Condition::new("table index in range", |&x| x < 64)
                    .bound_at(BindingTime::CompileTime),
            )
            .build();
        let d = c.describe("lookup");
        assert_eq!(d.clauses[0].binding, Some(BindingTime::CompileTime));
        // Undeclared binding stays None and still round-trips.
        let undeclared = therac_contract().describe("dose-delivery");
        assert_eq!(undeclared.clauses[0].binding, None);
        let json = serde_json::to_string(&d).unwrap();
        let back: ContractDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
