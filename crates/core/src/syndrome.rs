//! The three hazards of software development (paper §2) and Boulding's
//! classification of systems (§2.2, §3.3, §6).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's three assumption-failure hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Syndrome {
    /// **S_H** — "the environment will do something the designer never
    /// anticipated" (Horning): an assumption about the physical environment
    /// or platform clashes with a real-life fact.
    Horning,
    /// **S_HI** — vital knowledge was concealed or discarded for the sake
    /// of hiding complexity, so the clash could not be inspected, verified,
    /// or maintained.
    HiddenIntelligence,
    /// **S_B** — the system's Boulding category (its degree of
    /// context-awareness) is below what its operational environment
    /// actually requires.
    Boulding,
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Syndrome::Horning => write!(f, "Horning syndrome (S_H)"),
            Syndrome::HiddenIntelligence => write!(f, "Hidden Intelligence syndrome (S_HI)"),
            Syndrome::Boulding => write!(f, "Boulding syndrome (S_B)"),
        }
    }
}

/// Kenneth Boulding's hierarchy of system complexity (1956), as used by the
/// paper to grade a software system's context-awareness.
///
/// The paper names five levels explicitly: *Clockworks* and *Thermostats*
/// (the "naivest classes", closed-world, change-blind), *Cells* and
/// *Plants* (open, self-maintaining — what the §3.3 autonomic scheme
/// achieves), and *Beings* (fully autonomically resilient, the vision of
/// §6).  The enum carries the full nine-level skeleton so the ordering is
/// meaningful.
///
/// ```
/// use afta_core::BouldingCategory;
/// assert!(BouldingCategory::Clockwork < BouldingCategory::Cell);
/// assert!(BouldingCategory::Thermostat.is_closed_world());
/// assert!(!BouldingCategory::Plant.is_closed_world());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum BouldingCategory {
    /// Level 1 — static structure: frameworks.
    Framework,
    /// Level 2 — "simple dynamic system with predetermined, necessary
    /// motions": the paper's first "sitting duck" category.
    #[default]
    Clockwork,
    /// Level 3 — "control mechanisms in which the system will move to the
    /// maintenance of any given equilibrium, within limits".
    Thermostat,
    /// Level 4 — open, self-maintaining structures: the first rung of
    /// context-aware software.
    Cell,
    /// Level 5 — genetic-societal level: division of labour among parts.
    Plant,
    /// Level 6 — mobility, teleological behaviour, self-awareness of a
    /// rudimentary kind.
    Animal,
    /// Level 7 — self-consciousness: Boulding's "human" level; the paper's
    /// "Beings" (fully autonomically resilient software).
    Being,
    /// Level 8 — social organisations.
    SocialOrganization,
    /// Level 9 — transcendental systems.
    Transcendental,
}

impl BouldingCategory {
    /// Numeric level in Boulding's hierarchy (1-based).
    #[must_use]
    pub fn level(self) -> u8 {
        match self {
            BouldingCategory::Framework => 1,
            BouldingCategory::Clockwork => 2,
            BouldingCategory::Thermostat => 3,
            BouldingCategory::Cell => 4,
            BouldingCategory::Plant => 5,
            BouldingCategory::Animal => 6,
            BouldingCategory::Being => 7,
            BouldingCategory::SocialOrganization => 8,
            BouldingCategory::Transcendental => 9,
        }
    }

    /// Whether this category is one of the paper's closed-world "sitting
    /// duck" classes (Framework, Clockwork, Thermostat).
    #[must_use]
    pub fn is_closed_world(self) -> bool {
        self <= BouldingCategory::Thermostat
    }

    /// Whether a system of this category suffices for an environment that
    /// demands `required` awareness.  A mismatch is a [`Syndrome::Boulding`]
    /// hazard.
    #[must_use]
    pub fn suffices_for(self, required: BouldingCategory) -> bool {
        self >= required
    }
}

impl fmt::Display for BouldingCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BouldingCategory::Framework => "Framework",
            BouldingCategory::Clockwork => "Clockwork",
            BouldingCategory::Thermostat => "Thermostat",
            BouldingCategory::Cell => "Cell",
            BouldingCategory::Plant => "Plant",
            BouldingCategory::Animal => "Animal",
            BouldingCategory::Being => "Being",
            BouldingCategory::SocialOrganization => "Social organization",
            BouldingCategory::Transcendental => "Transcendental",
        };
        write!(f, "{name} (level {})", self.level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_levels() {
        let all = [
            BouldingCategory::Framework,
            BouldingCategory::Clockwork,
            BouldingCategory::Thermostat,
            BouldingCategory::Cell,
            BouldingCategory::Plant,
            BouldingCategory::Animal,
            BouldingCategory::Being,
            BouldingCategory::SocialOrganization,
            BouldingCategory::Transcendental,
        ];
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].level() < w[1].level());
        }
        assert_eq!(all[0].level(), 1);
        assert_eq!(all[8].level(), 9);
    }

    #[test]
    fn closed_world_split() {
        assert!(BouldingCategory::Framework.is_closed_world());
        assert!(BouldingCategory::Clockwork.is_closed_world());
        assert!(BouldingCategory::Thermostat.is_closed_world());
        assert!(!BouldingCategory::Cell.is_closed_world());
        assert!(!BouldingCategory::Being.is_closed_world());
    }

    #[test]
    fn sufficiency() {
        // The Therac-25 case: a Clockwork deployed where a Cell was needed.
        assert!(!BouldingCategory::Clockwork.suffices_for(BouldingCategory::Cell));
        assert!(BouldingCategory::Plant.suffices_for(BouldingCategory::Cell));
        assert!(BouldingCategory::Cell.suffices_for(BouldingCategory::Cell));
    }

    #[test]
    fn default_is_clockwork() {
        // Absent any declaration, software is presumed a closed-world
        // clockwork — the paper's diagnosis of current practice.
        assert_eq!(BouldingCategory::default(), BouldingCategory::Clockwork);
    }

    #[test]
    fn displays() {
        assert_eq!(
            BouldingCategory::Thermostat.to_string(),
            "Thermostat (level 3)"
        );
        assert!(Syndrome::Horning.to_string().contains("S_H"));
        assert!(Syndrome::HiddenIntelligence.to_string().contains("S_HI"));
        assert!(Syndrome::Boulding.to_string().contains("S_B"));
    }

    #[test]
    fn serde_roundtrip() {
        let c = BouldingCategory::Plant;
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<BouldingCategory>(&json).unwrap(), c);
        let s = Syndrome::Boulding;
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Syndrome>(&json).unwrap(), s);
    }
}
