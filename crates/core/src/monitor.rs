//! The continuous assumption monitor: the paper's "novel autonomic
//! run-time executives that continuously verify those hypotheses and
//! assumptions by matching them with endogenous knowledge deducted from
//! the processing subsystems as well as exogenous knowledge derived from
//! their execution and physical environments".
//!
//! [`AssumptionMonitor`] owns a registry and a probe set and polls them
//! on a configurable cadence, emitting [`MonitorEvent`]s to an optional
//! sink.  It is deliberately dependency-free (no event-bus coupling):
//! embedders wire the sink to whatever middleware they use.

use std::fmt;

use afta_telemetry::{Registry as TelemetryRegistry, TelemetryEvent, Tick};

use crate::probe::ProbeSet;
use crate::registry::{AssumptionRegistry, Clash};
use crate::value::Observation;

/// The sink callback type invoked on every [`MonitorEvent`].
pub type EventSink = Box<dyn FnMut(&MonitorEvent) + Send>;

/// An event emitted by the monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// A polling cycle completed with every assumption satisfied.
    CycleClean {
        /// The cycle number (1-based).
        cycle: u64,
        /// Observations ingested this cycle.
        observations: usize,
    },
    /// A clash was detected (one event per clash).
    ClashDetected {
        /// The cycle number.
        cycle: u64,
        /// The clash, including syndromes and disposition.
        clash: Clash,
    },
}

impl fmt::Display for MonitorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorEvent::CycleClean {
                cycle,
                observations,
            } => write!(f, "cycle {cycle}: clean ({observations} observations)"),
            MonitorEvent::ClashDetected { cycle, clash } => {
                write!(f, "cycle {cycle}: {clash}")
            }
        }
    }
}

/// Aggregate statistics of a monitor's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorStats {
    /// Polling cycles run.
    pub cycles: u64,
    /// Total observations ingested.
    pub observations: u64,
    /// Total clashes detected.
    pub clashes: u64,
    /// Clashes whose adaptation handler recovered.
    pub recovered: u64,
}

/// A polling executive over an [`AssumptionRegistry`] and a [`ProbeSet`].
pub struct AssumptionMonitor {
    registry: AssumptionRegistry,
    probes: ProbeSet,
    stats: MonitorStats,
    sink: Option<EventSink>,
    telemetry: TelemetryRegistry,
}

impl fmt::Debug for AssumptionMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AssumptionMonitor")
            .field("registry", &self.registry)
            .field("probes", &self.probes)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl AssumptionMonitor {
    /// Creates a monitor over a registry and probes.
    #[must_use]
    pub fn new(registry: AssumptionRegistry, probes: ProbeSet) -> Self {
        Self {
            registry,
            probes,
            stats: MonitorStats::default(),
            sink: None,
            telemetry: TelemetryRegistry::disabled(),
        }
    }

    /// Attaches an event sink (e.g. a bus publisher or a logger).
    pub fn set_sink(&mut self, sink: impl FnMut(&MonitorEvent) + Send + 'static) {
        self.sink = Some(Box::new(sink));
    }

    /// Attaches a telemetry registry.  The monitor then maintains the
    /// `monitor.cycles` / `monitor.observations` / `monitor.clashes` /
    /// `monitor.recovered` counters and journals every clash as an
    /// [`TelemetryEvent::AssumptionClash`] record (timestamped with the
    /// cycle number as virtual time).
    pub fn set_telemetry(&mut self, telemetry: TelemetryRegistry) {
        self.telemetry = telemetry;
    }

    /// The monitored registry (for inspection or direct observation).
    #[must_use]
    pub fn registry(&self) -> &AssumptionRegistry {
        &self.registry
    }

    /// Mutable access to the registry (to register more assumptions or
    /// attach handlers after construction).
    pub fn registry_mut(&mut self) -> &mut AssumptionRegistry {
        &mut self.registry
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    fn emit(&mut self, event: MonitorEvent) -> MonitorEvent {
        if let Some(sink) = &mut self.sink {
            sink(&event);
        }
        event
    }

    /// Runs one polling cycle: snapshot every probe, feed the registry,
    /// emit events.  Returns the events of this cycle.
    pub fn poll(&mut self) -> Vec<MonitorEvent> {
        self.stats.cycles += 1;
        let cycle = self.stats.cycles;
        let observations = self.probes.snapshot();
        self.stats.observations += observations.len() as u64;
        let _cycle_span = self.telemetry.span("monitor.cycle_ns");
        self.ingest(cycle, observations)
    }

    /// Feeds externally supplied observations (exogenous knowledge)
    /// through the same event pipeline, outside the probe cadence.
    pub fn observe(&mut self, observations: Vec<Observation>) -> Vec<MonitorEvent> {
        self.stats.cycles += 1;
        self.stats.observations += observations.len() as u64;
        let cycle = self.stats.cycles;
        self.ingest(cycle, observations)
    }

    fn ingest(&mut self, cycle: u64, observations: Vec<Observation>) -> Vec<MonitorEvent> {
        let count = observations.len();
        self.telemetry.counter("monitor.cycles").inc();
        self.telemetry
            .counter("monitor.observations")
            .add(count as u64);
        let report = self.registry.observe_all(observations);
        let mut events = Vec::new();
        if report.clashes.is_empty() {
            events.push(self.emit(MonitorEvent::CycleClean {
                cycle,
                observations: count,
            }));
            return events;
        }
        for clash in report.clashes {
            self.stats.clashes += 1;
            self.telemetry.counter("monitor.clashes").inc();
            if matches!(
                clash.disposition,
                crate::registry::ClashDisposition::Recovered(_)
            ) {
                self.stats.recovered += 1;
                self.telemetry.counter("monitor.recovered").inc();
            }
            self.telemetry.record(
                Tick(cycle),
                TelemetryEvent::AssumptionClash {
                    assumption: clash.assumption.to_string(),
                    disposition: clash.disposition.to_string(),
                },
            );
            events.push(self.emit(MonitorEvent::ClashDetected { cycle, clash }));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use std::sync::{Arc, Mutex};

    fn registry() -> AssumptionRegistry {
        let mut r = AssumptionRegistry::new();
        r.register(
            Assumption::builder("temp")
                .expects("temperature_c", Expectation::int_range(-10, 40))
                .build(),
        )
        .unwrap();
        r
    }

    #[test]
    fn clean_cycles_emit_clean_events() {
        let probes = ProbeSet::new().with(FnProbe::new("thermo", || {
            vec![Observation::new("temperature_c", 20i64)]
        }));
        let mut m = AssumptionMonitor::new(registry(), probes);
        let events = m.poll();
        assert_eq!(
            events,
            vec![MonitorEvent::CycleClean {
                cycle: 1,
                observations: 1
            }]
        );
        assert_eq!(m.stats().cycles, 1);
        assert_eq!(m.stats().clashes, 0);
    }

    #[test]
    fn escalating_probe_produces_clash_events() {
        let reading = Arc::new(Mutex::new(20i64));
        let probe_reading = reading.clone();
        let probes = ProbeSet::new().with(FnProbe::new("thermo", move || {
            vec![Observation::new(
                "temperature_c",
                *probe_reading.lock().unwrap(),
            )]
        }));
        let mut m = AssumptionMonitor::new(registry(), probes);

        assert!(matches!(m.poll()[0], MonitorEvent::CycleClean { .. }));
        *reading.lock().unwrap() = 120; // the environment heats up
        let events = m.poll();
        assert_eq!(events.len(), 1);
        match &events[0] {
            MonitorEvent::ClashDetected { cycle, clash } => {
                assert_eq!(*cycle, 2);
                assert_eq!(clash.observed, Value::Int(120));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stats().clashes, 1);
        assert_eq!(m.stats().recovered, 0);
    }

    #[test]
    fn sink_sees_every_event() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink_log = log.clone();
        let probes = ProbeSet::new().with(FnProbe::new("thermo", || {
            vec![Observation::new("temperature_c", 99i64)]
        }));
        let mut m = AssumptionMonitor::new(registry(), probes);
        m.set_sink(move |e| sink_log.lock().unwrap().push(e.to_string()));
        m.poll();
        m.poll();
        let entries = log.lock().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].contains("cycle 1"));
        assert!(entries[1].contains("cycle 2"));
    }

    #[test]
    fn recovery_is_counted() {
        let mut reg = registry();
        reg.attach_handler("temp", Box::new(|_, _| Ok("throttled".into())))
            .unwrap();
        let probes = ProbeSet::new().with(FnProbe::new("thermo", || {
            vec![Observation::new("temperature_c", 99i64)]
        }));
        let mut m = AssumptionMonitor::new(reg, probes);
        m.poll();
        assert_eq!(m.stats().clashes, 1);
        assert_eq!(m.stats().recovered, 1);
    }

    #[test]
    fn external_observations_share_the_pipeline() {
        let mut m = AssumptionMonitor::new(registry(), ProbeSet::new());
        let events = m.observe(vec![Observation::new("temperature_c", -40i64)]);
        assert!(matches!(events[0], MonitorEvent::ClashDetected { .. }));
        assert_eq!(m.stats().observations, 1);
    }

    #[test]
    fn registry_mut_allows_late_registration() {
        let mut m = AssumptionMonitor::new(AssumptionRegistry::new(), ProbeSet::new());
        m.registry_mut()
            .register(
                Assumption::builder("late")
                    .expects("k", Expectation::Present)
                    .build(),
            )
            .unwrap();
        assert_eq!(m.registry().len(), 1);
    }

    #[test]
    fn telemetry_counts_cycles_and_journals_clashes() {
        let telemetry = TelemetryRegistry::new();
        let reading = Arc::new(Mutex::new(20i64));
        let probe_reading = reading.clone();
        let probes = ProbeSet::new().with(FnProbe::new("thermo", move || {
            vec![Observation::new(
                "temperature_c",
                *probe_reading.lock().unwrap(),
            )]
        }));
        let mut m = AssumptionMonitor::new(registry(), probes);
        m.set_telemetry(telemetry.clone());

        m.poll(); // clean
        *reading.lock().unwrap() = 120;
        m.poll(); // clash

        let report = telemetry.report();
        assert_eq!(report.counter("monitor.cycles"), 2);
        assert_eq!(report.counter("monitor.observations"), 2);
        assert_eq!(report.counter("monitor.clashes"), 1);
        assert_eq!(report.counter("monitor.recovered"), 0);
        let clashes: Vec<_> = report.journal_of_kind("assumption-clash").collect();
        assert_eq!(clashes.len(), 1);
        assert_eq!(clashes[0].tick, afta_telemetry::Tick(2));
        match &clashes[0].event {
            TelemetryEvent::AssumptionClash {
                assumption,
                disposition,
            } => {
                assert_eq!(assumption, "temp");
                assert_eq!(disposition, "unhandled");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cycle spans were timed.
        assert_eq!(report.histograms["monitor.cycle_ns"].count, 2);
    }

    #[test]
    fn event_display() {
        let e = MonitorEvent::CycleClean {
            cycle: 3,
            observations: 2,
        };
        assert!(e.to_string().contains("clean"));
    }
}
