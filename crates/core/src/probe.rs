//! Context probes: the introspection mechanisms the Therac-25 lacked.
//!
//! §2.2 observes that the Therac machines "were missing introspection
//! mechanisms (for instance, self-tests) able to verify whether the target
//! platform did include the expected mechanisms and behaviors".  A
//! [`ContextProbe`] is such a self-test: it inspects some slice of the
//! platform or environment and reports [`Observation`]s that the
//! [`AssumptionRegistry`](crate::registry::AssumptionRegistry) matches
//! against the registered assumptions.

use std::fmt;

use crate::value::Observation;

/// A source of endogenous or exogenous knowledge about the current
/// context.
pub trait ContextProbe: Send {
    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// Inspects the context and reports zero or more observations.
    fn probe(&mut self) -> Vec<Observation>;
}

/// A probe built from a closure.
///
/// ```
/// use afta_core::{ContextProbe, FnProbe, Observation};
///
/// let mut p = FnProbe::new("thermometer", || {
///     vec![Observation::new("temperature_c", 21i64)]
/// });
/// assert_eq!(p.name(), "thermometer");
/// assert_eq!(p.probe().len(), 1);
/// ```
pub struct FnProbe<F> {
    name: String,
    f: F,
}

impl<F> FnProbe<F>
where
    F: FnMut() -> Vec<Observation> + Send,
{
    /// Creates a probe from a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F> fmt::Debug for FnProbe<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProbe")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl<F> ContextProbe for FnProbe<F>
where
    F: FnMut() -> Vec<Observation> + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn probe(&mut self) -> Vec<Observation> {
        (self.f)()
    }
}

/// A collection of probes, run together to take a full context snapshot.
#[derive(Default)]
pub struct ProbeSet {
    probes: Vec<Box<dyn ContextProbe>>,
}

impl fmt::Debug for ProbeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.probes.iter().map(|p| p.name()).collect();
        f.debug_struct("ProbeSet").field("probes", &names).finish()
    }
}

impl ProbeSet {
    /// Creates an empty probe set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a probe (builder style).
    #[must_use]
    pub fn with(mut self, probe: impl ContextProbe + 'static) -> Self {
        self.probes.push(Box::new(probe));
        self
    }

    /// Adds a probe in place.
    pub fn add(&mut self, probe: impl ContextProbe + 'static) {
        self.probes.push(Box::new(probe));
    }

    /// Number of probes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when the set holds no probes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Runs every probe in registration order and concatenates their
    /// observations.
    pub fn snapshot(&mut self) -> Vec<Observation> {
        let mut out = Vec::new();
        for p in &mut self.probes {
            out.extend(p.probe());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn fn_probe_reports() {
        let mut calls = 0;
        {
            let mut p = FnProbe::new("counter", move || {
                calls += 1;
                vec![Observation::new("calls", calls)]
            });
            let o = p.probe();
            assert_eq!(o[0].value, Value::Int(1));
            let o = p.probe();
            assert_eq!(o[0].value, Value::Int(2));
        }
    }

    #[test]
    fn probe_set_concatenates_in_order() {
        let mut set = ProbeSet::new()
            .with(FnProbe::new("a", || vec![Observation::new("x", 1i64)]))
            .with(FnProbe::new("b", || {
                vec![Observation::new("y", 2i64), Observation::new("z", 3i64)]
            }));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let snap = set.snapshot();
        let keys: Vec<&str> = snap.iter().map(|o| o.key.as_str()).collect();
        assert_eq!(keys, vec!["x", "y", "z"]);
    }

    #[test]
    fn empty_set_snapshot_is_empty() {
        let mut set = ProbeSet::new();
        assert!(set.is_empty());
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn add_in_place() {
        let mut set = ProbeSet::new();
        set.add(FnProbe::new("p", Vec::new));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn debug_lists_names() {
        let set = ProbeSet::new().with(FnProbe::new("spd-reader", Vec::new));
        assert!(format!("{set:?}").contains("spd-reader"));
        let p = FnProbe::new("x", Vec::new);
        assert!(format!("{p:?}").contains('x'));
    }

    #[test]
    fn probe_set_feeds_registry() {
        use crate::prelude::*;
        let mut reg = AssumptionRegistry::new();
        reg.register(
            Assumption::builder("temp-range")
                .expects("temperature_c", Expectation::int_range(-10, 40))
                .build(),
        )
        .unwrap();
        let mut probes = ProbeSet::new().with(FnProbe::new("thermo", || {
            vec![Observation::new("temperature_c", 80i64)]
        }));
        let report = reg.observe_all(probes.snapshot());
        assert_eq!(report.clashes.len(), 1);
    }
}
