//! The first-class design assumption.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::value::Expectation;

/// Identifier of an assumption within a registry.
///
/// Ids are short, stable, kebab-case strings chosen by the designer, e.g.
/// `"hvel-16bit"` or `"mem-failure-semantics"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AssumptionId(pub String);

impl AssumptionId {
    /// Creates an id from anything string-like.
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The id as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AssumptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for AssumptionId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}
impl From<String> for AssumptionId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// The four classes of hypotheses the paper's introduction enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssumptionKind {
    /// Expected properties/behaviours of hardware components, e.g. the
    /// failure semantics of memory modules.
    HardwareComponent,
    /// Expected properties of third-party software, e.g. the reliability of
    /// an open-source library.
    ThirdPartySoftware,
    /// Expected properties of the execution environment, e.g. security
    /// provisions of the runtime platform.
    ExecutionEnvironment,
    /// Expected characteristics of the physical environment, e.g. the fault
    /// model experienced by a space-borne vehicle.
    PhysicalEnvironment,
    /// Assumptions about the system's own internal state or residual
    /// faults (the Therac-25's "no residual fault exists").
    InternalState,
}

impl fmt::Display for AssumptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssumptionKind::HardwareComponent => "hardware component",
            AssumptionKind::ThirdPartySoftware => "third-party software",
            AssumptionKind::ExecutionEnvironment => "execution environment",
            AssumptionKind::PhysicalEnvironment => "physical environment",
            AssumptionKind::InternalState => "internal state",
        };
        write!(f, "{s}")
    }
}

/// The "time stages" of software development at which an assumption's value
/// can be bound (paper §4/§6: design, verification, compile, deployment,
/// run time).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum BindingTime {
    /// Fixed once and for all when the system is designed — the default,
    /// and the root cause of the paper's three syndromes.
    #[default]
    DesignTime,
    /// Checked/chosen during verification and validation.
    VerificationTime,
    /// Chosen when the code is compiled for a concrete target (§3.1).
    CompileTime,
    /// Chosen when the application is assembled on its deployment stage.
    DeploymentTime,
    /// Revised continuously while the system runs (§3.2, §3.3).
    RunTime,
}

impl fmt::Display for BindingTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BindingTime::DesignTime => "design-time",
            BindingTime::VerificationTime => "verification-time",
            BindingTime::CompileTime => "compile-time",
            BindingTime::DeploymentTime => "deployment-time",
            BindingTime::RunTime => "run-time",
        };
        write!(f, "{s}")
    }
}

/// How severe the consequences of this assumption failing are.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Criticality {
    /// Cosmetic or performance-only consequences.
    Low,
    /// Degraded service.
    #[default]
    Medium,
    /// Loss of service.
    High,
    /// Loss of mission or life (Ariane 5, Therac-25).
    Catastrophic,
}

/// Whether the assumption is recorded somewhere inspectable or buried in
/// the executable code.
///
/// `Hardwired` is the paper's Hidden Intelligence precondition: "those
/// removed or concealed hypotheses cannot be easily inspected, verified, or
/// maintained".  Registering a hardwired assumption models *legacy* code
/// whose hypotheses were excavated after the fact; clashes on it are
/// co-diagnosed as [`crate::Syndrome::HiddenIntelligence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Visibility {
    /// Expressed, stored, and inspectable (the goal state).
    #[default]
    Exposed,
    /// Implicit in the code; not inspectable where it matters.
    Hardwired,
}

/// Where an assumption came from: the paper's knowledge-propagation trail.
///
/// The Ariane failure happened because the 16-bit-velocity hypothesis
/// "originated at Ariane 4's design time" but "the software code ... did
/// not include any mechanism to store, inspect, or validate such
/// assumption".  `Provenance` is that mechanism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Provenance {
    /// The system/component the assumption was first drawn for,
    /// e.g. `"ariane4/flight-software"`.
    pub origin: String,
    /// The binding stage at which it was drawn.
    pub stage: BindingTime,
    /// Free-form rationale: why the assumption was believed valid.
    pub rationale: String,
}

/// A first-class design assumption.
///
/// Use [`Assumption::builder`] to construct one; the builder enforces the
/// mandatory fields (id, fact key, expectation).
///
/// ```
/// use afta_core::prelude::*;
///
/// let a = Assumption::builder("mem-cmos")
///     .statement("memory exhibits CMOS-like single-bit transient errors only")
///     .kind(AssumptionKind::HardwareComponent)
///     .expects("memory_technology", Expectation::equals("cmos"))
///     .binding_time(BindingTime::CompileTime)
///     .criticality(Criticality::High)
///     .build();
/// assert_eq!(a.id().as_str(), "mem-cmos");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assumption {
    id: AssumptionId,
    statement: String,
    kind: AssumptionKind,
    fact_key: String,
    expectation: Expectation,
    binding_time: BindingTime,
    criticality: Criticality,
    visibility: Visibility,
    provenance: Provenance,
}

impl Assumption {
    /// Starts building an assumption with the given id.
    #[must_use]
    pub fn builder(id: impl Into<AssumptionId>) -> AssumptionBuilder {
        AssumptionBuilder::new(id)
    }

    /// The assumption's identifier.
    #[must_use]
    pub fn id(&self) -> &AssumptionId {
        &self.id
    }

    /// Human-readable statement of the hypothesis.
    #[must_use]
    pub fn statement(&self) -> &str {
        &self.statement
    }

    /// Which class of hypothesis this is.
    #[must_use]
    pub fn kind(&self) -> AssumptionKind {
        self.kind
    }

    /// The context fact this assumption constrains.
    #[must_use]
    pub fn fact_key(&self) -> &str {
        &self.fact_key
    }

    /// The constraint placed on the fact.
    #[must_use]
    pub fn expectation(&self) -> &Expectation {
        &self.expectation
    }

    /// When the assumption's value is (re)bound.
    #[must_use]
    pub fn binding_time(&self) -> BindingTime {
        self.binding_time
    }

    /// Consequence severity of a failure.
    #[must_use]
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Exposed or hardwired.
    #[must_use]
    pub fn visibility(&self) -> Visibility {
        self.visibility
    }

    /// Origin trail.
    #[must_use]
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Does the given observed value satisfy this assumption?
    #[must_use]
    pub fn holds_for(&self, value: &crate::value::Value) -> bool {
        self.expectation.admits(value)
    }
}

impl fmt::Display for Assumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({}; {} {}; {})",
            self.id, self.statement, self.kind, self.fact_key, self.expectation, self.binding_time
        )
    }
}

/// Builder for [`Assumption`].
#[derive(Debug, Clone)]
pub struct AssumptionBuilder {
    id: AssumptionId,
    statement: String,
    kind: AssumptionKind,
    fact_key: Option<String>,
    expectation: Option<Expectation>,
    binding_time: BindingTime,
    criticality: Criticality,
    visibility: Visibility,
    provenance: Provenance,
}

impl AssumptionBuilder {
    fn new(id: impl Into<AssumptionId>) -> Self {
        Self {
            id: id.into(),
            statement: String::new(),
            kind: AssumptionKind::ExecutionEnvironment,
            fact_key: None,
            expectation: None,
            binding_time: BindingTime::DesignTime,
            criticality: Criticality::Medium,
            visibility: Visibility::Exposed,
            provenance: Provenance::default(),
        }
    }

    /// Sets the human-readable statement.
    #[must_use]
    pub fn statement(mut self, s: impl Into<String>) -> Self {
        self.statement = s.into();
        self
    }

    /// Sets the assumption kind.
    #[must_use]
    pub fn kind(mut self, k: AssumptionKind) -> Self {
        self.kind = k;
        self
    }

    /// Sets the constrained fact and the expectation on it (mandatory).
    #[must_use]
    pub fn expects(mut self, fact_key: impl Into<String>, e: Expectation) -> Self {
        self.fact_key = Some(fact_key.into());
        self.expectation = Some(e);
        self
    }

    /// Sets the binding time.
    #[must_use]
    pub fn binding_time(mut self, b: BindingTime) -> Self {
        self.binding_time = b;
        self
    }

    /// Sets the criticality.
    #[must_use]
    pub fn criticality(mut self, c: Criticality) -> Self {
        self.criticality = c;
        self
    }

    /// Marks the assumption as hardwired (legacy, uninspectable in situ).
    #[must_use]
    pub fn hardwired(mut self) -> Self {
        self.visibility = Visibility::Hardwired;
        self
    }

    /// Sets the origin system in the provenance trail.
    #[must_use]
    pub fn origin(mut self, origin: impl Into<String>) -> Self {
        self.provenance.origin = origin.into();
        self
    }

    /// Sets the provenance rationale.
    #[must_use]
    pub fn rationale(mut self, r: impl Into<String>) -> Self {
        self.provenance.rationale = r.into();
        self
    }

    /// Sets the stage at which the assumption was drawn.
    #[must_use]
    pub fn drawn_at(mut self, stage: BindingTime) -> Self {
        self.provenance.stage = stage;
        self
    }

    /// Finalises the assumption.
    ///
    /// # Panics
    ///
    /// Panics if [`AssumptionBuilder::expects`] was never called: an
    /// assumption without a verifiable expectation is exactly the hidden
    /// intelligence this crate exists to eliminate.
    #[must_use]
    pub fn build(self) -> Assumption {
        let fact_key = self
            .fact_key
            .expect("assumption must constrain a fact: call .expects(key, expectation)");
        let expectation = self.expectation.expect("expectation set with fact_key");
        Assumption {
            id: self.id,
            statement: self.statement,
            kind: self.kind,
            fact_key,
            expectation,
            binding_time: self.binding_time,
            criticality: self.criticality,
            visibility: self.visibility,
            provenance: self.provenance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Expectation, Value};

    fn sample() -> Assumption {
        Assumption::builder("hvel-16bit")
            .statement("horizontal velocity fits i16")
            .kind(AssumptionKind::PhysicalEnvironment)
            .expects("horizontal_velocity", Expectation::int_range(-32768, 32767))
            .binding_time(BindingTime::DesignTime)
            .criticality(Criticality::Catastrophic)
            .origin("ariane4")
            .rationale("Ariane 4 trajectory envelope")
            .drawn_at(BindingTime::DesignTime)
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let a = sample();
        assert_eq!(a.id(), &AssumptionId::new("hvel-16bit"));
        assert_eq!(a.kind(), AssumptionKind::PhysicalEnvironment);
        assert_eq!(a.fact_key(), "horizontal_velocity");
        assert_eq!(a.binding_time(), BindingTime::DesignTime);
        assert_eq!(a.criticality(), Criticality::Catastrophic);
        assert_eq!(a.visibility(), Visibility::Exposed);
        assert_eq!(a.provenance().origin, "ariane4");
    }

    #[test]
    fn holds_for_checks_expectation() {
        let a = sample();
        assert!(a.holds_for(&Value::Int(100)));
        assert!(!a.holds_for(&Value::Int(40_000)));
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn build_without_expectation_panics() {
        let _ = Assumption::builder("x").statement("no fact").build();
    }

    #[test]
    fn hardwired_marks_visibility() {
        let a = Assumption::builder("legacy")
            .expects("k", Expectation::Present)
            .hardwired()
            .build();
        assert_eq!(a.visibility(), Visibility::Hardwired);
    }

    #[test]
    fn binding_time_ordering() {
        assert!(BindingTime::DesignTime < BindingTime::CompileTime);
        assert!(BindingTime::CompileTime < BindingTime::DeploymentTime);
        assert!(BindingTime::DeploymentTime < BindingTime::RunTime);
    }

    #[test]
    fn criticality_ordering() {
        assert!(Criticality::Low < Criticality::Catastrophic);
        assert_eq!(Criticality::default(), Criticality::Medium);
    }

    #[test]
    fn id_conversions_and_display() {
        let id: AssumptionId = "abc".into();
        assert_eq!(id.as_str(), "abc");
        assert_eq!(id.to_string(), "abc");
        let id2: AssumptionId = String::from("abc").into();
        assert_eq!(id, id2);
    }

    #[test]
    fn display_mentions_key_parts() {
        let s = sample().to_string();
        assert!(s.contains("hvel-16bit"));
        assert!(s.contains("horizontal_velocity"));
        assert!(s.contains("design-time"));
    }

    #[test]
    fn serde_roundtrip() {
        let a = sample();
        let json = serde_json::to_string(&a).unwrap();
        let back: Assumption = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn kind_display() {
        assert_eq!(
            AssumptionKind::HardwareComponent.to_string(),
            "hardware component"
        );
        assert_eq!(
            AssumptionKind::PhysicalEnvironment.to_string(),
            "physical environment"
        );
    }
}
