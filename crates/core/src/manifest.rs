//! Serialisable registry manifests.
//!
//! §4 of the paper discusses XML deployment descriptors whose purpose is
//! to *expose* knowledge for machines to reason upon.  A
//! [`RegistryManifest`] is that artefact for the assumption registry: a
//! complete, serialisable snapshot of the declared assumptions, the
//! observed facts, and the clash history — everything except the live
//! adaptation handlers (code does not serialise).  Manifests travel
//! between the development-time layers: a compile-time tool can emit
//! one, a deployment-time tool can check it against the target, and a
//! run-time monitor can re-import it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::assumption::Assumption;
use crate::error::Error;
use crate::registry::{AssumptionRegistry, Clash};
use crate::syndrome::BouldingCategory;
use crate::value::Value;

/// A serialisable snapshot of an [`AssumptionRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RegistryManifest {
    /// Every registered assumption, in id order.
    pub assumptions: Vec<Assumption>,
    /// The current fact base.
    pub facts: BTreeMap<String, Value>,
    /// The clash history, oldest first.
    pub clashes: Vec<Clash>,
    /// The declared environmental requirement.
    pub required_category: BouldingCategory,
}

impl RegistryManifest {
    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialisation fails (practically
    /// impossible for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a manifest from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl AssumptionRegistry {
    /// Exports the registry's serialisable state.
    #[must_use]
    pub fn manifest(&self) -> RegistryManifest {
        RegistryManifest {
            assumptions: self.iter().cloned().collect(),
            facts: self.facts_snapshot().collect(),
            clashes: self.clash_log().to_vec(),
            required_category: self.required_category(),
        }
    }

    /// Reconstructs a registry from a manifest.  Adaptation handlers are
    /// *not* part of a manifest and must be re-attached by the importing
    /// layer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateAssumption`] if the manifest contains two
    /// assumptions with the same id.
    pub fn from_manifest(manifest: RegistryManifest) -> Result<Self, Error> {
        let mut registry = AssumptionRegistry::new();
        registry.set_required_category(manifest.required_category);
        for a in manifest.assumptions {
            registry.register(a)?;
        }
        // Replay the facts (silently; historical clashes are restored
        // verbatim below rather than re-derived).
        for (key, value) in manifest.facts {
            registry.restore_fact(key, value);
        }
        registry.restore_clash_log(manifest.clashes);
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn populated() -> AssumptionRegistry {
        let mut r = AssumptionRegistry::new();
        r.set_required_category(BouldingCategory::Cell);
        r.register(
            Assumption::builder("hvel")
                .statement("velocity fits i16")
                .kind(AssumptionKind::PhysicalEnvironment)
                .expects("hvel", Expectation::int_range(-32768, 32767))
                .criticality(Criticality::Catastrophic)
                .origin("ariane4")
                .build(),
        )
        .unwrap();
        r.register(
            Assumption::builder("mem")
                .expects("memory_technology", Expectation::equals("cmos"))
                .hardwired()
                .build(),
        )
        .unwrap();
        r.observe(Observation::new("hvel", 40_000i64));
        r.observe(Observation::new("memory_technology", "cmos"));
        r.observe(Observation::new("unrelated_fact", true));
        r
    }

    #[test]
    fn manifest_captures_everything_serialisable() {
        let r = populated();
        let m = r.manifest();
        assert_eq!(m.assumptions.len(), 2);
        assert_eq!(m.clashes.len(), 1);
        assert_eq!(m.required_category, BouldingCategory::Cell);
        assert_eq!(m.facts.get("hvel"), Some(&Value::Int(40_000)));
        assert_eq!(m.facts.get("unrelated_fact"), Some(&Value::Bool(true)));
    }

    #[test]
    fn json_roundtrip() {
        let m = populated().manifest();
        let json = m.to_json().unwrap();
        assert!(json.contains("hvel"));
        assert!(json.contains("Horning"));
        let back = RegistryManifest::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn registry_roundtrip_preserves_state() {
        let original = populated();
        let restored = AssumptionRegistry::from_manifest(original.manifest()).unwrap();
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.clash_log(), original.clash_log());
        assert_eq!(restored.required_category(), original.required_category());
        assert_eq!(restored.fact("hvel"), original.fact("hvel"));
        // The restored registry verifies identically.
        assert_eq!(restored.verify_all(), original.verify_all());
        // Handlers are gone: the restored registry is a Clockwork until
        // the importing layer re-attaches its machinery.
        assert_eq!(restored.effective_category(), BouldingCategory::Clockwork);
    }

    #[test]
    fn duplicate_ids_in_manifest_rejected() {
        let mut m = populated().manifest();
        let dup = m.assumptions[0].clone();
        m.assumptions.push(dup);
        assert!(matches!(
            AssumptionRegistry::from_manifest(m),
            Err(Error::DuplicateAssumption(_))
        ));
    }

    #[test]
    fn malformed_json_is_error() {
        assert!(RegistryManifest::from_json("{oops").is_err());
    }

    #[test]
    fn empty_manifest_roundtrip() {
        let m = RegistryManifest::default();
        let r = AssumptionRegistry::from_manifest(m.clone()).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.manifest(), m);
    }
}
