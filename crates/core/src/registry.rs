//! The assumption registry: stores assumptions, ingests observations,
//! detects clashes, diagnoses syndromes, and drives adaptation.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assumption::{Assumption, AssumptionId, Criticality, Visibility};
use crate::error::Error;
use crate::syndrome::{BouldingCategory, Syndrome};
use crate::value::{Expectation, Observation, Value};

/// What happened to a clash after detection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClashDisposition {
    /// Nobody was prepared to react: the clash stands.
    Unhandled,
    /// An adaptation handler rebound the assumption / reconfigured the
    /// system.  The note records what it did.
    Recovered(String),
    /// An adaptation handler ran but could not recover.  The note records
    /// why.
    RecoveryFailed(String),
}

impl fmt::Display for ClashDisposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClashDisposition::Unhandled => write!(f, "unhandled"),
            ClashDisposition::Recovered(n) => write!(f, "recovered: {n}"),
            ClashDisposition::RecoveryFailed(n) => write!(f, "recovery failed: {n}"),
        }
    }
}

/// An assumption-versus-context clash: the paper's "assumption failure".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clash {
    /// The violated assumption.
    pub assumption: AssumptionId,
    /// The fact whose observed truth violated it.
    pub fact_key: String,
    /// What the assumption expected.
    pub expected: Expectation,
    /// What was actually observed.
    pub observed: Value,
    /// Severity inherited from the assumption.
    pub criticality: Criticality,
    /// The syndromes this clash exhibits.
    pub syndromes: Vec<Syndrome>,
    /// Whether adaptation handled it.
    pub disposition: ClashDisposition,
}

impl fmt::Display for Clash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clash on [{}]: expected {} {} but observed {} ({})",
            self.assumption, self.fact_key, self.expected, self.observed, self.disposition
        )
    }
}

/// Result of feeding one observation into the registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObservationReport {
    /// Assumptions (re-)confirmed by the observation.
    pub satisfied: Vec<AssumptionId>,
    /// Assumptions violated by the observation.
    pub clashes: Vec<Clash>,
}

impl ObservationReport {
    /// True if the observation violated no assumption.
    #[must_use]
    pub fn all_satisfied(&self) -> bool {
        self.clashes.is_empty()
    }

    /// Clashes that remain unhandled or unrecovered.
    pub fn unrecovered(&self) -> impl Iterator<Item = &Clash> {
        self.clashes
            .iter()
            .filter(|c| !matches!(c.disposition, ClashDisposition::Recovered(_)))
    }
}

/// An adaptation handler: the registry's hook for turning clashes into
/// recoveries (the paper's "autonomic run-time executive").
///
/// Returns `Ok(note)` when the system was reconfigured to cope with the
/// observed truth, `Err(note)` when it could not.
pub type AdaptationHandler = Box<dyn FnMut(&Assumption, &Value) -> Result<String, String> + Send>;

/// Stores assumptions, matches them against observed context facts, and
/// keeps the audit trail the paper finds missing in practice.
///
/// See the [crate-level documentation](crate) for a walkthrough.
#[derive(Default)]
pub struct AssumptionRegistry {
    assumptions: BTreeMap<AssumptionId, Assumption>,
    facts: BTreeMap<String, Value>,
    handlers: BTreeMap<AssumptionId, AdaptationHandler>,
    clash_log: Vec<Clash>,
    required_category: BouldingCategory,
}

impl fmt::Debug for AssumptionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AssumptionRegistry")
            .field("assumptions", &self.assumptions.len())
            .field("facts", &self.facts.len())
            .field("handlers", &self.handlers.len())
            .field("clash_log", &self.clash_log.len())
            .field("required_category", &self.required_category)
            .finish()
    }
}

impl AssumptionRegistry {
    /// Creates an empty registry.  The environment's required Boulding
    /// category defaults to [`BouldingCategory::Clockwork`] (a benign,
    /// static environment).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares how much context-awareness the target environment demands.
    /// Clashes are co-diagnosed with [`Syndrome::Boulding`] when the
    /// system's *effective* category falls short of this.
    pub fn set_required_category(&mut self, required: BouldingCategory) {
        self.required_category = required;
    }

    /// The declared environmental requirement.
    #[must_use]
    pub fn required_category(&self) -> BouldingCategory {
        self.required_category
    }

    /// The system's effective Boulding category, deduced from its
    /// adaptation machinery:
    ///
    /// * no handlers at all → [`BouldingCategory::Clockwork`] ("predetermined,
    ///   necessary motions");
    /// * some but not all assumptions covered → [`BouldingCategory::Thermostat`]
    ///   (equilibrium maintenance "within limits");
    /// * every registered assumption covered → [`BouldingCategory::Cell`]
    ///   (open, self-maintaining structure).
    #[must_use]
    pub fn effective_category(&self) -> BouldingCategory {
        if self.handlers.is_empty() {
            BouldingCategory::Clockwork
        } else if self
            .assumptions
            .keys()
            .all(|id| self.handlers.contains_key(id))
        {
            BouldingCategory::Cell
        } else {
            BouldingCategory::Thermostat
        }
    }

    /// Registers an assumption.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateAssumption`] if the id is taken.
    pub fn register(&mut self, a: Assumption) -> Result<(), Error> {
        if self.assumptions.contains_key(a.id()) {
            return Err(Error::DuplicateAssumption(a.id().clone()));
        }
        self.assumptions.insert(a.id().clone(), a);
        Ok(())
    }

    /// Attaches an adaptation handler to an assumption.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownAssumption`] if the id is not registered, or
    /// [`Error::HandlerAlreadyAttached`] if a handler is already present.
    pub fn attach_handler(
        &mut self,
        id: impl Into<AssumptionId>,
        handler: AdaptationHandler,
    ) -> Result<(), Error> {
        let id = id.into();
        if !self.assumptions.contains_key(&id) {
            return Err(Error::UnknownAssumption(id));
        }
        if self.handlers.contains_key(&id) {
            return Err(Error::HandlerAlreadyAttached(id));
        }
        self.handlers.insert(id, handler);
        Ok(())
    }

    /// Detaches the adaptation handler from an assumption, returning
    /// whether one was attached.  Detaching demotes the system's
    /// effective Boulding category accordingly.
    pub fn detach_handler(&mut self, id: &AssumptionId) -> bool {
        self.handlers.remove(id).is_some()
    }

    /// Number of assumptions with adaptation handlers attached.
    #[must_use]
    pub fn handler_count(&self) -> usize {
        self.handlers.len()
    }

    /// Looks up an assumption.
    #[must_use]
    pub fn assumption(&self, id: &AssumptionId) -> Option<&Assumption> {
        self.assumptions.get(id)
    }

    /// Iterates over all registered assumptions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Assumption> {
        self.assumptions.values()
    }

    /// Number of registered assumptions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assumptions.len()
    }

    /// True when no assumptions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assumptions.is_empty()
    }

    /// The current truth of a fact, if any observation reported it.
    #[must_use]
    pub fn fact(&self, key: &str) -> Option<&Value> {
        self.facts.get(key)
    }

    /// All observed facts, in key order.
    pub fn facts_snapshot(&self) -> impl Iterator<Item = (String, Value)> + '_ {
        self.facts.iter().map(|(k, v)| (k.clone(), v.clone()))
    }

    /// Restores a fact without re-checking assumptions (manifest import).
    pub(crate) fn restore_fact(&mut self, key: String, value: Value) {
        self.facts.insert(key, value);
    }

    /// Restores a clash history verbatim (manifest import).
    pub(crate) fn restore_clash_log(&mut self, clashes: Vec<Clash>) {
        self.clash_log = clashes;
    }

    /// All recorded clashes, oldest first.
    #[must_use]
    pub fn clash_log(&self) -> &[Clash] {
        &self.clash_log
    }

    /// Hardwired assumptions: latent Hidden Intelligence waiting to strike.
    /// Auditing them is the §2.3 prescription ("mistakenly concealing or
    /// discarding important knowledge").
    pub fn hidden_intelligence_audit(&self) -> impl Iterator<Item = &Assumption> {
        self.assumptions
            .values()
            .filter(|a| a.visibility() == Visibility::Hardwired)
    }

    /// Feeds one observation into the registry: updates the fact base,
    /// re-checks every assumption constraining that fact, diagnoses
    /// syndromes for each clash, and runs adaptation handlers.
    pub fn observe(&mut self, obs: Observation) -> ObservationReport {
        self.facts.insert(obs.key.clone(), obs.value.clone());
        let mut report = ObservationReport::default();

        // Collect affected ids first: handler invocation needs &mut self
        // disjoint from the assumption map iteration.
        let affected: Vec<AssumptionId> = self
            .assumptions
            .values()
            .filter(|a| a.fact_key() == obs.key)
            .map(|a| a.id().clone())
            .collect();

        let boulding_shortfall = !self
            .effective_category()
            .suffices_for(self.required_category);

        for id in affected {
            let a = &self.assumptions[&id];
            if a.holds_for(&obs.value) {
                report.satisfied.push(id);
                continue;
            }

            let mut syndromes = vec![Syndrome::Horning];
            if a.visibility() == Visibility::Hardwired {
                syndromes.push(Syndrome::HiddenIntelligence);
            }
            if boulding_shortfall || !self.handlers.contains_key(&id) {
                syndromes.push(Syndrome::Boulding);
            }

            let disposition = match self.handlers.get_mut(&id) {
                None => ClashDisposition::Unhandled,
                Some(h) => {
                    let a = &self.assumptions[&id];
                    match h(a, &obs.value) {
                        Ok(note) => ClashDisposition::Recovered(note),
                        Err(note) => ClashDisposition::RecoveryFailed(note),
                    }
                }
            };

            let a = &self.assumptions[&id];
            let clash = Clash {
                assumption: id,
                fact_key: obs.key.clone(),
                expected: a.expectation().clone(),
                observed: obs.value.clone(),
                criticality: a.criticality(),
                syndromes,
                disposition,
            };
            self.clash_log.push(clash.clone());
            report.clashes.push(clash);
        }
        report
    }

    /// Runs every probe in a probe set and feeds all resulting
    /// observations through [`AssumptionRegistry::observe`], returning the
    /// concatenated reports.
    pub fn observe_all(
        &mut self,
        observations: impl IntoIterator<Item = Observation>,
    ) -> ObservationReport {
        let mut total = ObservationReport::default();
        for obs in observations {
            let r = self.observe(obs);
            total.satisfied.extend(r.satisfied);
            total.clashes.extend(r.clashes);
        }
        total
    }

    /// Verifies every registered assumption against the *current* fact
    /// base.  Facts never observed count as unverifiable and are returned
    /// separately — an unknown truth is not (yet) a clash, but it is a gap.
    #[must_use]
    pub fn verify_all(&self) -> VerificationSummary {
        let mut summary = VerificationSummary::default();
        for a in self.assumptions.values() {
            match self.facts.get(a.fact_key()) {
                None => summary.unverifiable.push(a.id().clone()),
                Some(v) if a.holds_for(v) => summary.holding.push(a.id().clone()),
                Some(_) => summary.violated.push(a.id().clone()),
            }
        }
        summary
    }
}

/// Outcome of [`AssumptionRegistry::verify_all`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerificationSummary {
    /// Assumptions whose fact is known and satisfied.
    pub holding: Vec<AssumptionId>,
    /// Assumptions whose fact is known and violated.
    pub violated: Vec<AssumptionId>,
    /// Assumptions whose fact has never been observed.
    pub unverifiable: Vec<AssumptionId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assumption::{AssumptionKind, BindingTime};

    fn velocity_assumption() -> Assumption {
        Assumption::builder("hvel")
            .statement("horizontal velocity fits i16")
            .kind(AssumptionKind::PhysicalEnvironment)
            .expects("hvel", Expectation::int_range(-32768, 32767))
            .criticality(Criticality::Catastrophic)
            .build()
    }

    #[test]
    fn register_and_lookup() {
        let mut r = AssumptionRegistry::new();
        assert!(r.is_empty());
        r.register(velocity_assumption()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.assumption(&"hvel".into()).is_some());
        assert!(r.assumption(&"nope".into()).is_none());
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        assert_eq!(
            r.register(velocity_assumption()),
            Err(Error::DuplicateAssumption("hvel".into()))
        );
    }

    #[test]
    fn satisfying_observation_reports_satisfied() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        let rep = r.observe(Observation::new("hvel", 1000i64));
        assert!(rep.all_satisfied());
        assert_eq!(rep.satisfied, vec![AssumptionId::new("hvel")]);
        assert_eq!(r.fact("hvel"), Some(&Value::Int(1000)));
    }

    #[test]
    fn clash_is_detected_and_logged() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        let rep = r.observe(Observation::new("hvel", 40_000i64));
        assert_eq!(rep.clashes.len(), 1);
        let c = &rep.clashes[0];
        assert_eq!(c.observed, Value::Int(40_000));
        assert_eq!(c.criticality, Criticality::Catastrophic);
        assert!(c.syndromes.contains(&Syndrome::Horning));
        assert_eq!(c.disposition, ClashDisposition::Unhandled);
        assert_eq!(r.clash_log().len(), 1);
        assert_eq!(rep.unrecovered().count(), 1);
    }

    #[test]
    fn hardwired_clash_adds_hidden_intelligence() {
        let mut r = AssumptionRegistry::new();
        r.register(
            Assumption::builder("legacy")
                .expects("k", Expectation::equals(1i64))
                .hardwired()
                .build(),
        )
        .unwrap();
        let rep = r.observe(Observation::new("k", 2i64));
        assert!(rep.clashes[0]
            .syndromes
            .contains(&Syndrome::HiddenIntelligence));
    }

    #[test]
    fn exposed_clash_has_no_hidden_intelligence() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        let rep = r.observe(Observation::new("hvel", 40_000i64));
        assert!(!rep.clashes[0]
            .syndromes
            .contains(&Syndrome::HiddenIntelligence));
    }

    #[test]
    fn handler_turns_clash_into_recovery() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        r.attach_handler(
            "hvel",
            Box::new(|_, v| Ok(format!("re-bound range to cover {v}"))),
        )
        .unwrap();
        let rep = r.observe(Observation::new("hvel", 40_000i64));
        assert!(matches!(
            rep.clashes[0].disposition,
            ClashDisposition::Recovered(_)
        ));
        assert_eq!(rep.unrecovered().count(), 0);
        // With handlers on every assumption the system is a Cell...
        assert_eq!(r.effective_category(), BouldingCategory::Cell);
        // ...so no Boulding co-diagnosis.
        assert!(!rep.clashes[0].syndromes.contains(&Syndrome::Boulding));
    }

    #[test]
    fn failed_recovery_is_reported() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        r.attach_handler("hvel", Box::new(|_, _| Err("no spare range".into())))
            .unwrap();
        let rep = r.observe(Observation::new("hvel", 40_000i64));
        assert!(matches!(
            rep.clashes[0].disposition,
            ClashDisposition::RecoveryFailed(_)
        ));
        assert_eq!(rep.unrecovered().count(), 1);
    }

    #[test]
    fn handler_errors() {
        let mut r = AssumptionRegistry::new();
        assert_eq!(
            r.attach_handler("ghost", Box::new(|_, _| Ok(String::new())))
                .unwrap_err(),
            Error::UnknownAssumption("ghost".into())
        );
        r.register(velocity_assumption()).unwrap();
        r.attach_handler("hvel", Box::new(|_, _| Ok(String::new())))
            .unwrap();
        assert_eq!(
            r.attach_handler("hvel", Box::new(|_, _| Ok(String::new())))
                .unwrap_err(),
            Error::HandlerAlreadyAttached("hvel".into())
        );
    }

    #[test]
    fn detach_handler_demotes_category() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        r.attach_handler("hvel", Box::new(|_, _| Ok(String::new())))
            .unwrap();
        assert_eq!(r.handler_count(), 1);
        assert_eq!(r.effective_category(), BouldingCategory::Cell);
        assert!(r.detach_handler(&"hvel".into()));
        assert!(!r.detach_handler(&"hvel".into()));
        assert_eq!(r.handler_count(), 0);
        assert_eq!(r.effective_category(), BouldingCategory::Clockwork);
        // The handler slot is free again.
        r.attach_handler("hvel", Box::new(|_, _| Ok(String::new())))
            .unwrap();
    }

    #[test]
    fn boulding_diagnosis_without_handler() {
        let mut r = AssumptionRegistry::new();
        r.set_required_category(BouldingCategory::Cell);
        assert_eq!(r.required_category(), BouldingCategory::Cell);
        r.register(velocity_assumption()).unwrap();
        assert_eq!(r.effective_category(), BouldingCategory::Clockwork);
        let rep = r.observe(Observation::new("hvel", 40_000i64));
        assert!(rep.clashes[0].syndromes.contains(&Syndrome::Boulding));
    }

    #[test]
    fn effective_category_progression() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        r.register(
            Assumption::builder("other")
                .expects("o", Expectation::Present)
                .build(),
        )
        .unwrap();
        assert_eq!(r.effective_category(), BouldingCategory::Clockwork);
        r.attach_handler("hvel", Box::new(|_, _| Ok(String::new())))
            .unwrap();
        assert_eq!(r.effective_category(), BouldingCategory::Thermostat);
        r.attach_handler("other", Box::new(|_, _| Ok(String::new())))
            .unwrap();
        assert_eq!(r.effective_category(), BouldingCategory::Cell);
    }

    #[test]
    fn observe_all_concatenates() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        let rep = r.observe_all(vec![
            Observation::new("hvel", 10i64),
            Observation::new("hvel", 40_000i64),
            Observation::new("unrelated", true),
        ]);
        assert_eq!(rep.satisfied.len(), 1);
        assert_eq!(rep.clashes.len(), 1);
    }

    #[test]
    fn verify_all_three_way_split() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        r.register(
            Assumption::builder("never-observed")
                .expects("ghost_fact", Expectation::Present)
                .build(),
        )
        .unwrap();
        r.observe(Observation::new("hvel", 5i64));
        let s = r.verify_all();
        assert_eq!(s.holding, vec![AssumptionId::new("hvel")]);
        assert!(s.violated.is_empty());
        assert_eq!(s.unverifiable, vec![AssumptionId::new("never-observed")]);

        r.observe(Observation::new("hvel", 99_999i64));
        let s = r.verify_all();
        assert_eq!(s.violated, vec![AssumptionId::new("hvel")]);
    }

    #[test]
    fn audit_lists_hardwired_only() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        r.register(
            Assumption::builder("legacy")
                .expects("k", Expectation::Present)
                .hardwired()
                .build(),
        )
        .unwrap();
        let audited: Vec<_> = r
            .hidden_intelligence_audit()
            .map(|a| a.id().clone())
            .collect();
        assert_eq!(audited, vec![AssumptionId::new("legacy")]);
    }

    #[test]
    fn unrelated_fact_touches_nothing() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        let rep = r.observe(Observation::new("temperature", 20i64));
        assert!(rep.satisfied.is_empty());
        assert!(rep.clashes.is_empty());
        assert_eq!(r.fact("temperature"), Some(&Value::Int(20)));
    }

    #[test]
    fn clash_and_disposition_display() {
        let mut r = AssumptionRegistry::new();
        r.register(velocity_assumption()).unwrap();
        let rep = r.observe(Observation::new("hvel", 40_000i64));
        let s = rep.clashes[0].to_string();
        assert!(s.contains("hvel"));
        assert!(s.contains("40000"));
        assert!(ClashDisposition::Recovered("x".into())
            .to_string()
            .contains("recovered"));
        assert!(ClashDisposition::RecoveryFailed("y".into())
            .to_string()
            .contains("failed"));
    }

    #[test]
    fn debug_impl_summarizes() {
        let r = AssumptionRegistry::new();
        let dbg = format!("{r:?}");
        assert!(dbg.contains("AssumptionRegistry"));
    }

    #[test]
    fn binding_time_recorded() {
        // Regression guard: registering doesn't mutate the assumption.
        let mut r = AssumptionRegistry::new();
        let a = Assumption::builder("x")
            .expects("k", Expectation::Present)
            .binding_time(BindingTime::RunTime)
            .build();
        r.register(a).unwrap();
        assert_eq!(
            r.assumption(&"x".into()).unwrap().binding_time(),
            BindingTime::RunTime
        );
    }
}
