//! # afta-core — explicit, late-bound, runtime-monitored design assumptions
//!
//! This crate is the primary contribution of the AFTA reproduction: a
//! framework that turns the *design assumptions* a software system rests on
//! into first-class, inspectable, verifiable objects, following De Florio's
//! DSN 2009 position paper "Software Assumptions Failure Tolerance: Role,
//! Strategies, and Visions".
//!
//! The paper's thesis is that most design assumptions — about hardware
//! failure semantics, third-party software, the execution environment, and
//! the physical environment — end up "sifted off or hardwired in the
//! executable code", and that three hazards follow:
//!
//! * the **Horning syndrome**: the environment does something the designer
//!   never anticipated (Ariane 5's horizontal-velocity overflow);
//! * the **Hidden Intelligence syndrome**: vital knowledge is concealed or
//!   discarded while hiding complexity (the Ariane 4 range assumption that
//!   was never recorded anywhere inspectable);
//! * the **Boulding syndrome**: the system is designed with less
//!   context-awareness than its environment demands (the Therac-25 as a
//!   "clockwork" deployed where a self-monitoring "cell" was needed).
//!
//! The framework addresses them with four cooperating pieces:
//!
//! 1. [`Assumption`] — a named, documented hypothesis with an explicit
//!    [`Expectation`] about a context *fact*, a [`BindingTime`], a
//!    [`Provenance`] trail, and a [`Visibility`] (exposed vs. hardwired).
//! 2. [`AssumptionRegistry`] — stores assumptions, ingests
//!    [`Observation`]s from [`ContextProbe`]s, detects
//!    assumption-versus-context **clashes**, diagnoses the syndromes, and
//!    invokes registered adaptation handlers (turning a clash into a
//!    recovery where possible).
//! 3. [`AssumptionVar`] — the paper's *assumption variable*: a set of
//!    design-time alternatives whose **binding is postponed** to compile,
//!    deployment, or run time, selected by the §3.1 min-cost-among-tolerant
//!    algorithm or by a custom [`Binder`].
//! 4. [`KnowledgeWeb`] — the §5 vision: cooperating agents attached to the
//!    model/compile/deployment/run-time layers that exchange deductions so
//!    that "knowledge slipping from one layer is still caught in another".
//!
//! # Quickstart
//!
//! ```
//! use afta_core::prelude::*;
//!
//! // Declare the (in)famous Ariane-4 assumption explicitly.
//! let assumption = Assumption::builder("hvel-16bit")
//!     .statement("horizontal velocity fits a 16-bit signed integer")
//!     .kind(AssumptionKind::PhysicalEnvironment)
//!     .expects("horizontal_velocity", Expectation::int_range(-32768, 32767))
//!     .binding_time(BindingTime::DesignTime)
//!     .origin("ariane4/flight-software")
//!     .build();
//!
//! let mut registry = AssumptionRegistry::new();
//! registry.register(assumption)?;
//!
//! // The run-time environment reports a context fact...
//! let report = registry.observe(Observation::new("horizontal_velocity", 40_000i64));
//!
//! // ...and the clash is detected instead of exploding the rocket.
//! assert_eq!(report.clashes.len(), 1);
//! assert!(report.clashes[0].syndromes.contains(&Syndrome::Horning));
//! # Ok::<(), afta_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod assumption;
pub mod binding;
pub mod contract;
pub mod error;
pub mod knowledge;
#[macro_use]
pub mod macros;
pub mod manifest;
pub mod monitor;
pub mod probe;
pub mod registry;
pub mod syndrome;
pub mod value;

pub use assumption::{
    Assumption, AssumptionBuilder, AssumptionId, AssumptionKind, BindingTime, Criticality,
    Provenance, Visibility,
};
pub use binding::{Alternative, AssumptionVar, Binder, BindingError, MinCostBinder};
pub use contract::{
    ClauseDescriptor, Condition, Contract, ContractBuilder, ContractDescriptor, ContractViolation,
    ViolationKind,
};
pub use error::Error;
pub use knowledge::{Deduction, KnowledgeAgent, KnowledgeWeb, Layer};
pub use manifest::RegistryManifest;
pub use monitor::{AssumptionMonitor, MonitorEvent, MonitorStats};
pub use probe::{ContextProbe, FnProbe, ProbeSet};
pub use registry::{AssumptionRegistry, Clash, ClashDisposition, ObservationReport};
pub use syndrome::{BouldingCategory, Syndrome};
pub use value::{Expectation, Observation, Value};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::assumption::{
        Assumption, AssumptionId, AssumptionKind, BindingTime, Criticality, Provenance, Visibility,
    };
    pub use crate::binding::{Alternative, AssumptionVar, Binder, MinCostBinder};
    pub use crate::contract::{Contract, ContractViolation};
    pub use crate::knowledge::{Deduction, KnowledgeAgent, KnowledgeWeb, Layer};
    pub use crate::probe::{ContextProbe, FnProbe, ProbeSet};
    pub use crate::registry::{AssumptionRegistry, Clash, ClashDisposition};
    pub use crate::syndrome::{BouldingCategory, Syndrome};
    pub use crate::value::{Expectation, Observation, Value};
}
