//! Property tests on the core assumption framework.

use afta_core::prelude::*;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Text),
    ]
}

proptest! {
    /// De Morgan-ish laws for expectation combinators: `not(any) ==
    /// all(not)` and vice versa, pointwise on arbitrary values.
    #[test]
    fn combinator_duality(
        a in -100i64..100,
        b in -100i64..100,
        observed in value_strategy(),
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        let e1 = Expectation::int_range(lo, hi);
        let e2 = Expectation::equals(a);
        let any = e1.clone().or(e2.clone());
        let not_any = any.not();
        let all_not = e1.not().and(e2.not());
        prop_assert_eq!(not_any.admits(&observed), all_not.admits(&observed));
    }

    /// Double negation is the identity, pointwise.
    #[test]
    fn double_negation(x in -1000i64..1000, observed in value_strategy()) {
        let e = Expectation::AtMost(x as f64);
        prop_assert_eq!(e.clone().not().not().admits(&observed), e.admits(&observed));
    }

    /// Registry bookkeeping: after any interleaving of observations, the
    /// clash log length equals the total clashes reported, and verify_all
    /// partitions the assumptions exactly.
    #[test]
    fn registry_accounting(
        observations in proptest::collection::vec((0usize..4, -50i64..50), 0..60),
    ) {
        let mut registry = AssumptionRegistry::new();
        let keys = ["k0", "k1", "k2", "k3"];
        for (i, key) in keys.iter().enumerate() {
            registry
                .register(
                    Assumption::builder(format!("a{i}"))
                        .expects(*key, Expectation::int_range(0, 25))
                        .build(),
                )
                .unwrap();
        }
        let mut reported = 0usize;
        for (ki, v) in observations {
            let report = registry.observe(Observation::new(keys[ki], v));
            reported += report.clashes.len();
            prop_assert!(report.satisfied.len() + report.clashes.len() <= 1);
        }
        prop_assert_eq!(registry.clash_log().len(), reported);
        let summary = registry.verify_all();
        prop_assert_eq!(
            summary.holding.len() + summary.violated.len() + summary.unverifiable.len(),
            registry.len()
        );
    }

    /// Manifest roundtrip preserves assumptions, facts, and clash history
    /// for arbitrary observation sequences.
    #[test]
    fn manifest_roundtrip(
        observations in proptest::collection::vec(-50i64..50, 0..30),
    ) {
        let mut registry = AssumptionRegistry::new();
        registry
            .register(
                Assumption::builder("bounded")
                    .expects("x", Expectation::int_range(0, 10))
                    .build(),
            )
            .unwrap();
        for v in observations {
            registry.observe(Observation::new("x", v));
        }
        let manifest = registry.manifest();
        let restored = AssumptionRegistry::from_manifest(manifest.clone()).unwrap();
        prop_assert_eq!(restored.manifest(), manifest);
    }

    /// Min-cost binding is optimal and stable: the chosen alternative
    /// tolerates the behaviour and no tolerant alternative is cheaper.
    #[test]
    fn min_cost_binding_optimality(
        costs in proptest::collection::vec(0.0f64..100.0, 1..10),
        tolerance_mask in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let mut var = AssumptionVar::new("v", BindingTime::RunTime);
        for (i, &cost) in costs.iter().enumerate() {
            let tolerates: Vec<&str> = if tolerance_mask[i] { vec!["b"] } else { vec![] };
            var.push(Alternative::new(format!("alt{i}"), i, tolerates, cost));
        }
        let any_tolerant = costs.iter().enumerate().any(|(i, _)| tolerance_mask[i]);
        match var.bind("b", &MinCostBinder) {
            Ok(&chosen) => {
                prop_assert!(tolerance_mask[chosen]);
                for (i, &cost) in costs.iter().enumerate() {
                    if tolerance_mask[i] {
                        prop_assert!(cost >= costs[chosen]);
                    }
                }
            }
            Err(_) => prop_assert!(!any_tolerant),
        }
    }
}
