//! Documentation-sync gate: `docs/OPERATIONS.md` and the code may not
//! drift apart.
//!
//! Two directions are enforced:
//!
//! * every `--flag` the manual mentions must exist in [`CLI_HELP`]
//!   (so the manual never documents a flag the binary rejects), and
//! * every field of [`ServeConfig`], [`TenantQuotas`], and
//!   [`ReactorConfig`] must be mentioned in the manual (so adding a
//!   knob without documenting it fails the build), as must every
//!   wire-level reject reason.

use afta_serve::{ReactorConfig, RejectReason, ServeConfig, TenantQuotas, CLI_HELP};

fn operations_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OPERATIONS.md");
    std::fs::read_to_string(path).expect("docs/OPERATIONS.md exists")
}

/// Every `--foo-bar` token in `text`, deduplicated.
fn flags_in(text: &str) -> Vec<String> {
    let mut flags = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("--") {
        let start = i + at;
        let mut end = start + 2;
        // A flag starts with a letter; this skips table rules (`---`)
        // and em-dash runs.
        if end < bytes.len() && bytes[end].is_ascii_lowercase() {
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end] == b'-'
                    || bytes[end].is_ascii_digit())
            {
                end += 1;
            }
        }
        if end > start + 2 {
            let flag = text[start..end].to_string();
            if !flags.contains(&flag) {
                flags.push(flag);
            }
        }
        i = end;
    }
    flags
}

/// Field names out of a derived `Debug` render like
/// `ServeConfig { max_tenants: 256, .. }`.
fn debug_fields(debug: &str) -> Vec<String> {
    let body = debug.split_once('{').map(|(_, rest)| rest).unwrap_or(debug);
    body.split(',')
        .filter_map(|part| part.split_once(':'))
        .map(|(name, _)| name.trim().trim_matches('}').to_string())
        .filter(|name| name.chars().all(|c| c.is_ascii_lowercase() || c == '_'))
        .filter(|name| !name.is_empty())
        .collect()
}

#[test]
fn every_documented_flag_exists_in_the_cli() {
    let doc = operations_md();
    // The manual also shows `afta-ci check` and `cargo test`
    // invocations; those flags belong to other binaries.
    let foreign = ["--bench", "--manifests", "--lib"];
    for flag in flags_in(&doc) {
        if foreign.contains(&flag.as_str()) {
            continue;
        }
        assert!(
            CLI_HELP.contains(&flag),
            "docs/OPERATIONS.md documents {flag}, which afta-serve does not accept"
        );
    }
}

#[test]
fn every_cli_flag_is_documented() {
    let doc = operations_md();
    for flag in flags_in(CLI_HELP) {
        assert!(
            doc.contains(&flag),
            "afta-serve accepts {flag}, which docs/OPERATIONS.md never mentions"
        );
    }
}

#[test]
fn every_config_knob_is_documented() {
    let doc = operations_md();
    for (what, debug) in [
        ("ServeConfig", format!("{:?}", ServeConfig::default())),
        ("TenantQuotas", format!("{:?}", TenantQuotas::default())),
        ("ReactorConfig", format!("{:?}", ReactorConfig::default())),
    ] {
        let fields = debug_fields(&debug);
        assert!(
            !fields.is_empty(),
            "no fields parsed out of {what}'s Debug: {debug}"
        );
        for field in fields {
            assert!(
                doc.contains(&field),
                "{what}.{field} is a real knob docs/OPERATIONS.md never mentions"
            );
        }
    }
}

#[test]
fn every_reject_reason_is_documented() {
    let doc = operations_md();
    for reason in [
        RejectReason::UnknownTenant,
        RejectReason::TenantExists,
        RejectReason::TenantLimit,
        RejectReason::Quiescing,
        RejectReason::QuotaExceeded,
        RejectReason::StreamLimit,
        RejectReason::BadFrame,
    ] {
        let wire = reason.to_string();
        assert!(
            doc.contains(&wire),
            "reject reason `{wire}` is on the wire but not in docs/OPERATIONS.md"
        );
    }
}

#[test]
fn every_server_metric_is_documented() {
    let doc = operations_md();
    for metric in [
        "serve.frames",
        "serve.handled",
        "serve.queued",
        "serve.rejected",
        "serve.bad_frames",
        "serve.reactor.connections",
        "serve.reactor.peak_connections",
        "serve.reactor.accepted",
        "serve.reactor.refused",
        "serve.reactor.closed",
        "serve.reactor.sweep",
    ] {
        assert!(
            doc.contains(metric),
            "metric `{metric}` is emitted but not in docs/OPERATIONS.md"
        );
    }
}
