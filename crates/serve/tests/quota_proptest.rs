//! Quota isolation properties: an over-quota tenant is throttled with a
//! retry-after hint while its siblings' outcomes stay bit-identical to a
//! solo run, regardless of how the two tenants' frames interleave on
//! arrival.
//!
//! The frames are enqueued without pumping in between, so the bounded
//! mailbox — not scheduling luck — decides what is admitted: the first
//! `cap` data frames of the noisy tenant queue, every later one rejects.

use afta_serve::{
    observe_value, Body, ClientAddr, Enqueued, Frame, RejectReason, Reply, Request, ServeConfig,
    ServerCore, TenantId,
};
use afta_telemetry::Registry;
use proptest::prelude::*;

const NOISY: u16 = 0;
const QUIET: u16 = 1;

/// One pre-encoded data frame plus the address it arrives from.
struct Arrival {
    addr: ClientAddr,
    bytes: Vec<u8>,
}

fn observe_frame(seed: u64, tenant: u16, stream: u32, round: u64) -> Arrival {
    Arrival {
        addr: ClientAddr(1000 + u64::from(tenant) * 100 + u64::from(stream)),
        bytes: Frame::request(
            TenantId(tenant),
            stream,
            Request::Observe {
                key: "ballot".into(),
                value: observe_value(seed, tenant, stream, round),
            },
        )
        .encode(),
    }
}

fn register(core: &mut ServerCore, tenant: u16, mailbox_cap: usize) {
    let frame = Frame::request(
        TenantId(tenant),
        0,
        Request::RegisterTenant {
            expected_clients: u32::MAX, // rounds never complete: pure quota test
            mailbox_cap,
            ballot_min: -100,
            ballot_max: 100,
        },
    );
    match core.enqueue(ClientAddr(u64::from(tenant) + 1), &frame.encode()) {
        Enqueued::Handled(replies) => {
            let reply = decode_reply(&replies[0].1);
            assert!(matches!(reply, Reply::Registered { tenant: t } if t == tenant));
        }
        other => panic!("registration was not handled inline: {other:?}"),
    }
}

fn decode_reply(bytes: &[u8]) -> Reply {
    match Frame::decode(bytes)
        .expect("server emits valid frames")
        .body
    {
        Body::Reply(reply) => reply,
        Body::Request(r) => panic!("server sent a request: {r:?}"),
    }
}

/// Drives the quiet tenant alone — same frames, no noisy sibling — and
/// returns its digest: the envelope the shared run must land inside.
fn solo_digest(frames: &[Arrival]) -> afta_serve::TenantDigest {
    let mut core = ServerCore::new(ServeConfig::default(), &Registry::disabled());
    register(&mut core, QUIET, 0); // 0 = the server default (64)
    for arrival in frames {
        match core.enqueue(arrival.addr, &arrival.bytes) {
            Enqueued::Queued(tenant) => assert_eq!(tenant.0, QUIET),
            other => panic!("solo quiet frame not queued: {other:?}"),
        }
    }
    core.pump_all();
    core.tenant_digest(TenantId(QUIET)).expect("quiet digest")
}

proptest! {
    /// The noisy tenant floods past its mailbox cap: exactly the
    /// overflow is rejected, every rejection carries the configured
    /// retry-after hint, and the quiet tenant's digest is bit-identical
    /// to its solo run — under any interleaving of the two arrival
    /// streams.
    #[test]
    fn over_quota_tenant_is_throttled_without_collateral(
        cap in 2usize..8,
        extra in 1usize..12,
        quiet_frames in 1usize..6,
        seed in any::<u64>(),
        lace in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let noisy: Vec<Arrival> = (0..cap + extra)
            .map(|i| observe_frame(seed, NOISY, i as u32, 1))
            .collect();
        let quiet: Vec<Arrival> = (0..quiet_frames)
            .map(|i| observe_frame(seed, QUIET, i as u32, 1))
            .collect();
        let want = solo_digest(&quiet);

        let config = ServeConfig::default();
        let retry_hint = config.retry_after_ms;
        let mut core = ServerCore::new(config, &Registry::disabled());
        register(&mut core, NOISY, cap);
        register(&mut core, QUIET, 0); // default cap: the quiet side never overflows

        // Merge the two arrival streams; `lace` picks which side goes
        // next, each side keeping its own order (a client's frames
        // cannot overtake each other on one connection).
        let (mut n, mut q) = (noisy.iter(), quiet.iter());
        let mut merged: Vec<&Arrival> = Vec::new();
        for take_noisy in lace.iter().chain(std::iter::repeat(&true)) {
            match if *take_noisy { n.next() } else { q.next() } {
                Some(arrival) => merged.push(arrival),
                None => break,
            }
        }
        merged.extend(n);
        merged.extend(q);
        prop_assert_eq!(merged.len(), noisy.len() + quiet.len());

        let mut rejected = 0usize;
        for arrival in merged {
            match core.enqueue(arrival.addr, &arrival.bytes) {
                Enqueued::Queued(_) => {}
                Enqueued::Rejected(replies) => {
                    rejected += 1;
                    match decode_reply(&replies[0].1) {
                        Reply::Rejected { reason, retry_after_ms } => {
                            prop_assert_eq!(reason, RejectReason::QuotaExceeded);
                            prop_assert_eq!(retry_after_ms, retry_hint);
                        }
                        other => panic!("rejection reply was {other:?}"),
                    }
                }
                Enqueued::Handled(replies) => {
                    panic!("data frame handled inline: {:?}", decode_reply(&replies[0].1))
                }
            }
        }
        core.pump_all();

        // Exactly the overflow bounced (the quiet tenant runs under the
        // roomy default cap, so only the noisy mailbox can trip)...
        prop_assert_eq!(rejected, extra);
        let noisy_digest = core.tenant_digest(TenantId(NOISY)).expect("noisy digest");
        prop_assert_eq!(noisy_digest.observes, cap as u64);
        prop_assert_eq!(noisy_digest.rejected, extra as u64);
        // ...and the quiet tenant cannot tell the noisy one was ever
        // there: same digest, same counters, bit for bit.
        let got = core.tenant_digest(TenantId(QUIET)).expect("quiet digest");
        prop_assert_eq!(got, want);
    }
}
