//! The E8 differential as an integration test: the sim frontend and the
//! TCP reactor must be indistinguishable at the digest level.
//!
//! CI runs the full pin-sized differential (8 tenants x 16 streams x 12
//! rounds) through `afta-serve e8 --transport both` and the `e8.serve`
//! JUnit suite; this test keeps a smaller always-on copy in the plain
//! `cargo test` path so a divergence never needs a special invocation
//! to surface.

use afta_net::TransportKind;
use afta_serve::{
    differential_matches, run_serve_differential, run_serve_experiment, ServeExperimentConfig,
};
use afta_telemetry::Registry;

fn small_config() -> ServeExperimentConfig {
    ServeExperimentConfig {
        tenants: 3,
        clients: 4,
        rounds: 4,
        ..ServeExperimentConfig::default()
    }
}

#[test]
fn sim_and_tcp_frontends_agree_bit_for_bit() {
    let (sim, tcp) = run_serve_differential(&small_config(), &Registry::disabled());
    assert_eq!(sim.transport, "sim");
    assert_eq!(tcp.transport, "tcp");
    assert!(
        differential_matches(&sim, &tcp),
        "sim {} vs tcp {}",
        sim.combined,
        tcp.combined
    );
    // The rendered digests match tenant by tenant, not just in the fold.
    for (a, b) in sim.digests.iter().zip(&tcp.digests) {
        assert_eq!(a, b);
    }
}

#[test]
fn the_differential_is_sensitive_to_the_seed() {
    let base = run_serve_experiment(&small_config(), &Registry::disabled());
    let other = run_serve_experiment(
        &ServeExperimentConfig {
            seed: 43,
            ..small_config()
        },
        &Registry::disabled(),
    );
    assert_ne!(
        base.combined, other.combined,
        "a different seed must move the combined digest, or the pin proves nothing"
    );
}

#[test]
fn the_lock_step_driver_never_trips_quotas() {
    let report = run_serve_experiment(
        &ServeExperimentConfig {
            transport: TransportKind::Tcp,
            ..small_config()
        },
        &Registry::disabled(),
    );
    assert_eq!(report.rejects, 0);
    assert_eq!(
        report.rounds,
        u64::from(small_config().tenants) * small_config().rounds
    );
}
