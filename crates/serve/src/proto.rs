//! The multiplexed wire protocol of the assumption-monitoring service.
//!
//! Many tenants and many client streams share one connection, so every
//! message travels inside a [`Frame`] with a fixed 7-byte header:
//!
//! ```text
//! offset  size  field
//! 0       2     tenant id, u16 big-endian
//! 2       4     stream id, u32 big-endian (one client within the tenant)
//! 6       1     kind: 1 = request, 2 = reply
//! 7       ...   JSON body (a `Request` or a `Reply`)
//! ```
//!
//! Over [`afta_net::Transport`] the frame *is* the envelope payload.
//! Over raw TCP (the reactor path) each frame is additionally wrapped in
//! a `u32` big-endian length prefix, exactly like `TcpTransport`'s own
//! framing, so a socket carries `[len][frame][len][frame]...`.
//!
//! The body stays JSON (like [`afta_net::Wire`]) so frames are
//! inspectable with nothing fancier than `xxd`; the binary header exists
//! so the reactor can route a frame to its tenant worker without parsing
//! JSON on the reactor thread.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Frame kind byte: the body is a [`Request`].
pub const KIND_REQUEST: u8 = 1;
/// Frame kind byte: the body is a [`Reply`].
pub const KIND_REPLY: u8 = 2;
/// Bytes before the JSON body: tenant (2) + stream (4) + kind (1).
pub const FRAME_HEADER_LEN: usize = 7;

/// Identifies one tenant hosted by the server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u16);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Everything a client can ask the server to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Creates the tenant named in the frame header with the given
    /// quotas.  Must arrive before any data request for that tenant.
    RegisterTenant {
        /// Client streams the tenant's voting rounds expect; a round
        /// completes when all of them have balloted (or on [`Request::Tick`]).
        expected_clients: u32,
        /// Bounded mailbox capacity (requests queued but not yet
        /// processed); `0` picks the server default.
        mailbox_cap: usize,
        /// Lower bound of the tenant's `ballot` context assumption.
        ballot_min: i64,
        /// Upper bound of the tenant's `ballot` context assumption.
        ballot_max: i64,
    },
    /// Stops admitting data requests for the tenant; digests stay
    /// readable and the tenant can still be evicted.
    Quiesce,
    /// Removes the tenant and returns its final digest.
    Evict,
    /// Reports a context fact into the tenant's assumption registry.
    Observe {
        /// Fact key (the tenant's registered assumption watches `ballot`).
        key: String,
        /// Observed value.
        value: i64,
    },
    /// Casts this stream's ballot for voting round `round`.
    Ballot {
        /// 1-based round number; rounds complete strictly in order.
        round: u64,
        /// The replicated result this client computed.
        value: String,
    },
    /// Forces round `round` to complete even if ballots are missing
    /// (missing ballots count as dissent) — the liveness escape hatch
    /// when clients crash mid-round.
    Tick {
        /// The round to force-complete.
        round: u64,
    },
    /// Asks for the tenant's current digest without changing anything.
    Digest,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The frame names a tenant the server does not host.
    UnknownTenant,
    /// `RegisterTenant` for a tenant id that already exists.
    TenantExists,
    /// The server is at its tenant cap.
    TenantLimit,
    /// The tenant is quiescing and admits no new data requests.
    Quiescing,
    /// The tenant's bounded mailbox is full — retry after the hinted
    /// delay.
    QuotaExceeded,
    /// The tenant is at its stream cap.
    StreamLimit,
    /// The frame body did not parse.
    BadFrame,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::TenantExists => "tenant-exists",
            RejectReason::TenantLimit => "tenant-limit",
            RejectReason::Quiescing => "quiescing",
            RejectReason::QuotaExceeded => "quota-exceeded",
            RejectReason::StreamLimit => "stream-limit",
            RejectReason::BadFrame => "bad-frame",
        };
        f.write_str(name)
    }
}

/// The outcome of one completed voting round, broadcast to every
/// attached stream of the tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundResult {
    /// The completed round.
    pub round: u64,
    /// Expected ballots (the tenant's `expected_clients`).
    pub n: u32,
    /// Ballots actually received before the round completed.
    pub ballots: u32,
    /// The majority value, if one exists.
    pub value: Option<String>,
    /// Dissent rebased onto `n`, when a majority exists.
    pub dissent: Option<u32>,
    /// Distance-to-failure of the round.
    pub dtof: u32,
    /// The redundancy controller's decision, rendered.
    pub decision: String,
    /// The digest line this round contributed (what the tenant digest
    /// folds), so clients can audit the fold.
    pub line: String,
}

/// A tenant's accumulated evidence, returned by [`Request::Digest`] and
/// on eviction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantDigest {
    /// The tenant.
    pub tenant: u16,
    /// Voting rounds completed.
    pub rounds: u64,
    /// Observations accepted into the assumption registry.
    pub observes: u64,
    /// Assumption clashes those observations raised.
    pub clashes: u64,
    /// Requests rejected by quota or lifecycle checks.
    pub rejected: u64,
    /// Streams currently quarantined by their alpha-count.
    pub quarantined: u32,
    /// FNV-1a 64 fold of every round line plus the order-independent
    /// totals, in hex — the value the E8 differential compares across
    /// transports.
    pub digest: String,
}

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// The tenant was created.
    Registered {
        /// Echo of the tenant id.
        tenant: u16,
    },
    /// The tenant stopped admitting data requests.
    Quiesced {
        /// Echo of the tenant id.
        tenant: u16,
    },
    /// The tenant was removed; this is its final evidence.
    Evicted(TenantDigest),
    /// An observation was ingested.
    Observed {
        /// Whether every registered assumption still holds.
        satisfied: bool,
    },
    /// A ballot was queued for its round.
    BallotAccepted {
        /// Echo of the round.
        round: u64,
    },
    /// A round completed.
    RoundResult(RoundResult),
    /// Current evidence, from [`Request::Digest`].
    Digest(TenantDigest),
    /// The request was refused.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// How long the client should wait before retrying, in
        /// milliseconds (0 = retrying will not help, e.g. unknown
        /// tenant).
        retry_after_ms: u64,
    },
}

/// One multiplexed message: routing header plus body.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The tenant this frame belongs to.
    pub tenant: TenantId,
    /// The client stream within the tenant.
    pub stream: u32,
    /// Request or reply.
    pub body: Body,
}

/// A frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Client-to-server.
    Request(Request),
    /// Server-to-client.
    Reply(Reply),
}

/// Frame decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Shorter than [`FRAME_HEADER_LEN`].
    Truncated,
    /// Unknown kind byte.
    BadKind(u8),
    /// The JSON body did not parse.
    BadBody(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame shorter than its header"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::BadBody(e) => write!(f, "frame body did not parse: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl Frame {
    /// A request frame.
    #[must_use]
    pub fn request(tenant: TenantId, stream: u32, request: Request) -> Self {
        Self {
            tenant,
            stream,
            body: Body::Request(request),
        }
    }

    /// A reply frame.
    #[must_use]
    pub fn reply(tenant: TenantId, stream: u32, reply: Reply) -> Self {
        Self {
            tenant,
            stream,
            body: Body::Reply(reply),
        }
    }

    /// Encodes header + JSON body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let (kind, json) = match &self.body {
            Body::Request(r) => (
                KIND_REQUEST,
                serde_json::to_string(r)
                    .expect("request serializes")
                    .into_bytes(),
            ),
            Body::Reply(r) => (
                KIND_REPLY,
                serde_json::to_string(r)
                    .expect("reply serializes")
                    .into_bytes(),
            ),
        };
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + json.len());
        out.extend_from_slice(&self.tenant.0.to_be_bytes());
        out.extend_from_slice(&self.stream.to_be_bytes());
        out.push(kind);
        out.extend_from_slice(&json);
        out
    }

    /// Decodes a frame produced by [`Frame::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] when the buffer is shorter than the
    /// header, carries an unknown kind byte, or its body fails to parse.
    pub fn decode(bytes: &[u8]) -> Result<Frame, ProtoError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(ProtoError::Truncated);
        }
        let tenant = TenantId(u16::from_be_bytes([bytes[0], bytes[1]]));
        let stream = u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        let kind = bytes[6];
        let body = std::str::from_utf8(&bytes[FRAME_HEADER_LEN..])
            .map_err(|e| ProtoError::BadBody(e.to_string()))?;
        let body = match kind {
            KIND_REQUEST => Body::Request(
                serde_json::from_str(body).map_err(|e| ProtoError::BadBody(e.to_string()))?,
            ),
            KIND_REPLY => Body::Reply(
                serde_json::from_str(body).map_err(|e| ProtoError::BadBody(e.to_string()))?,
            ),
            other => return Err(ProtoError::BadKind(other)),
        };
        Ok(Frame {
            tenant,
            stream,
            body,
        })
    }

    /// Peeks only the routing header, without touching the JSON body —
    /// what the reactor thread does to pick a tenant worker.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::Truncated`] when the buffer is shorter than
    /// the header.
    pub fn peek_header(bytes: &[u8]) -> Result<(TenantId, u32, u8), ProtoError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(ProtoError::Truncated);
        }
        Ok((
            TenantId(u16::from_be_bytes([bytes[0], bytes[1]])),
            u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]),
            bytes[6],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::request(
                TenantId(7),
                3,
                Request::Ballot {
                    round: 12,
                    value: "v12".into(),
                },
            ),
            Frame::request(
                TenantId(0),
                0,
                Request::RegisterTenant {
                    expected_clients: 16,
                    mailbox_cap: 64,
                    ballot_min: -32768,
                    ballot_max: 32767,
                },
            ),
            Frame::reply(
                TenantId(65535),
                u32::MAX,
                Reply::Rejected {
                    reason: RejectReason::QuotaExceeded,
                    retry_after_ms: 25,
                },
            ),
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), frame);
            let (tenant, stream, _) = Frame::peek_header(&bytes).unwrap();
            assert_eq!((tenant, stream), (frame.tenant, frame.stream));
        }
    }

    #[test]
    fn header_layout_is_the_documented_seven_bytes() {
        let bytes = Frame::request(TenantId(0x0102), 0x03040506, Request::Digest).encode();
        assert_eq!(
            &bytes[..FRAME_HEADER_LEN],
            &[1, 2, 3, 4, 5, 6, KIND_REQUEST]
        );
        assert_eq!(bytes[FRAME_HEADER_LEN], b'"', "body starts as JSON");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Frame::decode(&[0, 1, 2]), Err(ProtoError::Truncated));
        assert_eq!(
            Frame::decode(&[0, 0, 0, 0, 0, 0, 9, b'{']),
            Err(ProtoError::BadKind(9))
        );
        assert!(matches!(
            Frame::decode(&[0, 0, 0, 0, 0, 0, KIND_REQUEST, b'{']),
            Err(ProtoError::BadBody(_))
        ));
    }
}
