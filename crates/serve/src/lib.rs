//! # afta-serve — assumption failure tolerance as an ambient service
//!
//! De Florio's §5 vision is monitoring, diagnosis, and rebinding
//! offered *to many applications at once* — a resident runtime hosting
//! recovery logic on behalf of its clients, not a library compiled into
//! each one.  This crate is that service for the AFTA stack:
//!
//! * **Many tenants, one server.**  Each [`Tenant`] owns a full
//!   single-tenant stack — an assumption registry, an alpha-count
//!   monitor per client stream, majority voting with round barriers,
//!   and a redundancy controller — behind one shared frontend.
//! * **One multiplexed wire protocol.**  Every message is a
//!   [`proto::Frame`]: `[u16 tenant][u32 stream][u8 kind][JSON body]`,
//!   so any number of tenants and client streams share one socket.
//! * **Admission control and per-tenant quotas.**  Data requests pass
//!   through a bounded per-tenant mailbox on the sharded event bus
//!   ([`afta_eventbus::Bus::try_publish`]); overflow rejects with a
//!   retry-after hint instead of shedding.
//! * **A poll-based reactor** ([`Reactor`]) replaces
//!   thread-per-connection on the TCP path: one readiness loop over
//!   non-blocking sockets plus a small worker pool that pumps tenant
//!   mailboxes.
//! * **The deterministic story stays intact.**  The same [`ServerCore`]
//!   runs over [`afta_net::SimTransport`] via [`serve_transport`], and
//!   the E8 differential ([`experiment`]) demands bit-identical
//!   per-tenant digests from the sim and TCP frontends.
//!
//! ## Quickstart (deterministic, in-process)
//!
//! ```
//! use afta_serve::experiment::{run_serve_experiment, ServeExperimentConfig};
//! use afta_telemetry::Registry;
//!
//! let config = ServeExperimentConfig {
//!     tenants: 2,
//!     clients: 3,
//!     rounds: 2,
//!     ..ServeExperimentConfig::default()
//! };
//! let report = run_serve_experiment(&config, &Registry::disabled());
//! assert_eq!(report.digests.len(), 2);
//! assert_eq!(report.rejects, 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod core;
pub mod experiment;
pub mod proto;
pub mod reactor;
pub mod tenant;

pub use crate::core::{ClientAddr, Enqueued, Outbound, ServeConfig, ServerCore};
pub use crate::experiment::{
    ballot_value, differential_matches, observe_value, run_serve_differential,
    run_serve_experiment, ServeExperimentConfig, ServeExperimentReport,
};
pub use crate::proto::{Body, Frame, RejectReason, Reply, Request, TenantDigest, TenantId};
pub use crate::reactor::{Reactor, ReactorConfig};
pub use crate::tenant::{Lifecycle, Tenant, TenantQuotas};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use afta_net::{NetError, Transport};

/// The `afta-serve` CLI surface, shared by the binary and the
/// documentation-sync test so `docs/OPERATIONS.md` can never document a
/// flag that does not exist.
pub const CLI_HELP: &str = "afta-serve — multi-tenant assumption-monitoring service

USAGE:
    afta-serve serve [--addr HOST:PORT] [--max-connections N] [--workers N]
                     [--max-tenants N] [--mailbox-cap N] [--retry-after-ms N]
    afta-serve e8    [--transport sim|tcp|both] [--tenants N] [--clients N]
                     [--rounds N] [--seed HEX|DEC] [--json PATH]
    afta-serve soak  [--connections N] [--tenants N] [--frames N]
                     [--workers N] [--timeout-ms N] [--json PATH]

COMMANDS:
    serve   Bind the poll-based reactor and host tenants until killed.
    e8      Run the E8 differential (sim vs. TCP loopback) and print the
            per-tenant digests; `both` exits nonzero on any mismatch.
    soak    Open N concurrent connections against an in-process reactor,
            drive one monitored observation per connection, and verify
            nothing is lost (the NoLostShard soak).

OPTIONS:
    --addr HOST:PORT      Listen address (default 127.0.0.1:0, printed on bind)
    --max-connections N   Reactor admission cap (default 16384)
    --workers N           Worker pool size (default 4)
    --max-tenants N       Tenant admission cap (default 256)
    --mailbox-cap N       Default per-tenant mailbox bound (default 64)
    --retry-after-ms N    Throttle hint for rejected clients (default 25)
    --transport KIND      sim | tcp | both (default both)
    --tenants N           Tenants in the experiment/soak (default 8)
    --clients N           Client streams per tenant (default 16)
    --rounds N            Voting rounds per tenant (default 12)
    --seed S              Master seed (default AFTA_SEED env, else 42)
    --connections N       Concurrent sockets for the soak (default 10000)
    --frames N            Observations per connection (default 1)
    --timeout-ms N        Soak wall-clock budget (default 60000)
    --json PATH           Also write the machine-readable report to PATH
";

/// Serves one [`Transport`] endpoint with a [`ServerCore`] until `stop`
/// is set (checked between frames) or the transport closes.
///
/// This is the deterministic frontend: everything happens on the
/// calling thread — a frame is admitted, its tenant pumped, and the
/// replies sent before the next frame is read.  Run it over a
/// [`afta_net::SimTransport`] endpoint and the whole server becomes a
/// pure function of the seed and the client traffic, which is what the
/// E8 differential pins.
pub fn serve_transport(transport: &dyn Transport, core: &mut ServerCore, stop: &AtomicBool) {
    let idle = Duration::from_millis(5);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let envelope = match transport.recv_deadline(idle) {
            Ok(envelope) => envelope,
            Err(NetError::Timeout) => continue,
            Err(_) => return,
        };
        let addr = ClientAddr(u64::from(envelope.from.0));
        let mut replies = match core.enqueue(addr, &envelope.payload) {
            Enqueued::Handled(replies) | Enqueued::Rejected(replies) => replies,
            Enqueued::Queued(tenant) => core.pump(tenant),
        };
        for (dest, bytes) in replies.drain(..) {
            let node = afta_net::NodeId(u16::try_from(dest.0 & 0xFFFF).unwrap_or(0));
            let _ = transport.send(node, bytes);
        }
    }
}
