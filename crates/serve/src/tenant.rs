//! One hosted tenant: registry + monitor + voting + redundancy control.
//!
//! A [`Tenant`] is the single-tenant AFTA stack in miniature, owned by
//! the server on a client application's behalf (the paper's §5 vision of
//! assumption failure tolerance as an *ambient service*):
//!
//! * an [`AssumptionRegistry`] holding the tenant's declared `ballot`
//!   range assumption, fed by [`Request::Observe`];
//! * an [`AlphaCount`] monitor per client stream, judged against each
//!   completed voting round (the §3.3 restoring organ's memory);
//! * majority voting over the streams' ballots with a **round barrier**:
//!   round *r* completes when all `expected_clients` streams have
//!   balloted (or a [`Request::Tick`] forces it, counting the missing
//!   ballots as dissent);
//! * a [`RedundancyController`] observing each round's distance to
//!   failure.
//!
//! Everything a round produces is folded into a rolling FNV-1a digest of
//! canonical text lines.  Because ballots are buffered per stream and
//! folded in sorted stream order, the digest depends only on *what* the
//! clients sent, never on arrival order — which is what lets the E8
//! differential demand bit-identical digests from `SimTransport` and
//! real TCP.
//!
//! [`Request::Observe`]: crate::proto::Request::Observe
//! [`Request::Tick`]: crate::proto::Request::Tick

use std::collections::BTreeMap;

use afta_alphacount::{AlphaCount, Judgment, Verdict};
use afta_core::prelude::*;
use afta_switchboard::controller::{RedundancyController, RedundancyPolicy};
use afta_telemetry::Scope;
use afta_voting::{majority_vote, VoteOutcome};

use crate::proto::{RoundResult, TenantDigest, TenantId};

/// FNV-1a 64 offset basis (the accumulator every fold starts from).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds `bytes` into a rolling FNV-1a 64 accumulator.
#[must_use]
pub fn fnv1a_64(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = (acc ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Per-tenant quotas and policy, fixed at registration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuotas {
    /// Client streams a voting round waits for before completing.
    pub expected_clients: u32,
    /// Bounded mailbox capacity: data requests queued but not yet
    /// processed.  A full mailbox rejects with retry-after.
    pub mailbox_cap: usize,
    /// Most distinct streams the tenant may attach.
    pub max_streams: u32,
    /// Retry hint handed to throttled clients, in milliseconds.
    pub retry_after_ms: u64,
    /// Alpha-count threshold above which a stream is quarantined.
    pub alpha_threshold: f64,
    /// Lower bound of the tenant's `ballot` context assumption.
    pub ballot_min: i64,
    /// Upper bound of the tenant's `ballot` context assumption.
    pub ballot_max: i64,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        Self {
            expected_clients: 3,
            mailbox_cap: 64,
            max_streams: 1024,
            retry_after_ms: 25,
            alpha_threshold: 3.0,
            // The Ariane-4 envelope: the default tenant watches for
            // ballots escaping a 16-bit signed range.
            ballot_min: -32768,
            ballot_max: 32767,
        }
    }
}

/// Lifecycle of a hosted tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Admitting and processing data requests.
    Active,
    /// Draining: data requests are rejected, digests stay readable.
    Quiescing,
}

/// Per-stream monitoring state.
#[derive(Debug)]
struct StreamState {
    alpha: AlphaCount,
    quarantined: bool,
}

/// One hosted tenant (see the module docs).
#[derive(Debug)]
pub struct Tenant {
    id: TenantId,
    quotas: TenantQuotas,
    state: Lifecycle,
    registry: AssumptionRegistry,
    streams: BTreeMap<u32, StreamState>,
    /// Ballots buffered per round, keyed `round -> stream -> value`.
    pending: BTreeMap<u64, BTreeMap<u32, String>>,
    /// The next round to complete; rounds complete strictly in order.
    cursor: u64,
    controller: RedundancyController,
    digest_acc: u64,
    rounds: u64,
    observes: u64,
    rejected: u64,
    scope: Scope,
}

impl Tenant {
    /// Creates the tenant and registers its `ballot` range assumption.
    #[must_use]
    pub fn new(id: TenantId, quotas: TenantQuotas, scope: Scope) -> Self {
        let mut registry = AssumptionRegistry::new();
        let assumption = Assumption::builder("ballot-magnitude")
            .statement("client ballots stay within the declared range")
            .kind(AssumptionKind::ThirdPartySoftware)
            .expects(
                "ballot",
                Expectation::int_range(quotas.ballot_min, quotas.ballot_max),
            )
            .binding_time(BindingTime::RunTime)
            .origin("afta-serve/register-tenant")
            .build();
        registry
            .register(assumption)
            .expect("fresh registry accepts the tenant assumption");
        Self {
            id,
            state: Lifecycle::Active,
            registry,
            streams: BTreeMap::new(),
            pending: BTreeMap::new(),
            cursor: 1,
            controller: RedundancyController::new(RedundancyPolicy::default()),
            digest_acc: FNV_OFFSET,
            rounds: 0,
            observes: 0,
            rejected: 0,
            scope,
            quotas,
        }
    }

    /// The tenant's id.
    #[must_use]
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's quotas.
    #[must_use]
    pub fn quotas(&self) -> &TenantQuotas {
        &self.quotas
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn lifecycle(&self) -> Lifecycle {
        self.state
    }

    /// Moves the tenant to [`Lifecycle::Quiescing`].
    pub fn quiesce(&mut self) {
        self.state = Lifecycle::Quiescing;
        self.scope.counter("quiesced").inc();
    }

    /// Replaces the mailbox capacity (the reconfigurable quota knob).
    pub fn set_mailbox_cap(&mut self, cap: usize) {
        self.quotas.mailbox_cap = cap.max(1);
    }

    /// Counts one admission rejection against this tenant.
    pub fn count_rejected(&mut self) {
        self.rejected += 1;
        self.scope.counter("rejected").inc();
    }

    /// Whether `stream` may attach (already known, or under the cap).
    #[must_use]
    pub fn admit_stream(&self, stream: u32) -> bool {
        self.streams.contains_key(&stream) || (self.streams.len() as u32) < self.quotas.max_streams
    }

    /// Streams currently attached.
    #[must_use]
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn attach(&mut self, stream: u32) {
        let threshold = self.quotas.alpha_threshold;
        self.streams.entry(stream).or_insert_with(|| StreamState {
            alpha: AlphaCount::with_threshold(threshold),
            quarantined: false,
        });
    }

    /// Ingests an observation; returns whether every assumption still
    /// holds after it.
    pub fn observe(&mut self, stream: u32, key: &str, value: i64) -> bool {
        self.attach(stream);
        self.observes += 1;
        self.scope.counter("observes").inc();
        let report = self.registry.observe(Observation::new(key, value));
        let satisfied = report.all_satisfied();
        if !satisfied {
            self.scope.counter("clashes").inc();
        }
        satisfied
    }

    /// Buffers `stream`'s ballot for `round`, then completes every round
    /// whose barrier is now met, in order.  Returns the completed
    /// rounds' results (usually zero or one).
    pub fn ballot(&mut self, stream: u32, round: u64, value: String) -> Vec<RoundResult> {
        self.attach(stream);
        if round >= self.cursor {
            self.pending.entry(round).or_default().insert(stream, value);
        }
        let mut out = Vec::new();
        while self
            .pending
            .get(&self.cursor)
            .is_some_and(|b| b.len() as u32 >= self.quotas.expected_clients)
        {
            out.push(self.complete_round());
        }
        out
    }

    /// Forces rounds up to and including `round` to complete, missing
    /// ballots counting as dissent.  No-op for rounds already completed.
    pub fn tick(&mut self, round: u64) -> Vec<RoundResult> {
        let mut out = Vec::new();
        while self.cursor <= round {
            out.push(self.complete_round());
        }
        out
    }

    /// Completes the cursor round from whatever ballots are buffered.
    fn complete_round(&mut self) -> RoundResult {
        let round = self.cursor;
        self.cursor += 1;
        let ballots = self.pending.remove(&round).unwrap_or_default();
        let n = self.quotas.expected_clients as usize;
        // Sorted stream order (BTreeMap), so the outcome and the alpha
        // updates below are arrival-order independent.
        let values: Vec<String> = ballots.values().cloned().collect();
        let outcome = vote_of_n(&values, n);
        let dtof = outcome.dtof(n);
        let mut quarantined = 0u32;
        for (stream, state) in &mut self.streams {
            let judgment = match (&outcome, ballots.get(stream)) {
                (VoteOutcome::Majority { value, .. }, Some(b)) if b == value => Judgment::Correct,
                (VoteOutcome::Majority { .. }, _) => Judgment::Erroneous,
                // No majority: no ground truth to judge against.
                (VoteOutcome::NoMajority, _) => Judgment::Correct,
            };
            let verdict = state.alpha.record(judgment);
            state.quarantined = verdict == Verdict::PermanentOrIntermittent;
            if state.quarantined {
                quarantined += 1;
            }
        }
        let decision = self.controller.observe(dtof, n).to_string();
        let (value, dissent) = match &outcome {
            VoteOutcome::Majority { value, dissent } => {
                (Some(value.clone()), Some(*dissent as u32))
            }
            VoteOutcome::NoMajority => (None, None),
        };
        let shown = match (&value, dissent) {
            (Some(v), Some(m)) => format!("{v}/m{m}"),
            _ => "none".to_string(),
        };
        let line = format!(
            "{} r{round} n{n} {shown} dtof{dtof} -> {decision} b{} q{quarantined}",
            self.id,
            values.len(),
        );
        self.digest_acc = fnv1a_64(self.digest_acc, line.as_bytes());
        self.digest_acc = fnv1a_64(self.digest_acc, b"\n");
        self.rounds += 1;
        self.scope.counter("rounds").inc();
        self.scope.gauge("dtof").set(i64::from(dtof));
        RoundResult {
            round,
            n: self.quotas.expected_clients,
            ballots: values.len() as u32,
            value,
            dissent,
            dtof,
            decision,
            line,
        }
    }

    /// The tenant's digest: the round fold combined with the
    /// order-independent totals.
    #[must_use]
    pub fn digest(&self) -> TenantDigest {
        let clashes = self.registry.clash_log().len() as u64;
        let quarantined = self.streams.values().filter(|s| s.quarantined).count() as u32;
        let tail = format!(
            "rounds{} observes{} clashes{} rejected{} q{quarantined}",
            self.rounds, self.observes, clashes, self.rejected,
        );
        let folded = fnv1a_64(self.digest_acc, tail.as_bytes());
        TenantDigest {
            tenant: self.id.0,
            rounds: self.rounds,
            observes: self.observes,
            clashes,
            rejected: self.rejected,
            quarantined,
            digest: format!("{folded:016x}"),
        }
    }
}

/// Majority over the received ballots, re-based onto the `n` *expected*
/// ballots: the winner needs strictly more than `n/2` of the expected
/// count, and dissent counts the expected voters that did not agree
/// (missing ballots included) — the same timeout-as-dissent law as
/// `afta-net`'s distributed voting farm.
#[must_use]
pub fn vote_of_n(ballots: &[String], n: usize) -> VoteOutcome<String> {
    match majority_vote(ballots) {
        VoteOutcome::Majority { value, dissent } => {
            let count = ballots.len() - dissent;
            if 2 * count > n {
                VoteOutcome::Majority {
                    value,
                    dissent: n - count,
                }
            } else {
                VoteOutcome::NoMajority
            }
        }
        VoteOutcome::NoMajority => VoteOutcome::NoMajority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afta_telemetry::Registry;

    fn tenant(expected: u32) -> Tenant {
        let quotas = TenantQuotas {
            expected_clients: expected,
            ..TenantQuotas::default()
        };
        Tenant::new(
            TenantId(9),
            quotas,
            Registry::new().scoped("serve.tenant.9"),
        )
    }

    #[test]
    fn round_completes_only_at_the_barrier() {
        let mut t = tenant(3);
        assert!(t.ballot(0, 1, "a".into()).is_empty());
        assert!(t.ballot(1, 1, "a".into()).is_empty());
        let done = t.ballot(2, 1, "b".into());
        assert_eq!(done.len(), 1);
        let r = &done[0];
        assert_eq!((r.round, r.n, r.ballots), (1, 3, 3));
        assert_eq!(r.value.as_deref(), Some("a"));
        assert_eq!(r.dissent, Some(1));
    }

    #[test]
    fn digest_is_arrival_order_independent() {
        let mut a = tenant(3);
        let mut b = tenant(3);
        // Same ballots, different arrival orders, over two rounds.
        for (stream, value) in [(0, "x"), (1, "x"), (2, "y")] {
            a.ballot(stream, 1, value.into());
        }
        for (stream, value) in [(2, "y"), (0, "x"), (1, "x")] {
            b.ballot(stream, 1, value.into());
        }
        // Round 2 ballots may even arrive before round 1 completes.
        for (stream, value) in [(1, "z"), (2, "z"), (0, "z")] {
            a.ballot(stream, 2, value.into());
        }
        for (stream, value) in [(0, "z"), (1, "z"), (2, "z")] {
            b.ballot(stream, 2, value.into());
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest().rounds, 2);
    }

    #[test]
    fn tick_counts_missing_ballots_as_dissent() {
        let mut t = tenant(3);
        t.ballot(0, 1, "a".into());
        t.ballot(1, 1, "a".into());
        let done = t.tick(1);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].ballots, 2);
        assert_eq!(done[0].value.as_deref(), Some("a"));
        assert_eq!(done[0].dissent, Some(1), "the absent stream dissents");
        // A second tick for the same round is a forced empty round, not
        // a replay.
        assert_eq!(t.tick(1).len(), 0);
    }

    #[test]
    fn observations_feed_the_registry_and_clash_counting() {
        let mut t = tenant(1);
        assert!(t.observe(0, "ballot", 100));
        assert!(!t.observe(0, "ballot", 40_000), "out of the declared range");
        let d = t.digest();
        assert_eq!(d.observes, 2);
        assert_eq!(d.clashes, 1);
    }

    #[test]
    fn persistent_dissenter_is_quarantined() {
        let mut t = tenant(3);
        for round in 1..=8 {
            t.ballot(0, round, "good".into());
            t.ballot(1, round, "good".into());
            t.ballot(2, round, format!("bad{round}"));
        }
        assert_eq!(t.digest().quarantined, 1);
    }
}
