//! The transport-agnostic server core: admission, quotas, dispatch.
//!
//! [`ServerCore`] owns every [`Tenant`] and a **bounded per-tenant
//! mailbox** on the sharded event bus.  A frame travels in two steps:
//!
//! 1. [`ServerCore::enqueue`] — cheap admission: decode, lifecycle and
//!    quota checks, then `try_publish` the data request into the
//!    tenant's mailbox.  Control requests (register / quiesce / evict /
//!    digest) are answered inline.  A full mailbox rejects the frame
//!    with a retry-after hint instead of shedding it — the publisher
//!    gets the event back, nothing is ever counted as lost.
//! 2. [`ServerCore::pump`] — drains one tenant's mailbox and processes
//!    the requests in FIFO order, producing reply frames.
//!
//! The split is what makes one core serve two worlds: the deterministic
//! sim frontend ([`serve_transport`](crate::serve_transport)) pumps
//! after every enqueue on one thread, while the TCP reactor enqueues on
//! its poll thread and lets a worker pool pump — the mailbox *is* the
//! reactor-to-worker queue, so backpressure is the same object in both.

use std::collections::{BTreeMap, HashMap};

use afta_eventbus::{Bus, Publisher, Subscription};
use afta_telemetry::{Counter, Registry};

use crate::proto::{Body, Frame, ProtoError, RejectReason, Reply, Request, TenantId};
use crate::tenant::{Lifecycle, Tenant, TenantQuotas};

/// Where a frame came from and where replies go: a transport-level
/// return address.  The sim frontend uses the peer's `NodeId`; the TCP
/// reactor uses a connection id (offset so the two ranges cannot
/// collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientAddr(pub u64);

/// A reply frame plus the address it must be delivered to.
pub type Outbound = (ClientAddr, Vec<u8>);

/// Server-wide tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Most tenants the server hosts at once; registrations beyond this
    /// are rejected.
    pub max_tenants: usize,
    /// Mailbox capacity used when a tenant registers with `mailbox_cap`
    /// = 0.
    pub default_mailbox_cap: usize,
    /// Stream cap applied to every tenant.
    pub max_streams_per_tenant: u32,
    /// Retry hint handed to throttled clients, in milliseconds.
    pub retry_after_ms: u64,
    /// Master seed for anything the server randomises (none today on
    /// the serving path itself; recorded so reports carry it).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_tenants: 256,
            default_mailbox_cap: 64,
            max_streams_per_tenant: 1024,
            retry_after_ms: 25,
            seed: 0xAF7A,
        }
    }
}

/// What [`ServerCore::enqueue`] did with a frame.
#[derive(Debug)]
pub enum Enqueued {
    /// A control frame: handled inline, here are the replies.
    Handled(Vec<Outbound>),
    /// A data frame: admitted into this tenant's mailbox.  Someone must
    /// [`ServerCore::pump`] the tenant.
    Queued(TenantId),
    /// Refused at admission; the rejection replies are ready to send.
    Rejected(Vec<Outbound>),
}

/// One queued data request (the event type on each tenant's bus).
#[derive(Debug, Clone)]
struct InboundFrame {
    addr: ClientAddr,
    stream: u32,
    request: Request,
}

/// A hosted tenant plus its bounded mailbox.  Each tenant gets its own
/// [`Bus`] instance so its mailbox shares nothing — not even a topic
/// shard — with its siblings.
struct TenantSlot {
    tenant: Tenant,
    _bus: Bus,
    inbox: Subscription<InboundFrame>,
    publisher: Publisher<InboundFrame>,
    /// Last known return address per stream, for round-result fan-out.
    clients: BTreeMap<u32, ClientAddr>,
}

/// Core metrics (server-wide; per-tenant metrics live under each
/// tenant's scope).
struct CoreMetrics {
    frames: Counter,
    handled: Counter,
    queued: Counter,
    rejected: Counter,
    bad_frames: Counter,
}

/// The multi-tenant server core (see the module docs).
pub struct ServerCore {
    config: ServeConfig,
    registry: Registry,
    tenants: HashMap<u16, TenantSlot>,
    metrics: CoreMetrics,
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("config", &self.config)
            .field("tenants", &self.tenants.len())
            .finish()
    }
}

impl ServerCore {
    /// Creates a core; metrics land in `registry` under `serve.*`.
    #[must_use]
    pub fn new(config: ServeConfig, registry: &Registry) -> Self {
        Self {
            config,
            registry: registry.clone(),
            tenants: HashMap::new(),
            metrics: CoreMetrics {
                frames: registry.counter("serve.frames"),
                handled: registry.counter("serve.handled"),
                queued: registry.counter("serve.queued"),
                rejected: registry.counter("serve.rejected"),
                bad_frames: registry.counter("serve.bad_frames"),
            },
        }
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Currently hosted tenant ids, sorted.
    #[must_use]
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.tenants.keys().copied().map(TenantId).collect();
        ids.sort_unstable();
        ids
    }

    /// The named tenant's current digest, if hosted.
    #[must_use]
    pub fn tenant_digest(&self, tenant: TenantId) -> Option<crate::proto::TenantDigest> {
        self.tenants.get(&tenant.0).map(|s| s.tenant.digest())
    }

    /// Requests waiting in the named tenant's mailbox.
    #[must_use]
    pub fn tenant_backlog(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant.0).map_or(0, |s| s.inbox.pending())
    }

    /// Re-bounds a hosted tenant's mailbox (the runtime quota knob the
    /// fuzz churn driver turns).  Queued requests survive: the old
    /// mailbox is drained into the new one, oldest first; anything
    /// beyond the new, tighter bound is rejected back to its sender.
    /// Returns the rejection replies (empty when loosening).
    pub fn set_tenant_mailbox_cap(&mut self, tenant: TenantId, cap: usize) -> Vec<Outbound> {
        let Some(slot) = self.tenants.get_mut(&tenant.0) else {
            return Vec::new();
        };
        let cap = cap.max(1);
        slot.tenant.set_mailbox_cap(cap);
        let backlog = slot.inbox.drain();
        let bus = Bus::new();
        slot.inbox = bus.subscribe_with_capacity::<InboundFrame>(cap);
        slot.publisher = bus.publisher::<InboundFrame>();
        slot._bus = bus;
        let mut rejected = Vec::new();
        for (queued, item) in backlog.into_iter().enumerate() {
            // Same exact-cap contract as `admit_data`: the ring rounds
            // up to a power of two, the quota does not.
            let publish = if queued >= cap {
                Err(item)
            } else {
                slot.publisher.try_publish(item)
            };
            if let Err(back) = publish {
                slot.tenant.count_rejected();
                self.metrics.rejected.inc();
                rejected.push(reject(
                    tenant,
                    back.stream,
                    back.addr,
                    RejectReason::QuotaExceeded,
                    slot.tenant.quotas().retry_after_ms,
                ));
            }
        }
        rejected
    }

    /// Admission: decodes `bytes` and either handles it (control),
    /// queues it (data), or rejects it.  See the module docs.
    pub fn enqueue(&mut self, addr: ClientAddr, bytes: &[u8]) -> Enqueued {
        self.metrics.frames.inc();
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(err) => {
                self.metrics.bad_frames.inc();
                // Reject with whatever routing we could still read; a
                // frame too short for its own header gets no reply.
                return match err {
                    ProtoError::Truncated => Enqueued::Rejected(Vec::new()),
                    _ => {
                        let (tenant, stream) = Frame::peek_header(bytes)
                            .map(|(t, s, _)| (t, s))
                            .unwrap_or_default();
                        self.metrics.rejected.inc();
                        Enqueued::Rejected(vec![reject(
                            tenant,
                            stream,
                            addr,
                            RejectReason::BadFrame,
                            0,
                        )])
                    }
                };
            }
        };
        let Body::Request(request) = frame.body else {
            // A reply sent at the server: ignore.
            return Enqueued::Handled(Vec::new());
        };
        let tenant = frame.tenant;
        let stream = frame.stream;
        match request {
            Request::RegisterTenant {
                expected_clients,
                mailbox_cap,
                ballot_min,
                ballot_max,
            } => {
                let quotas = TenantQuotas {
                    expected_clients,
                    mailbox_cap: if mailbox_cap == 0 {
                        self.config.default_mailbox_cap
                    } else {
                        mailbox_cap
                    },
                    max_streams: self.config.max_streams_per_tenant,
                    retry_after_ms: self.config.retry_after_ms,
                    ballot_min,
                    ballot_max,
                    ..TenantQuotas::default()
                };
                Enqueued::Handled(self.register_tenant(tenant, stream, addr, quotas))
            }
            Request::Quiesce => Enqueued::Handled(self.with_tenant(tenant, stream, addr, |slot| {
                slot.tenant.quiesce();
                vec![Reply::Quiesced { tenant: tenant.0 }]
            })),
            Request::Evict => {
                let replies = match self.tenants.remove(&tenant.0) {
                    Some(slot) => {
                        self.metrics.handled.inc();
                        vec![(
                            addr,
                            Frame::reply(tenant, stream, Reply::Evicted(slot.tenant.digest()))
                                .encode(),
                        )]
                    }
                    None => {
                        self.metrics.rejected.inc();
                        vec![reject(tenant, stream, addr, RejectReason::UnknownTenant, 0)]
                    }
                };
                Enqueued::Handled(replies)
            }
            Request::Digest => Enqueued::Handled(self.with_tenant(tenant, stream, addr, |slot| {
                vec![Reply::Digest(slot.tenant.digest())]
            })),
            data @ (Request::Observe { .. } | Request::Ballot { .. } | Request::Tick { .. }) => {
                self.admit_data(tenant, stream, addr, data)
            }
        }
    }

    /// Drains and processes one tenant's mailbox; returns the replies.
    pub fn pump(&mut self, tenant: TenantId) -> Vec<Outbound> {
        let Some(slot) = self.tenants.get_mut(&tenant.0) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Ok(item) = slot.inbox.try_recv() {
            slot.clients.insert(item.stream, item.addr);
            match item.request {
                Request::Observe { key, value } => {
                    let satisfied = slot.tenant.observe(item.stream, &key, value);
                    out.push((
                        item.addr,
                        Frame::reply(tenant, item.stream, Reply::Observed { satisfied }).encode(),
                    ));
                }
                Request::Ballot { round, value } => {
                    out.push((
                        item.addr,
                        Frame::reply(tenant, item.stream, Reply::BallotAccepted { round }).encode(),
                    ));
                    let rounds = slot.tenant.ballot(item.stream, round, value);
                    broadcast_rounds(tenant, &slot.clients, rounds, &mut out);
                }
                Request::Tick { round } => {
                    let rounds = slot.tenant.tick(round);
                    broadcast_rounds(tenant, &slot.clients, rounds, &mut out);
                }
                // Control requests never reach a mailbox.
                _ => {}
            }
        }
        out
    }

    /// Pumps every hosted tenant once, in tenant-id order.
    pub fn pump_all(&mut self) -> Vec<Outbound> {
        let mut out = Vec::new();
        for tenant in self.tenant_ids() {
            out.extend(self.pump(tenant));
        }
        out
    }

    fn register_tenant(
        &mut self,
        tenant: TenantId,
        stream: u32,
        addr: ClientAddr,
        quotas: TenantQuotas,
    ) -> Vec<Outbound> {
        if self.tenants.contains_key(&tenant.0) {
            self.metrics.rejected.inc();
            return vec![reject(tenant, stream, addr, RejectReason::TenantExists, 0)];
        }
        if self.tenants.len() >= self.config.max_tenants {
            self.metrics.rejected.inc();
            return vec![reject(
                tenant,
                stream,
                addr,
                RejectReason::TenantLimit,
                self.config.retry_after_ms,
            )];
        }
        let scope = self.registry.scoped(format!("serve.tenant.{}", tenant.0));
        let bus = Bus::new();
        let inbox = bus.subscribe_with_capacity::<InboundFrame>(quotas.mailbox_cap);
        let publisher = bus.publisher::<InboundFrame>();
        self.tenants.insert(
            tenant.0,
            TenantSlot {
                tenant: Tenant::new(tenant, quotas, scope),
                _bus: bus,
                inbox,
                publisher,
                clients: BTreeMap::new(),
            },
        );
        self.metrics.handled.inc();
        vec![(
            addr,
            Frame::reply(tenant, stream, Reply::Registered { tenant: tenant.0 }).encode(),
        )]
    }

    fn admit_data(
        &mut self,
        tenant: TenantId,
        stream: u32,
        addr: ClientAddr,
        request: Request,
    ) -> Enqueued {
        let Some(slot) = self.tenants.get_mut(&tenant.0) else {
            self.metrics.rejected.inc();
            return Enqueued::Rejected(vec![reject(
                tenant,
                stream,
                addr,
                RejectReason::UnknownTenant,
                0,
            )]);
        };
        if slot.tenant.lifecycle() == Lifecycle::Quiescing {
            slot.tenant.count_rejected();
            self.metrics.rejected.inc();
            return Enqueued::Rejected(vec![reject(
                tenant,
                stream,
                addr,
                RejectReason::Quiescing,
                0,
            )]);
        }
        if !slot.tenant.admit_stream(stream) {
            slot.tenant.count_rejected();
            self.metrics.rejected.inc();
            return Enqueued::Rejected(vec![reject(
                tenant,
                stream,
                addr,
                RejectReason::StreamLimit,
                0,
            )]);
        }
        // The ring under the mailbox rounds its capacity up to a power
        // of two; the quota contract is the *exact* configured cap, so
        // enforce it on the observed backlog before publishing.  All
        // admission happens under the core lock, so `pending` is exact.
        if slot.inbox.pending() >= slot.tenant.quotas().mailbox_cap {
            let retry = slot.tenant.quotas().retry_after_ms;
            slot.tenant.count_rejected();
            self.metrics.rejected.inc();
            return Enqueued::Rejected(vec![reject(
                tenant,
                stream,
                addr,
                RejectReason::QuotaExceeded,
                retry,
            )]);
        }
        let item = InboundFrame {
            addr,
            stream,
            request,
        };
        match slot.publisher.try_publish(item) {
            Ok(_) => {
                self.metrics.queued.inc();
                Enqueued::Queued(tenant)
            }
            Err(_) => {
                let retry = slot.tenant.quotas().retry_after_ms;
                slot.tenant.count_rejected();
                self.metrics.rejected.inc();
                Enqueued::Rejected(vec![reject(
                    tenant,
                    stream,
                    addr,
                    RejectReason::QuotaExceeded,
                    retry,
                )])
            }
        }
    }

    fn with_tenant(
        &mut self,
        tenant: TenantId,
        stream: u32,
        addr: ClientAddr,
        f: impl FnOnce(&mut TenantSlot) -> Vec<Reply>,
    ) -> Vec<Outbound> {
        match self.tenants.get_mut(&tenant.0) {
            Some(slot) => {
                self.metrics.handled.inc();
                f(slot)
                    .into_iter()
                    .map(|r| (addr, Frame::reply(tenant, stream, r).encode()))
                    .collect()
            }
            None => {
                self.metrics.rejected.inc();
                vec![reject(tenant, stream, addr, RejectReason::UnknownTenant, 0)]
            }
        }
    }
}

/// Encodes one rejection reply.
fn reject(
    tenant: TenantId,
    stream: u32,
    addr: ClientAddr,
    reason: RejectReason,
    retry_after_ms: u64,
) -> Outbound {
    (
        addr,
        Frame::reply(
            tenant,
            stream,
            Reply::Rejected {
                reason,
                retry_after_ms,
            },
        )
        .encode(),
    )
}

/// Fans completed rounds out to every attached stream of the tenant.
fn broadcast_rounds(
    tenant: TenantId,
    clients: &BTreeMap<u32, ClientAddr>,
    rounds: Vec<crate::proto::RoundResult>,
    out: &mut Vec<Outbound>,
) {
    for result in rounds {
        for (&stream, &addr) in clients {
            out.push((
                addr,
                Frame::reply(tenant, stream, Reply::RoundResult(result.clone())).encode(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> ServerCore {
        ServerCore::new(ServeConfig::default(), &Registry::new())
    }

    fn register(core: &mut ServerCore, tenant: u16, clients: u32, mailbox: usize) {
        let frame = Frame::request(
            TenantId(tenant),
            0,
            Request::RegisterTenant {
                expected_clients: clients,
                mailbox_cap: mailbox,
                ballot_min: -100,
                ballot_max: 100,
            },
        );
        match core.enqueue(ClientAddr(1), &frame.encode()) {
            Enqueued::Handled(replies) => {
                let f = Frame::decode(&replies[0].1).unwrap();
                assert_eq!(f.body, Body::Reply(Reply::Registered { tenant }));
            }
            other => panic!("registration not handled: {other:?}"),
        }
    }

    fn decoded(out: &[Outbound]) -> Vec<Reply> {
        out.iter()
            .map(|(_, bytes)| match Frame::decode(bytes).unwrap().body {
                Body::Reply(r) => r,
                Body::Request(_) => panic!("server sent a request"),
            })
            .collect()
    }

    #[test]
    fn data_before_registration_is_rejected() {
        let mut c = core();
        let frame = Frame::request(
            TenantId(4),
            0,
            Request::Observe {
                key: "ballot".into(),
                value: 1,
            },
        );
        let Enqueued::Rejected(replies) = c.enqueue(ClientAddr(1), &frame.encode()) else {
            panic!("must reject");
        };
        assert!(matches!(
            decoded(&replies)[0],
            Reply::Rejected {
                reason: RejectReason::UnknownTenant,
                ..
            }
        ));
    }

    #[test]
    fn quota_overflow_rejects_with_retry_after_and_drains() {
        let mut c = core();
        register(&mut c, 1, 2, 4);
        let observe = |v: i64| {
            Frame::request(
                TenantId(1),
                0,
                Request::Observe {
                    key: "ballot".into(),
                    value: v,
                },
            )
            .encode()
        };
        for i in 0..4 {
            assert!(matches!(
                c.enqueue(ClientAddr(1), &observe(i)),
                Enqueued::Queued(_)
            ));
        }
        // Mailbox (cap 4) is full: reject with the tenant's retry hint.
        let Enqueued::Rejected(replies) = c.enqueue(ClientAddr(1), &observe(9)) else {
            panic!("over quota must reject");
        };
        match decoded(&replies)[0] {
            Reply::Rejected {
                reason: RejectReason::QuotaExceeded,
                retry_after_ms,
            } => assert!(retry_after_ms > 0),
            ref other => panic!("wrong reply {other:?}"),
        }
        // Pumping drains the backlog and re-admits.
        assert_eq!(c.pump(TenantId(1)).len(), 4);
        assert!(matches!(
            c.enqueue(ClientAddr(1), &observe(9)),
            Enqueued::Queued(_)
        ));
        assert_eq!(c.tenant_digest(TenantId(1)).unwrap().rejected, 1);
    }

    #[test]
    fn round_results_fan_out_to_all_streams() {
        let mut c = core();
        register(&mut c, 1, 2, 0);
        for (stream, addr) in [(0u32, 10u64), (1, 11)] {
            let frame = Frame::request(
                TenantId(1),
                stream,
                Request::Ballot {
                    round: 1,
                    value: "v".into(),
                },
            );
            assert!(matches!(
                c.enqueue(ClientAddr(addr), &frame.encode()),
                Enqueued::Queued(_)
            ));
        }
        let out = c.pump(TenantId(1));
        let results: Vec<&ClientAddr> = out
            .iter()
            .filter(|(_, bytes)| {
                matches!(
                    Frame::decode(bytes).unwrap().body,
                    Body::Reply(Reply::RoundResult(_))
                )
            })
            .map(|(addr, _)| addr)
            .collect();
        assert_eq!(results, vec![&ClientAddr(10), &ClientAddr(11)]);
    }

    #[test]
    fn quiesce_then_evict_returns_final_digest() {
        let mut c = core();
        register(&mut c, 7, 1, 0);
        let ballot = Frame::request(
            TenantId(7),
            0,
            Request::Ballot {
                round: 1,
                value: "v".into(),
            },
        );
        assert!(matches!(
            c.enqueue(ClientAddr(2), &ballot.encode()),
            Enqueued::Queued(_)
        ));
        c.pump(TenantId(7));
        let q = Frame::request(TenantId(7), 0, Request::Quiesce);
        let Enqueued::Handled(_) = c.enqueue(ClientAddr(2), &q.encode()) else {
            panic!("quiesce is control");
        };
        // Data after quiesce is refused.
        let Enqueued::Rejected(replies) = c.enqueue(ClientAddr(2), &ballot.encode()) else {
            panic!("quiescing tenant must reject data");
        };
        assert!(matches!(
            decoded(&replies)[0],
            Reply::Rejected {
                reason: RejectReason::Quiescing,
                ..
            }
        ));
        let e = Frame::request(TenantId(7), 0, Request::Evict);
        let Enqueued::Handled(replies) = c.enqueue(ClientAddr(2), &e.encode()) else {
            panic!("evict is control");
        };
        match &decoded(&replies)[0] {
            Reply::Evicted(digest) => {
                assert_eq!(digest.rounds, 1);
                assert_eq!(digest.rejected, 1);
            }
            other => panic!("wrong reply {other:?}"),
        }
        assert!(c.tenant_ids().is_empty());
    }

    #[test]
    fn tightening_the_mailbox_rejects_the_overflowing_backlog() {
        let mut c = core();
        register(&mut c, 1, 8, 8);
        let observe = |v: i64| {
            Frame::request(
                TenantId(1),
                0,
                Request::Observe {
                    key: "ballot".into(),
                    value: v,
                },
            )
            .encode()
        };
        for i in 0..6 {
            assert!(matches!(
                c.enqueue(ClientAddr(1), &observe(i)),
                Enqueued::Queued(_)
            ));
        }
        let rejected = c.set_tenant_mailbox_cap(TenantId(1), 4);
        assert_eq!(rejected.len(), 2, "backlog beyond the new bound bounces");
        assert_eq!(c.tenant_backlog(TenantId(1)), 4);
        assert_eq!(c.pump(TenantId(1)).len(), 4);
    }
}
