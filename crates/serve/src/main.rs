//! The `afta-serve` binary: host the service, run the E8 differential,
//! or soak the reactor.  See [`afta_serve::CLI_HELP`] for the surface.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use afta_net::TransportKind;
use afta_serve::experiment::{
    differential_matches, run_serve_experiment, ServeExperimentConfig, ServeExperimentReport,
};
use afta_serve::{
    Body, Frame, Reactor, ReactorConfig, Reply, Request, ServeConfig, TenantId, CLI_HELP,
};
use afta_telemetry::Registry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("e8") => cmd_e8(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        None | Some("help" | "--help" | "-h") => {
            print!("{CLI_HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{CLI_HELP}");
            ExitCode::from(2)
        }
    }
}

/// The value following `--name`, if present.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `--name N` as a number, falling back to `default`.
fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Seed resolution order: `--seed`, then `AFTA_SEED`, then `default`.
/// `0x`-prefixed values parse as hex, everything else as decimal.
fn seed_flag(args: &[String], default: u64) -> u64 {
    let parse = |text: &str| {
        let text = text.trim();
        if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            text.parse().ok()
        }
    };
    flag(args, "--seed")
        .and_then(parse)
        .or_else(|| std::env::var("AFTA_SEED").ok().as_deref().and_then(parse))
        .unwrap_or(default)
}

/// Writes `value` as JSON to `--json PATH` when the flag is present.
fn write_json<T: serde::Serialize>(args: &[String], value: &T) -> ExitCode {
    if let Some(path) = flag(args, "--json") {
        let rendered = serde_json::to_string_pretty(value).expect("report serializes");
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The machine-readable shape of `e8 --transport both --json`.
#[derive(serde::Serialize)]
struct DifferentialJson {
    sim: ServeExperimentReport,
    tcp: ServeExperimentReport,
    matches: bool,
}

/// The machine-readable shape of `soak --json` (also the per-tenant
/// telemetry artifact CI uploads).
#[derive(serde::Serialize)]
struct SoakJson {
    connections: usize,
    peak_connections: i64,
    frames_sent: u64,
    observed: u64,
    rejected: u64,
    lost: u64,
    digest_observes: u64,
    elapsed_ms: u64,
    tenants: Vec<afta_serve::TenantDigest>,
}

/// `afta-serve serve`: bind the reactor and host tenants until killed.
fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:0");
    let reactor_config = ReactorConfig {
        max_connections: num_flag(args, "--max-connections", 16_384),
        workers: num_flag(args, "--workers", 4),
        ..ReactorConfig::default()
    };
    let serve_config = ServeConfig {
        max_tenants: num_flag(args, "--max-tenants", 256),
        default_mailbox_cap: num_flag(args, "--mailbox-cap", 64),
        retry_after_ms: num_flag(args, "--retry-after-ms", 25),
        seed: seed_flag(args, 0xAF7A),
        ..ServeConfig::default()
    };
    let registry = Registry::new();
    let reactor = match Reactor::bind(addr, reactor_config, serve_config, &registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("afta-serve listening on {}", reactor.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(10));
        let tenants = reactor.with_core(|core| core.tenant_ids().len());
        println!(
            "afta-serve: {} connections (peak {}), {} tenants",
            reactor.connections(),
            reactor.peak_connections(),
            tenants,
        );
    }
}

/// `afta-serve e8`: the differential, on one or both backends.
fn cmd_e8(args: &[String]) -> ExitCode {
    let config = ServeExperimentConfig {
        seed: seed_flag(args, 42),
        tenants: num_flag(args, "--tenants", 8),
        clients: num_flag(args, "--clients", 16),
        rounds: num_flag(args, "--rounds", 12),
        ..ServeExperimentConfig::default()
    };
    let which = flag(args, "--transport").unwrap_or("both");
    let registry = Registry::new();
    let run = |kind: TransportKind| {
        run_serve_experiment(
            &ServeExperimentConfig {
                transport: kind,
                ..config.clone()
            },
            &registry,
        )
    };
    let print_report = |r: &ServeExperimentReport| {
        println!(
            "E8 {} seed={} tenants={} clients={} rounds={}",
            r.transport, r.seed, config.tenants, config.clients, config.rounds
        );
        for d in &r.digests {
            println!(
                "  t{} digest={} rounds={} observes={} clashes={} rejected={} q={}",
                d.tenant, d.digest, d.rounds, d.observes, d.clashes, d.rejected, d.quarantined
            );
        }
        println!(
            "  combined={} rounds={} clashes={} rejects={}",
            r.combined, r.rounds, r.clashes, r.rejects
        );
    };
    match which {
        "sim" | "tcp" => {
            let kind: TransportKind = which.parse().expect("validated above");
            let report = run(kind);
            print_report(&report);
            write_json(args, &report)
        }
        "both" => {
            let sim = run(TransportKind::Sim);
            let tcp = run(TransportKind::Tcp);
            print_report(&sim);
            print_report(&tcp);
            let matches = differential_matches(&sim, &tcp);
            let code = write_json(
                args,
                &DifferentialJson {
                    sim: sim.clone(),
                    tcp: tcp.clone(),
                    matches,
                },
            );
            if matches {
                println!("E8 differential: sim and tcp digests are bit-identical");
                code
            } else {
                eprintln!(
                    "E8 DIFFERENTIAL MISMATCH: sim {} vs tcp {}",
                    sim.combined, tcp.combined
                );
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown transport {other:?} (expected sim|tcp|both)");
            ExitCode::from(2)
        }
    }
}

/// One soak connection: a non-blocking loopback socket plus its framing
/// state.
struct SoakConn {
    stream: TcpStream,
    buf: Vec<u8>,
    acked: u32,
    rejected: u32,
}

/// `afta-serve soak`: open N concurrent connections against an
/// in-process reactor, push `--frames` observations down each, and
/// verify nothing was lost — every frame must come back as `Observed`
/// or an accounted rejection, and the tenants' digests must carry
/// exactly the observed count (the serving NoLostShard invariant).
#[allow(clippy::too_many_lines)]
fn cmd_soak(args: &[String]) -> ExitCode {
    let connections: usize = num_flag(args, "--connections", 10_000);
    let tenants: u16 = num_flag(args, "--tenants", 8);
    let frames: u32 = num_flag(args, "--frames", 1);
    let workers: usize = num_flag(args, "--workers", 4);
    let timeout = Duration::from_millis(num_flag(args, "--timeout-ms", 60_000));
    let seed = seed_flag(args, 0xAF7A);

    let registry = Registry::new();
    let reactor_config = ReactorConfig {
        max_connections: connections + 64,
        workers,
        ..ReactorConfig::default()
    };
    let serve_config = ServeConfig {
        max_tenants: usize::from(tenants).max(1),
        // One stream per connection: the cap must clear connections/tenants.
        max_streams_per_tenant: u32::MAX,
        seed,
        ..ServeConfig::default()
    };
    let reactor = match Reactor::bind("127.0.0.1:0", reactor_config, serve_config, &registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot bind the soak reactor: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = reactor.local_addr();
    let started = Instant::now();

    // Register the tenants through a plain blocking control connection.
    {
        let mut control = TcpStream::connect(addr).expect("connect control");
        control
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set timeout");
        for t in 0..tenants {
            let frame = Frame::request(
                TenantId(t),
                0,
                Request::RegisterTenant {
                    expected_clients: u32::MAX, // soak never completes a round
                    mailbox_cap: 8192,
                    ballot_min: i64::MIN,
                    ballot_max: i64::MAX,
                },
            );
            send_framed(&mut control, &frame);
            match recv_framed(&mut control) {
                Reply::Registered { tenant } => assert_eq!(tenant, t),
                other => {
                    eprintln!("soak tenant {t} registration refused: {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Open every connection (blocking connect is fast on loopback; the
    // reactor accepts concurrently), then go non-blocking for the sweep.
    let mut conns: Vec<SoakConn> = Vec::with_capacity(connections);
    for i in 0..connections {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nonblocking(true).expect("nonblocking client");
                let _ = stream.set_nodelay(true);
                conns.push(SoakConn {
                    stream,
                    buf: Vec::new(),
                    acked: 0,
                    rejected: 0,
                });
            }
            Err(e) => {
                eprintln!("soak connect {i}/{connections} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Push the observations.  Frames are small enough that the socket
    // buffer absorbs them; a WouldBlock here retries on the next pass.
    let mut sent: u64 = 0;
    for pass in 0..frames {
        for (i, conn) in conns.iter_mut().enumerate() {
            let tenant = TenantId(u16::try_from(i % usize::from(tenants)).expect("tenant fits"));
            let stream_id = u32::try_from(i / usize::from(tenants)).expect("stream fits");
            let frame = Frame::request(
                tenant,
                stream_id,
                Request::Observe {
                    key: "ballot".into(),
                    value: i64::try_from(i).unwrap_or(0) + i64::from(pass),
                },
            );
            let bytes = frame.encode();
            let mut msg = Vec::with_capacity(4 + bytes.len());
            msg.extend_from_slice(&u32::try_from(bytes.len()).expect("fits").to_be_bytes());
            msg.extend_from_slice(&bytes);
            if write_all_blocking(&mut conn.stream, &msg).is_err() {
                eprintln!("soak write on connection {i} failed");
                return ExitCode::FAILURE;
            }
            sent += 1;
        }
    }

    // Sweep for replies until everything is accounted or the budget is
    // spent.
    let mut scratch = vec![0u8; 8192];
    let expect_per_conn = frames;
    loop {
        let mut outstanding = 0u64;
        let mut progressed = false;
        for conn in &mut conns {
            if conn.acked + conn.rejected >= expect_per_conn {
                continue;
            }
            outstanding += 1;
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => break,
                    Ok(n) => {
                        progressed = true;
                        conn.buf.extend_from_slice(&scratch[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            while conn.buf.len() >= 4 {
                let len = u32::from_be_bytes(conn.buf[..4].try_into().expect("4 bytes")) as usize;
                if conn.buf.len() < 4 + len {
                    break;
                }
                let reply = Frame::decode(&conn.buf[4..4 + len]).expect("valid reply frame");
                conn.buf.drain(..4 + len);
                match reply.body {
                    Body::Reply(Reply::Observed { .. }) => conn.acked += 1,
                    Body::Reply(Reply::Rejected { .. }) => conn.rejected += 1,
                    other => panic!("unexpected soak reply: {other:?}"),
                }
            }
        }
        if outstanding == 0 {
            break;
        }
        if started.elapsed() > timeout {
            eprintln!(
                "soak timed out with {outstanding} connections still waiting after {:?}",
                started.elapsed()
            );
            return ExitCode::FAILURE;
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let observed: u64 = conns.iter().map(|c| u64::from(c.acked)).sum();
    let rejected: u64 = conns.iter().map(|c| u64::from(c.rejected)).sum();
    let peak = reactor.peak_connections();
    let digests: Vec<_> = reactor.with_core(|core| {
        core.tenant_ids()
            .into_iter()
            .filter_map(|t| core.tenant_digest(t))
            .collect()
    });
    let digest_observes: u64 = digests.iter().map(|d| d.observes).sum();
    let lost = sent - observed - rejected;
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    reactor.shutdown();

    println!(
        "soak: {connections} connections (peak {peak}), {sent} frames, \
         {observed} observed, {rejected} rejected, {lost} lost, \
         digests carry {digest_observes}, {elapsed_ms}ms"
    );
    let report = SoakJson {
        connections,
        peak_connections: peak,
        frames_sent: sent,
        observed,
        rejected,
        lost,
        digest_observes,
        elapsed_ms,
        tenants: digests,
    };
    let code = write_json(args, &report);
    let no_lost_shard = lost == 0 && digest_observes == observed;
    let held_them_all = peak >= i64::try_from(connections).unwrap_or(i64::MAX);
    if no_lost_shard && held_them_all {
        println!("soak: NoLostShard holds");
        code
    } else {
        eprintln!(
            "soak FAILED: lost={lost} digest_observes={digest_observes} observed={observed} \
             peak={peak}/{connections}"
        );
        ExitCode::FAILURE
    }
}

/// Writes one `[len][frame]` message on a blocking socket.
fn send_framed(stream: &mut TcpStream, frame: &Frame) {
    let bytes = frame.encode();
    let len = u32::try_from(bytes.len()).expect("frame fits u32");
    stream
        .write_all(&len.to_be_bytes())
        .and_then(|()| stream.write_all(&bytes))
        .expect("write control frame");
}

/// Reads one reply from a blocking socket.
fn recv_framed(stream: &mut TcpStream) -> Reply {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("control reply length");
    let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut body).expect("control reply body");
    match Frame::decode(&body).expect("valid control reply").body {
        Body::Reply(reply) => reply,
        Body::Request(r) => panic!("server sent a request: {r:?}"),
    }
}

/// `write_all` that rides out `WouldBlock` on a non-blocking socket.
fn write_all_blocking(stream: &mut TcpStream, mut bytes: &[u8]) -> std::io::Result<()> {
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
