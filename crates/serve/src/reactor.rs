//! The poll-based TCP frontend: one readiness loop, a small worker pool.
//!
//! `TcpTransport` spawns two threads per peer — fine for a voting farm
//! of nine, fatal for tens of thousands of monitored clients.  The
//! [`Reactor`] replaces thread-per-connection with:
//!
//! * **one reactor thread** sweeping non-blocking sockets: it accepts
//!   (up to an admission cap), reads whatever is ready, slices the byte
//!   stream into length-prefixed frames, runs cheap admission
//!   ([`ServerCore::enqueue`]) inline, and flushes pending writes —
//!   all without ever blocking on a socket;
//! * **a small worker pool** doing the real work: when a frame is
//!   admitted into a tenant mailbox, the reactor hands that tenant id
//!   to the worker `tenant % workers`, which drains and processes the
//!   mailbox ([`ServerCore::pump`]) and queues the replies back to the
//!   reactor.  Hashing tenants onto workers keeps each tenant's
//!   processing FIFO.
//!
//! The socket sweep is a *readiness loop over non-blocking sockets*
//! built purely on `std::net` (`set_nonblocking` + `WouldBlock`): no
//! `epoll` binding exists in this dependency-free workspace, so the
//! loop trades a bounded idle poll interval for zero unsafe code.  At
//! 10k mostly-idle connections one sweep is a few hundred microseconds
//! of `read` calls returning `WouldBlock` — measured by the
//! `serve.reactor.sweep` histogram, enforced by the CI soak.
//!
//! Framing on the wire is `[u32 big-endian length][frame bytes]` per
//! message — the same outer framing as `TcpTransport` — with the
//! multiplexed [`Frame`](crate::proto::Frame) header inside.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use afta_telemetry::Registry;

use crate::core::{ClientAddr, Enqueued, Outbound, ServeConfig, ServerCore};
use crate::proto::TenantId;

/// Connection ids start here so a reactor [`ClientAddr`] can never
/// collide with a sim-transport `NodeId` (which is at most `u16::MAX`).
pub const CONN_ADDR_BASE: u64 = 1 << 32;

/// Tuning knobs of the [`Reactor`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReactorConfig {
    /// Admission cap: connections beyond this are closed on accept.
    pub max_connections: usize,
    /// Worker threads pumping tenant mailboxes.
    pub workers: usize,
    /// Sleep between sweeps when nothing was ready.
    pub poll_interval: Duration,
    /// Scratch read size per sweep and connection, in bytes.
    pub read_buffer: usize,
    /// Most connections accepted per sweep (bounds accept bursts).
    pub accept_burst: usize,
    /// Largest accepted frame; bigger closes the connection.
    pub max_frame: u32,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            max_connections: 16_384,
            workers: 4,
            poll_interval: Duration::from_millis(1),
            read_buffer: 8 * 1024,
            accept_burst: 256,
            max_frame: 1024 * 1024,
        }
    }
}

/// One connection's state on the reactor thread.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet sliced into frames.
    read_buf: Vec<u8>,
    /// Encoded `[len][frame]` messages waiting to be written.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has been written.
    written: usize,
}

/// Shared between the reactor thread, the workers, and the handle.
struct Shared {
    core: Mutex<ServerCore>,
    /// Replies produced by workers, drained by the reactor each sweep.
    outbox: Mutex<Vec<Outbound>>,
    stop: AtomicBool,
}

/// The poll-based multi-tenant TCP server (see the module docs).
pub struct Reactor {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    registry: Registry,
    reactor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Reactor {
    /// Binds `addr` (port 0 for ephemeral) and starts the reactor
    /// thread plus `config.workers` pump workers.  Telemetry lands in
    /// `registry` under `serve.reactor.*` and `serve.tenant.*`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the listener cannot bind.
    pub fn bind(
        addr: &str,
        config: ReactorConfig,
        serve: ServeConfig,
        registry: &Registry,
    ) -> std::io::Result<Reactor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: Mutex::new(ServerCore::new(serve, registry)),
            outbox: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let worker_count = config.workers.max(1);
        let mut senders: Vec<Sender<TenantId>> = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (tx, rx) = std::sync::mpsc::channel::<TenantId>();
            senders.push(tx);
            let shared = shared.clone();
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }
        let reactor = {
            let shared = shared.clone();
            let registry = registry.clone();
            std::thread::spawn(move || {
                reactor_loop(&shared, &listener, &config, senders, &registry)
            })
        };
        Ok(Reactor {
            shared,
            local_addr,
            registry: registry.clone(),
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Open connections right now.
    #[must_use]
    pub fn connections(&self) -> i64 {
        self.registry.gauge("serve.reactor.connections").get()
    }

    /// Most connections ever open at once.
    #[must_use]
    pub fn peak_connections(&self) -> i64 {
        self.registry.gauge("serve.reactor.peak_connections").get()
    }

    /// Runs `f` with the server core locked (inspection and test hooks;
    /// the lock pauses frame processing, so keep `f` short).
    pub fn with_core<R>(&self, f: impl FnOnce(&mut ServerCore) -> R) -> R {
        f(&mut self.shared.core.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Stops the reactor and workers and joins their threads.  Open
    /// connections are dropped.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The worker side: drain assigned tenants until every sender is gone.
fn worker_loop(shared: &Shared, rx: &Receiver<TenantId>) {
    while let Ok(tenant) = rx.recv() {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let replies = {
            let mut core = shared.core.lock().unwrap_or_else(|e| e.into_inner());
            core.pump(tenant)
        };
        if !replies.is_empty() {
            shared
                .outbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(replies);
        }
    }
}

/// The readiness loop (see the module docs).
#[allow(clippy::too_many_lines)]
fn reactor_loop(
    shared: &Shared,
    listener: &TcpListener,
    config: &ReactorConfig,
    senders: Vec<Sender<TenantId>>,
    registry: &Registry,
) {
    let connections = registry.gauge("serve.reactor.connections");
    let peak = registry.gauge("serve.reactor.peak_connections");
    let accepted = registry.counter("serve.reactor.accepted");
    let refused = registry.counter("serve.reactor.refused");
    let closed = registry.counter("serve.reactor.closed");
    let sweep_span = |r: &Registry| r.span("serve.reactor.sweep");

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = CONN_ADDR_BASE;
    let mut scratch = vec![0u8; config.read_buffer.max(512)];
    let mut dead: Vec<u64> = Vec::new();

    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let span = sweep_span(registry);
        let mut progressed = false;

        // Accept burst, up to the admission cap.
        for _ in 0..config.accept_burst {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if conns.len() >= config.max_connections {
                        // Admission control: refuse by closing; the
                        // client sees a clean EOF instead of a hung
                        // connection.
                        refused.inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.insert(
                        next_id,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            written: 0,
                        },
                    );
                    next_id += 1;
                    accepted.inc();
                    let open = conns.len() as i64;
                    connections.set(open);
                    if open > peak.get() {
                        peak.set(open);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Read sweep: pull ready bytes, slice frames, admit them.
        for (&id, conn) in &mut conns {
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        dead.push(id);
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead.push(id);
                        break;
                    }
                }
            }
            // Slice complete `[len][frame]` messages off the front.
            let mut start = 0usize;
            while conn.read_buf.len() - start >= 4 {
                let len = u32::from_be_bytes(
                    conn.read_buf[start..start + 4].try_into().expect("4 bytes"),
                );
                if len > config.max_frame {
                    dead.push(id);
                    break;
                }
                let end = start + 4 + len as usize;
                if conn.read_buf.len() < end {
                    break;
                }
                let frame = &conn.read_buf[start + 4..end];
                let outcome = {
                    let mut core = shared.core.lock().unwrap_or_else(|e| e.into_inner());
                    core.enqueue(ClientAddr(id), frame)
                };
                match outcome {
                    Enqueued::Handled(replies) | Enqueued::Rejected(replies) => {
                        // Inline replies are always addressed to the
                        // requesting connection (`enqueue` replies to
                        // the sender); worker replies go via the outbox.
                        for (dest, bytes) in replies {
                            debug_assert_eq!(dest.0, id);
                            queue_reply(&mut conn.write_buf, &bytes);
                        }
                    }
                    Enqueued::Queued(tenant) => {
                        let worker = usize::from(tenant.0) % senders.len();
                        let _ = senders[worker].send(tenant);
                    }
                }
                start = end;
            }
            if start > 0 {
                conn.read_buf.drain(..start);
            }
        }

        // Route worker replies into connection write buffers.
        let outbound: Vec<Outbound> = {
            let mut outbox = shared.outbox.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *outbox)
        };
        for (dest, bytes) in outbound {
            if let Some(conn) = conns.get_mut(&dest.0) {
                queue_reply(&mut conn.write_buf, &bytes);
                progressed = true;
            }
            // Replies to a connection that closed meanwhile are dropped,
            // like any send on a broken link.
        }

        // Write sweep: flush as much as each socket accepts.
        for (&id, conn) in &mut conns {
            while conn.written < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => {
                        dead.push(id);
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead.push(id);
                        break;
                    }
                }
            }
            if conn.written > 0 && conn.written == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.written = 0;
            }
        }

        // Reap closed connections.
        if !dead.is_empty() {
            dead.sort_unstable();
            dead.dedup();
            for id in dead.drain(..) {
                if conns.remove(&id).is_some() {
                    closed.inc();
                }
            }
            connections.set(conns.len() as i64);
        }

        span.finish();
        if !progressed {
            std::thread::sleep(config.poll_interval);
        }
    }
}

/// Appends one `[len][frame]` message to a write buffer.
fn queue_reply(buf: &mut Vec<u8>, frame: &[u8]) {
    buf.extend_from_slice(
        &u32::try_from(frame.len())
            .expect("frame fits u32")
            .to_be_bytes(),
    );
    buf.extend_from_slice(frame);
}
