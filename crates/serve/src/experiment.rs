//! E8 — the serving differential: one server core, two transports.
//!
//! E7 proved one *voting farm* behaves identically over the simulated
//! network and real TCP.  E8 raises the stakes to the whole multi-tenant
//! service: N tenants × M client streams drive voting rounds and
//! assumption observations through the full admission / mailbox / pump
//! path, once over [`SimTransport`] (single deterministic thread,
//! [`serve_transport`])
//! and once over loopback TCP through the [`Reactor`] and its worker
//! pool — and every per-tenant digest must come back **bit-identical**.
//!
//! Three properties make that possible, and the experiment exists to
//! keep them true:
//!
//! 1. every ballot and observation is a *pure function* of
//!    `(seed, tenant, client, round)` — no client carries hidden state;
//! 2. a tenant's round completes only at the **round barrier** (all
//!    expected ballots in), and the ballots fold in sorted stream
//!    order, so thread interleaving on the TCP path cannot reorder the
//!    evidence;
//! 3. the digest tail folds order-independent totals only.
//!
//! The per-tenant digests (and their combined fold) are pinned in
//! `ci/pins.toml` as `serve_e8_*`, so a regression in any layer —
//! protocol, mailbox, voting, reactor — turns the differential red.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use afta_net::{NetError, NodeId, SimNetwork, SimTransport, Transport, TransportKind};
use afta_sim::SeedFactory;
use afta_telemetry::Registry;
use rand::Rng;
use serde::Serialize;

use crate::core::{ServeConfig, ServerCore};
use crate::proto::{Body, Frame, Reply, Request, TenantDigest, TenantId};
use crate::reactor::{Reactor, ReactorConfig};
use crate::serve_transport;
use crate::tenant::{fnv1a_64, FNV_OFFSET};

/// Parameters of one E8 run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeExperimentConfig {
    /// Master seed; the only source of randomness.
    pub seed: u64,
    /// Tenants hosted by the server (ids `0..tenants`).
    pub tenants: u16,
    /// Client streams per tenant (stream ids `0..clients`).
    pub clients: u32,
    /// Voting rounds each tenant completes.
    pub rounds: u64,
    /// Which backend carries the traffic.
    pub transport: TransportKind,
    /// Per-tenant mailbox capacity requested at registration (0 = the
    /// server default).
    pub mailbox_cap: usize,
}

impl Default for ServeExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            tenants: 8,
            clients: 16,
            rounds: 12,
            transport: TransportKind::Sim,
            mailbox_cap: 0,
        }
    }
}

/// What one E8 run produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeExperimentReport {
    /// Which backend carried the traffic (`"sim"` or `"tcp"`).
    pub transport: String,
    /// The seed the run was driven by.
    pub seed: u64,
    /// Per-tenant digests, in tenant-id order — the values the
    /// differential compares bit-for-bit across transports.
    pub digests: Vec<TenantDigest>,
    /// FNV-1a fold of every per-tenant digest, in hex: one pinnable
    /// string for the whole run.
    pub combined: String,
    /// Voting rounds completed across all tenants.
    pub rounds: u64,
    /// Assumption clashes raised across all tenants.
    pub clashes: u64,
    /// Requests rejected by quota or lifecycle checks (0 in the
    /// lock-step differential).
    pub rejects: u64,
}

/// The ballot range every E8 tenant registers, deliberately narrower
/// than [`TenantQuotas::default`](crate::tenant::TenantQuotas) so the
/// seeded out-of-range observations below actually clash.
const E8_BALLOT_MIN: i64 = -100;
/// Upper end of the E8 tenant ballot range.
const E8_BALLOT_MAX: i64 = 100;

/// The ballot `client` casts for `round` of `tenant`'s vote: a pure
/// function of the seed, so both transports generate identical traffic
/// without sharing any state.  Most clients agree on the round's
/// consensus value; each dissents with probability 1/8 on its own named
/// seed stream.
#[must_use]
pub fn ballot_value(seed: u64, tenant: u16, client: u32, round: u64) -> String {
    let factory = SeedFactory::new(seed);
    let mut consensus = factory.stream(&format!("serve.value.t{tenant}.r{round}"));
    let agreed: i64 = consensus.gen_range(E8_BALLOT_MIN..=E8_BALLOT_MAX);
    let mut own = factory.stream(&format!("serve.ballot.t{tenant}.c{client}.r{round}"));
    if own.gen_range(0u32..8) == 0 {
        format!("v{}", agreed + 1 + own.gen_range(0i64..5))
    } else {
        format!("v{agreed}")
    }
}

/// The context value `client` reports before balloting in `round`:
/// usually inside the tenant's declared range, escaping it with
/// probability 1/16 (an Ariane-style magnitude excursion) so the run
/// exercises clash detection deterministically.
#[must_use]
pub fn observe_value(seed: u64, tenant: u16, client: u32, round: u64) -> i64 {
    let mut rng =
        SeedFactory::new(seed).stream(&format!("serve.observe.t{tenant}.c{client}.r{round}"));
    if rng.gen_range(0u32..16) == 0 {
        40_000
    } else {
        rng.gen_range(E8_BALLOT_MIN..=E8_BALLOT_MAX)
    }
}

/// One client connection, abstracted over the backend so the sim and
/// TCP runs share the exact same lock-step driver.
trait ClientLink {
    fn send(&mut self, frame: &Frame);
    fn recv(&mut self) -> Frame;
}

/// A sim client: one [`SimTransport`] endpoint; the frame is the
/// envelope payload.
struct SimClient {
    ep: SimTransport,
}

impl ClientLink for SimClient {
    fn send(&mut self, frame: &Frame) {
        self.ep
            .send(NodeId(0), frame.encode())
            .expect("sim send to the server");
    }

    fn recv(&mut self) -> Frame {
        match self.ep.recv_deadline(Duration::from_secs(10)) {
            Ok(envelope) => Frame::decode(&envelope.payload).expect("server sends valid frames"),
            Err(NetError::Timeout) => panic!("no reply from the sim server within 10s"),
            Err(e) => panic!("sim client transport failed: {e}"),
        }
    }
}

/// A TCP client: one blocking loopback socket speaking
/// `[u32 len][frame]`.
struct TcpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to the reactor");
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set read timeout");
        Self {
            stream,
            buf: Vec::new(),
        }
    }
}

impl ClientLink for TcpClient {
    fn send(&mut self, frame: &Frame) {
        let bytes = frame.encode();
        let len = u32::try_from(bytes.len()).expect("frame fits u32");
        self.stream
            .write_all(&len.to_be_bytes())
            .and_then(|()| self.stream.write_all(&bytes))
            .expect("write to the reactor");
    }

    fn recv(&mut self) -> Frame {
        let mut scratch = [0u8; 4096];
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
                if self.buf.len() >= 4 + len {
                    let frame =
                        Frame::decode(&self.buf[4..4 + len]).expect("server sends valid frames");
                    self.buf.drain(..4 + len);
                    return frame;
                }
            }
            let n = self
                .stream
                .read(&mut scratch)
                .expect("reply from the reactor within 10s");
            assert!(n > 0, "reactor closed the connection mid-conversation");
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }
}

/// Receives one reply frame, panicking on anything else.
fn recv_reply(client: &mut dyn ClientLink) -> Reply {
    match client.recv().body {
        Body::Reply(reply) => reply,
        Body::Request(r) => panic!("server sent a request: {r:?}"),
    }
}

/// The shared lock-step driver: registers every tenant, then per round
/// has every client observe and ballot (awaiting each reply before the
/// next request), drains the round-result broadcast, and finally reads
/// every tenant's digest.  One request is in flight at a time, so the
/// traffic — and therefore the evidence — is identical on both
/// backends.
fn drive(clients: &mut [Box<dyn ClientLink>], config: &ServeExperimentConfig) -> Vec<TenantDigest> {
    let per = config.clients as usize;
    let idx = |t: u16, c: u32| usize::from(t) * per + c as usize;
    for t in 0..config.tenants {
        let client = &mut clients[idx(t, 0)];
        client.send(&Frame::request(
            TenantId(t),
            0,
            Request::RegisterTenant {
                expected_clients: config.clients,
                mailbox_cap: config.mailbox_cap,
                ballot_min: E8_BALLOT_MIN,
                ballot_max: E8_BALLOT_MAX,
            },
        ));
        match recv_reply(client.as_mut()) {
            Reply::Registered { tenant } => assert_eq!(tenant, t),
            other => panic!("tenant {t} registration refused: {other:?}"),
        }
    }
    for round in 1..=config.rounds {
        for t in 0..config.tenants {
            for c in 0..config.clients {
                let client = &mut clients[idx(t, c)];
                client.send(&Frame::request(
                    TenantId(t),
                    c,
                    Request::Observe {
                        key: "ballot".into(),
                        value: observe_value(config.seed, t, c, round),
                    },
                ));
                match recv_reply(client.as_mut()) {
                    Reply::Observed { .. } => {}
                    other => panic!("t{t}/c{c}/r{round}: expected Observed, got {other:?}"),
                }
                client.send(&Frame::request(
                    TenantId(t),
                    c,
                    Request::Ballot {
                        round,
                        value: ballot_value(config.seed, t, c, round),
                    },
                ));
                match recv_reply(client.as_mut()) {
                    Reply::BallotAccepted { round: r } => assert_eq!(r, round),
                    other => panic!("t{t}/c{c}/r{round}: expected BallotAccepted, got {other:?}"),
                }
            }
            // The barrier is now met: every stream receives the round
            // broadcast.
            for c in 0..config.clients {
                match recv_reply(clients[idx(t, c)].as_mut()) {
                    Reply::RoundResult(result) => assert_eq!(result.round, round),
                    other => panic!("t{t}/c{c}/r{round}: expected RoundResult, got {other:?}"),
                }
            }
        }
    }
    let mut digests = Vec::with_capacity(usize::from(config.tenants));
    for t in 0..config.tenants {
        let client = &mut clients[idx(t, 0)];
        client.send(&Frame::request(TenantId(t), 0, Request::Digest));
        match recv_reply(client.as_mut()) {
            Reply::Digest(digest) => digests.push(digest),
            other => panic!("tenant {t} digest refused: {other:?}"),
        }
    }
    digests
}

/// Folds the per-tenant digests into the report.
fn report_from(
    transport: TransportKind,
    config: &ServeExperimentConfig,
    digests: Vec<TenantDigest>,
) -> ServeExperimentReport {
    let combined = digests.iter().fold(FNV_OFFSET, |acc, d| {
        fnv1a_64(fnv1a_64(acc, d.digest.as_bytes()), b"\n")
    });
    ServeExperimentReport {
        transport: transport.to_string(),
        seed: config.seed,
        rounds: digests.iter().map(|d| d.rounds).sum(),
        clashes: digests.iter().map(|d| d.clashes).sum(),
        rejects: digests.iter().map(|d| d.rejected).sum(),
        combined: format!("{combined:016x}"),
        digests,
    }
}

/// Runs E8 over the deterministic [`SimNetwork`]: the server core on
/// one thread behind [`serve_transport`], every client an endpoint of
/// the same simulated network.
fn run_on_sim(config: &ServeExperimentConfig, registry: &Registry) -> ServeExperimentReport {
    let total = usize::from(config.tenants) * config.clients as usize;
    assert!(
        total < usize::from(u16::MAX),
        "tenants * clients must fit the sim's u16 node-id space"
    );
    let net = SimNetwork::new(config.seed);
    let server_ep = net.endpoint(NodeId(0));
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        let registry = registry.clone();
        let serve = ServeConfig {
            seed: config.seed,
            ..ServeConfig::default()
        };
        std::thread::spawn(move || {
            let mut core = ServerCore::new(serve, &registry);
            serve_transport(&server_ep, &mut core, &stop);
        })
    };
    let mut clients: Vec<Box<dyn ClientLink>> = Vec::with_capacity(total);
    for t in 0..config.tenants {
        for c in 0..config.clients {
            let node = NodeId(
                u16::try_from(1 + usize::from(t) * config.clients as usize + c as usize)
                    .expect("checked above"),
            );
            clients.push(Box::new(SimClient {
                ep: net.endpoint(node),
            }));
        }
    }
    let digests = drive(&mut clients, config);
    stop.store(true, Ordering::Release);
    net.close();
    server.join().expect("server thread exits cleanly");
    report_from(TransportKind::Sim, config, digests)
}

/// Runs E8 over loopback TCP through the [`Reactor`] and its worker
/// pool — real sockets, real thread interleaving.
fn run_on_tcp(config: &ServeExperimentConfig, registry: &Registry) -> ServeExperimentReport {
    let serve = ServeConfig {
        seed: config.seed,
        ..ServeConfig::default()
    };
    let reactor = Reactor::bind("127.0.0.1:0", ReactorConfig::default(), serve, registry)
        .expect("bind the loopback reactor");
    let addr = reactor.local_addr();
    let total = usize::from(config.tenants) * config.clients as usize;
    let mut clients: Vec<Box<dyn ClientLink>> = (0..total)
        .map(|_| Box::new(TcpClient::connect(addr)) as Box<dyn ClientLink>)
        .collect();
    let digests = drive(&mut clients, config);
    reactor.shutdown();
    report_from(TransportKind::Tcp, config, digests)
}

/// Runs one E8 experiment on the backend named by
/// `config.transport`.
#[must_use]
pub fn run_serve_experiment(
    config: &ServeExperimentConfig,
    registry: &Registry,
) -> ServeExperimentReport {
    match config.transport {
        TransportKind::Sim => run_on_sim(config, registry),
        TransportKind::Tcp => run_on_tcp(config, registry),
    }
}

/// Runs the full differential — the same configuration over both
/// backends — and returns `(sim, tcp)`.  The caller asserts the digests
/// match; [`differential_matches`] does it for you.
#[must_use]
pub fn run_serve_differential(
    config: &ServeExperimentConfig,
    registry: &Registry,
) -> (ServeExperimentReport, ServeExperimentReport) {
    let sim = run_serve_experiment(
        &ServeExperimentConfig {
            transport: TransportKind::Sim,
            ..config.clone()
        },
        registry,
    );
    let tcp = run_serve_experiment(
        &ServeExperimentConfig {
            transport: TransportKind::Tcp,
            ..config.clone()
        },
        registry,
    );
    (sim, tcp)
}

/// Whether two runs produced bit-identical evidence: same per-tenant
/// digests (in order) and same combined fold.
#[must_use]
pub fn differential_matches(a: &ServeExperimentReport, b: &ServeExperimentReport) -> bool {
    a.combined == b.combined && a.digests == b.digests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_and_observe_values_are_pure() {
        assert_eq!(ballot_value(42, 3, 7, 5), ballot_value(42, 3, 7, 5));
        assert_eq!(observe_value(42, 3, 7, 5), observe_value(42, 3, 7, 5));
        assert_ne!(
            (0..64)
                .map(|c| ballot_value(42, 0, c, 1))
                .collect::<Vec<_>>(),
            (0..64)
                .map(|c| ballot_value(43, 0, c, 1))
                .collect::<Vec<_>>(),
            "different seeds give different traffic"
        );
    }

    #[test]
    fn sim_run_is_reproducible() {
        let config = ServeExperimentConfig {
            tenants: 3,
            clients: 4,
            rounds: 3,
            ..ServeExperimentConfig::default()
        };
        let a = run_serve_experiment(&config, &Registry::disabled());
        let b = run_serve_experiment(&config, &Registry::disabled());
        assert_eq!(a, b);
        assert_eq!(a.rounds, 9);
        assert_eq!(a.rejects, 0);
        assert_eq!(a.digests.len(), 3);
    }
}
