//! E0 (Fig. 1): the Serial Presence Detect record.  The paper's Fig. 1 is
//! a photograph of the SPD EEPROM on a DIMM; its *content* — "information
//! about a computer's memory module, e.g. its manufacturer, model, size,
//! and speed" — is what the §3.1 checking rules read.  This binary dumps
//! the SPD records of the simulated machine, including the JSON form a
//! shared failure database would key on.

use afta_memsim::MachineInventory;

fn main() {
    let machine = MachineInventory::dell_inspiron_6000();
    println!(
        "Serial Presence Detect records ({} banks):\n",
        machine.banks().len()
    );
    for bank in machine.banks() {
        let spd = &bank.spd;
        println!("slot {}:", bank.slot);
        println!("  vendor:     {}", spd.vendor);
        println!("  model:      {}", spd.model);
        println!("  serial:     {}", spd.serial);
        println!("  lot:        {}", spd.lot);
        println!("  size:       {} MiB", spd.size_mib);
        println!(
            "  clock:      {} MHz ({:.1} ns)",
            spd.clock_mhz,
            spd.cycle_ns()
        );
        println!("  width:      {} bits", spd.width_bits);
        println!("  technology: {}", spd.technology);
        println!("  model key:  {}", spd.model_key());
        println!("  lot key:    {}", spd.lot_key());
        println!(
            "  json:       {}\n",
            serde_json::to_string(spd).expect("SPD serialises")
        );
    }
}
