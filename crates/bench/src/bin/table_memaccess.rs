//! E2 (§3.1): the method-selection table.  For each design-time
//! hypothesis `f0..f4` the Autoconf-like configuration step selects the
//! minimum-cost tolerant access method — and a workload on the simulated
//! hardware verifies the selection (silently-wrong reads under the naive
//! M0 versus the selected method).
//!
//! Flags: `--passes N` (workload read passes, default 20).

use afta_bench::arg_u64;
use afta_memaccess::{
    configure, run_workload, FailureKnowledgeBase, FailureRecord, MethodKind, WorkloadConfig,
};
use afta_memsim::{BehaviorClass, FaultRates, MemoryTechnology, Severity, Spd};

fn workload_errors(kind: MethodKind, rates: FaultRates, passes: u64, seed: u64) -> (u64, u64) {
    let mut m = kind.instantiate(2048, rates, seed);
    let report = run_workload(
        m.as_mut(),
        &WorkloadConfig {
            slots: 256,
            operations: passes * 256,
            write_percent: 10,
            seed,
        },
    );
    (report.wrong_reads, report.lost_accesses)
}

fn main() {
    let passes = arg_u64("--passes", 20);
    let mut kb = FailureKnowledgeBase::new();
    for class in BehaviorClass::ALL {
        kb.insert_model(
            format!("SIM/{}", class.label()),
            FailureRecord::new(class, Severity::Nominal),
        );
    }

    println!(
        "{:<4} {:<10} {:<28} {:>6}  {:>14}  {:>14}",
        "f", "selected", "tolerant methods (by cost)", "cost", "M0 wrong/lost", "Mj wrong/lost"
    );
    for (i, class) in BehaviorClass::ALL.into_iter().enumerate() {
        let spd = Spd {
            vendor: "SIM".into(),
            model: class.label().into(),
            serial: "0".into(),
            lot: format!("L{i}"),
            size_mib: 256,
            clock_mhz: 533,
            width_bits: 64,
            technology: MemoryTechnology::Sdram,
        };
        let report = configure(&spd, &kb).expect("kb covers every class");
        // Exercise the selection on a *bad lot* (Harsh = one order of
        // magnitude above nominal) so the short demo workload makes the
        // failure modes visible.
        let rates = FaultRates::for_class(class, Severity::Harsh);
        let (w0, l0) = workload_errors(MethodKind::M0, rates, passes, 100 + i as u64);
        let (wj, lj) = workload_errors(report.method, rates, passes, 100 + i as u64);
        println!(
            "{:<4} {:<10} {:<28} {:>6.1}  {:>8}/{:<5}  {:>8}/{:<5}",
            class.label(),
            report.method.label(),
            report.tolerant_methods.join(" "),
            report.cost,
            w0,
            l0,
            wj,
            lj
        );
    }
    println!(
        "\nSelection rule (§3.1): isolate methods tolerating f, order by cost, take the minimum."
    );
}
