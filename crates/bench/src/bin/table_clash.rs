//! E7/E8 (§3.2): the clash table.  Static redoing (`e1`) livelocks under
//! permanent faults; static reconfiguration (`e2`) wastes spares under
//! transient faults; the adaptive alpha-count manager avoids both.
//!
//! Flags: `--rounds N` (default 1000), `--seed N` (default 42).

use afta_bench::arg_u64;
use afta_ftpatterns::{run_clash_table, ScenarioConfig};

fn main() {
    let rounds = arg_u64("--rounds", 1000);
    let seed = arg_u64("--seed", 42);
    let config = ScenarioConfig {
        rounds,
        seed,
        ..ScenarioConfig::default()
    };

    println!(
        "{:<38} {:<26} {:>9} {:>9} {:>8} {:>7} {:>10}  clash",
        "strategy", "environment", "ok", "failed", "retries", "spares", "livelocks"
    );
    for r in run_clash_table(config) {
        let mut tags = Vec::new();
        if r.shows_livelock() && r.livelocks > r.rounds / 20 {
            tags.push("e1 LIVELOCK");
        }
        if r.shows_waste() {
            tags.push("e2 WASTE");
        }
        println!(
            "{:<38} {:<26} {:>9} {:>9} {:>8} {:>7} {:>10}  {}",
            r.strategy.to_string(),
            r.environment.to_string(),
            r.successes,
            r.failures,
            r.retries,
            r.spares_consumed,
            r.livelocks,
            tags.join(" + ")
        );
    }
    println!(
        "\npaper §3.2: a clash of e1 implies a livelock; a clash of e2 implies unnecessary \
         expenditure of resources; the adaptive strategy (alpha-count -> DAG injection) \
         \"always [uses] the most appropriate design pattern\"."
    );
}
