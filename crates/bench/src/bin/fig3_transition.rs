//! E2b (Fig. 3): "Transition from a redoing scheme (D1) to a
//! reconfiguration scheme (D2) is obtained by replacing component c3,
//! which tolerates transient faults by redoing its computation, with a
//! 2-version scheme where a primary component (c3.1) is taken over by a
//! secondary one (c3.2) in case of permanent faults."
//!
//! Prints both snapshots, performs the injection on a live reflective
//! architecture, and shows the structural diff the injection applied.

use afta_dag::{fig3_snapshots, ComponentGraph, ReflectiveArchitecture};

fn render(graph: &ComponentGraph) -> String {
    let mut out = String::new();
    for c in graph.components() {
        let succ: Vec<String> = graph
            .successors(&c.id)
            .map(|s| s.as_str().to_owned())
            .collect();
        out.push_str(&format!(
            "    {} [{}]{}\n",
            c.id,
            c.kind,
            if succ.is_empty() {
                String::new()
            } else {
                format!(" -> {}", succ.join(", "))
            }
        ));
    }
    out
}

fn main() {
    let (d1, d2) = fig3_snapshots();
    println!("D1 — redoing scheme (assumption e1: transient faults):");
    print!("{}", render(&d1));
    println!("\nD2 — reconfiguration scheme (assumption e2: permanent faults):");
    print!("{}", render(&d2));

    let mut arch = ReflectiveArchitecture::new(d1.clone());
    arch.store_snapshot("D1", d1).unwrap();
    arch.store_snapshot("D2", d2).unwrap();
    let diff = arch.inject("D2").unwrap();

    println!("\ninjecting D2 on the reflective DAG applied this diff:");
    for c in &diff.removed_components {
        println!("    - component {c}");
    }
    for c in &diff.added_components {
        println!("    + component {c}");
    }
    for (a, b) in &diff.removed_edges {
        println!("    - edge {a} -> {b}");
    }
    for (a, b) in &diff.added_edges {
        println!("    + edge {a} -> {b}");
    }
    println!(
        "\nrunning architecture after injection ({} components, topological order {:?})",
        arch.current().len(),
        arch.current()
            .topological_order()
            .iter()
            .map(|c| c.as_str().to_owned())
            .collect::<Vec<_>>()
    );
}
