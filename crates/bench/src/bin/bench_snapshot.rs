//! `bench_snapshot` — the tracked BENCH trajectory for the hot paths.
//!
//! Runs pinned bus / voting / alpha-count / dataflow workloads under a
//! counting global allocator and emits a schema-stable snapshot
//! (`BENCH_9.json`): ops/sec, p50/p99 latency in ns/op, and allocs/op
//! for each workload, plus the sharded-bus and arena-voting speedups
//! over their retained pre-change baselines ([`ReferenceBus`] and a
//! fresh-`Vec` + `HashMap` majority loop).
//!
//! Modes:
//!
//! - `bench_snapshot` — run and print the snapshot JSON to stdout.
//! - `bench_snapshot --write [PATH]` — run and write `PATH`
//!   (default `BENCH_9.json`), refreshing the committed trajectory.
//! - `bench_snapshot --check PATH` — run and compare against the
//!   committed snapshot with ±15% bands; exits non-zero on regression
//!   and writes the candidate run next to `PATH` as
//!   `<stem>.candidate.json` so CI can upload it as an artifact.
//!   **First run**: a missing `PATH` is not a failure — there is no
//!   baseline yet, so ratio checks are skipped and the gate passes with
//!   a note telling you to `--write` one.
//! - `--prior PATH` (with any mode) — compare against an earlier
//!   `BENCH_*.json` and emit a `trajectory` field: the current
//!   speedup ratios divided by the prior snapshot's (a ratio of ratios,
//!   so machines divide out).  With no prior snapshot the field is
//!   `"trajectory": null` — never a fabricated baseline.
//!
//! Absolute throughput depends on the machine, so the `--check` gate
//! compares the *machine-independent* signals: the sharded-vs-reference
//! speedup ratios (which divide the machine out) and allocs/op (which
//! is exact).  Absolute ops/sec deltas are printed as advisory lines
//! only.  Schema drift — a workload added, removed, or renamed — also
//! fails the gate, keeping the trajectory comparable across PRs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use afta_alphacount::{AlphaCount, DecayPolicy, Judgment};
use afta_bench::arg_str;
use afta_dag::{Component, ComponentGraph};
use afta_eventbus::reference::ReferenceBus;
use afta_eventbus::Bus;
use afta_lint::{DataflowSolver, IntInterval, IntervalEnv};
use afta_voting::{VoteOutcome, VotingFarm};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Counting allocator: allocs/op is measured, not asserted.
// ---------------------------------------------------------------------------

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Snapshot schema (schema-stable: field order is declaration order).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Workload {
    name: String,
    ops: u64,
    ops_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
    allocs_per_op: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Speedups {
    /// Sharded bus publish+drain throughput over [`ReferenceBus`].
    bus_publish_drain: f64,
    /// Arena/Boyer–Moore voting rounds/sec over the fresh-allocation
    /// `HashMap`-majority baseline.
    voting_round: f64,
}

/// How the machine-independent speedups moved relative to a prior
/// committed snapshot: a ratio of ratios, so the machine divides out.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    /// The `bench` tag of the prior snapshot, e.g. `BENCH_6`.
    prior_bench: String,
    /// Current speedups divided by the prior snapshot's (> 1 means the
    /// optimized path pulled further ahead of its baseline).
    speedup: Speedups,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Snapshot {
    schema: String,
    bench: String,
    workloads: Vec<Workload>,
    speedups: Speedups,
    /// `null` on a first run with no prior `BENCH_*.json` to compare
    /// against — never a fabricated baseline.
    trajectory: Option<Trajectory>,
}

const SCHEMA: &str = "afta-bench-snapshot/v2";
const BENCH: &str = "BENCH_9";
const TOLERANCE: f64 = 0.15;

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

/// Runs `batches` repetitions of `batch` (each performing `ops_per_batch`
/// operations), timing each repetition.  One warm-up repetition faults in
/// topics, rings, and arenas so the measured region is steady state.
fn measure(name: &str, batches: usize, ops_per_batch: u64, mut batch: impl FnMut()) -> Workload {
    batch(); // warm-up: reach steady state before the first sample

    let mut per_op_ns: Vec<f64> = Vec::with_capacity(batches);
    let allocs_before = allocations();
    for _ in 0..batches {
        let t = Instant::now();
        batch();
        per_op_ns.push(t.elapsed().as_nanos() as f64 / ops_per_batch as f64);
    }
    let allocs = allocations() - allocs_before;

    per_op_ns.sort_by(|a, b| a.total_cmp(b));
    let ops = batches as u64 * ops_per_batch;
    // Throughput from the 10%-trimmed mean of per-batch latencies:
    // scheduler preemptions and frequency ramps land in the dropped
    // tail, so the figure tracks the workload rather than the machine's
    // mood.  p99 still reports the (untrimmed) tail latency.
    let trimmed = &per_op_ns[..per_op_ns.len() - per_op_ns.len() / 10];
    let mean_ns = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
    Workload {
        name: name.to_string(),
        ops,
        ops_per_sec: 1.0e9 / mean_ns,
        p50_ns: percentile(&per_op_ns, 50.0),
        p99_ns: percentile(&per_op_ns, 99.0),
        allocs_per_op: allocs as f64 / ops as f64,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Reading(u64);

const BUS_BATCH: u64 = 64;
const BUS_BATCHES: usize = 8_000;

/// Sharded bus hot path: a [`Publisher`](afta_eventbus::Publisher)
/// handle feeding
/// `publish_batch` (one topic lookup and one subscriber-list acquire
/// per 64 events) drained through `drain_batch` into a reusable buffer
/// — the §4 ambient-monitoring loop (0 allocs/op).
fn bus_publish_drain() -> Workload {
    let bus = Bus::new();
    let publisher = bus.publisher::<Reading>();
    let sub = bus.subscribe::<Reading>();
    let mut out: Vec<Reading> = Vec::with_capacity(BUS_BATCH as usize);
    let mut next = 0u64;
    measure("bus_publish_drain", BUS_BATCHES, BUS_BATCH, || {
        let base = next;
        publisher.publish_batch((0..BUS_BATCH).map(|i| Reading(base + i)));
        next += BUS_BATCH;
        out.clear();
        sub.drain_batch(&mut out);
        assert_eq!(out.len(), BUS_BATCH as usize);
    })
}

/// Per-event `Bus::publish` on the sharded bus (full shard + topic
/// lookup every event) — tracked so the unbatched path has a
/// trajectory too.
fn bus_publish_single() -> Workload {
    let bus = Bus::new();
    let sub = bus.subscribe::<Reading>();
    let mut out: Vec<Reading> = Vec::with_capacity(BUS_BATCH as usize);
    let mut next = 0u64;
    measure("bus_publish_single", BUS_BATCHES, BUS_BATCH, || {
        for _ in 0..BUS_BATCH {
            bus.publish(Reading(next));
            next += 1;
        }
        out.clear();
        sub.drain_batch(&mut out);
        assert_eq!(out.len(), BUS_BATCH as usize);
    })
}

/// The retained pre-sharding mutex bus on the identical workload
/// (its drain path returns a fresh `Vec`, as the old API did).
fn bus_publish_drain_reference() -> Workload {
    let bus = ReferenceBus::new();
    let sub = bus.subscribe::<Reading>();
    let mut next = 0u64;
    measure(
        "bus_publish_drain_reference",
        BUS_BATCHES,
        BUS_BATCH,
        || {
            for _ in 0..BUS_BATCH {
                bus.publish(Reading(next));
                next += 1;
            }
            assert_eq!(sub.drain().len(), BUS_BATCH as usize);
        },
    )
}

const VOTE_ROUNDS: u64 = 64;
const VOTE_BATCHES: usize = 4_000;
const VOTE_REPLICAS: usize = 7;

/// Arena-backed voting farm: 7 replicas, one permanent dissenter, so
/// the majority vote, dissenter tracking, and dtof all run every round.
fn voting_round() -> Workload {
    let mut farm = VotingFarm::new(
        VOTE_REPLICAS,
        |i: usize, x: &u64| {
            if i == 2 {
                u64::MAX
            } else {
                *x
            }
        },
    );
    let mut input = 0u64;
    measure("voting_round", VOTE_BATCHES, VOTE_ROUNDS, || {
        for _ in 0..VOTE_ROUNDS {
            let report = farm.round(&input);
            assert!(report.succeeded());
            input += 1;
        }
    })
}

/// The pre-arena baseline: each round collects ballots into a fresh
/// `Vec` and counts them in a fresh `HashMap`, exactly as
/// `majority_vote` worked before the Boyer–Moore rewrite.
fn voting_round_reference() -> Workload {
    let method = |i: usize, x: &u64| if i == 2 { u64::MAX } else { *x };
    let mut input = 0u64;
    measure("voting_round_reference", VOTE_BATCHES, VOTE_ROUNDS, || {
        for _ in 0..VOTE_ROUNDS {
            let ballots: Vec<u64> = (0..VOTE_REPLICAS).map(|i| method(i, &input)).collect();
            let outcome = hashmap_majority(&ballots);
            assert!(matches!(outcome, VoteOutcome::Majority { .. }));
            input += 1;
        }
    })
}

/// The pre-change majority voter: count occurrences in a `HashMap`,
/// take the strict-majority winner if any.
fn hashmap_majority<V: Eq + std::hash::Hash + Clone>(votes: &[V]) -> VoteOutcome<V> {
    if votes.is_empty() {
        return VoteOutcome::NoMajority;
    }
    let mut counts: HashMap<&V, usize> = HashMap::new();
    for v in votes {
        *counts.entry(v).or_insert(0) += 1;
    }
    let (winner, count) = counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .expect("non-empty");
    if 2 * count > votes.len() {
        VoteOutcome::Majority {
            value: winner.clone(),
            dissent: votes.len() - count,
        }
    } else {
        VoteOutcome::NoMajority
    }
}

const ALPHA_RECORDS: u64 = 4_096;
const ALPHA_BATCHES: usize = 2_000;

const DATAFLOW_SOLVES: u64 = 8;
const DATAFLOW_BATCHES: usize = 1_000;
const DATAFLOW_LAYERS: usize = 8;
const DATAFLOW_WIDTH: usize = 8;

/// The whole-program dataflow solver on a dense 8x8 layered DAG: one
/// full interval-environment fixpoint (plus its certificate sweep) per
/// op, the engine behind every `AFTA-D*` rule (tracked for the
/// trajectory; no baseline counterpart).
fn dataflow_fixpoint() -> Workload {
    let mut graph = ComponentGraph::new();
    for layer in 0..DATAFLOW_LAYERS {
        for lane in 0..DATAFLOW_WIDTH {
            graph
                .add(Component::new(format!("n{layer}_{lane}"), "service"))
                .expect("fresh component id");
        }
    }
    for layer in 1..DATAFLOW_LAYERS {
        for from in 0..DATAFLOW_WIDTH {
            for to in 0..DATAFLOW_WIDTH {
                graph
                    .connect(format!("n{}_{from}", layer - 1), format!("n{layer}_{to}"))
                    .expect("fresh edge");
            }
        }
    }
    measure(
        "dataflow_fixpoint",
        DATAFLOW_BATCHES,
        DATAFLOW_SOLVES,
        || {
            for _ in 0..DATAFLOW_SOLVES {
                let mut solver = DataflowSolver::<IntervalEnv>::new(&graph);
                for lane in 0..DATAFLOW_WIDTH {
                    solver.seed(
                        format!("n0_{lane}"),
                        IntervalEnv::of(
                            format!("fact-{lane}"),
                            IntInterval::new(-(lane as i64) - 1, lane as i64 + 1),
                        ),
                    );
                }
                let fixpoint = solver.solve(|_, _, env| env.clone());
                assert!(!fixpoint.widened);
            }
        },
    )
}

/// Branch-free alpha-count update over a deterministic mixed judgment
/// stream (tracked for the trajectory; no baseline counterpart).
fn alphacount_record() -> Workload {
    let mut counter = AlphaCount::new(1.0, 1.0e9, DecayPolicy::Multiplicative(0.5));
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    measure("alphacount_record", ALPHA_BATCHES, ALPHA_RECORDS, || {
        for _ in 0..ALPHA_RECORDS {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let judgment = if rng.is_multiple_of(4) {
                Judgment::Erroneous
            } else {
                Judgment::Correct
            };
            let _ = counter.record(judgment);
        }
    })
}

fn run_all() -> Snapshot {
    let workloads = vec![
        bus_publish_drain(),
        bus_publish_single(),
        bus_publish_drain_reference(),
        voting_round(),
        voting_round_reference(),
        alphacount_record(),
        dataflow_fixpoint(),
    ];
    let ops = |name: &str| {
        workloads
            .iter()
            .find(|w| w.name == name)
            .map(|w| w.ops_per_sec)
            .unwrap_or(0.0)
    };
    let speedups = Speedups {
        bus_publish_drain: ops("bus_publish_drain") / ops("bus_publish_drain_reference"),
        voting_round: ops("voting_round") / ops("voting_round_reference"),
    };
    Snapshot {
        schema: SCHEMA.to_string(),
        bench: BENCH.to_string(),
        workloads,
        speedups,
        trajectory: None,
    }
}

/// Fills in the trajectory against the prior snapshot at `path`.  A
/// missing prior is the first-run case: the trajectory stays `null` and
/// the run carries on — only an unreadable or unparsable file is fatal.
fn attach_trajectory(snapshot: &mut Snapshot, path: &str) -> Result<(), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "bench_snapshot: first run — no prior snapshot at {path}; \
                 emitting trajectory: null"
            );
            return Ok(());
        }
        Err(err) => return Err(format!("cannot read prior {path}: {err}")),
    };
    let prior: Snapshot =
        serde_json::from_str(&text).map_err(|err| format!("cannot parse prior {path}: {err}"))?;
    if !prior.schema.starts_with("afta-bench-snapshot/") {
        return Err(format!("prior {path} is not a bench snapshot"));
    }
    snapshot.trajectory = Some(Trajectory {
        prior_bench: prior.bench,
        speedup: Speedups {
            bus_publish_drain: snapshot.speedups.bus_publish_drain
                / prior.speedups.bus_publish_drain,
            voting_round: snapshot.speedups.voting_round / prior.speedups.voting_round,
        },
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Check mode
// ---------------------------------------------------------------------------

/// Compares a fresh run against the committed snapshot.  Returns the
/// list of violations (empty = pass).
fn check(committed: &Snapshot, candidate: &Snapshot) -> Vec<String> {
    let mut violations = Vec::new();

    if committed.schema != candidate.schema {
        violations.push(format!(
            "schema changed: committed {:?}, candidate {:?}",
            committed.schema, candidate.schema
        ));
    }

    // Schema stability: same workload set, same order.
    let committed_names: Vec<&str> = committed
        .workloads
        .iter()
        .map(|w| w.name.as_str())
        .collect();
    let candidate_names: Vec<&str> = candidate
        .workloads
        .iter()
        .map(|w| w.name.as_str())
        .collect();
    if committed_names != candidate_names {
        violations.push(format!(
            "workload set changed: committed {committed_names:?}, candidate {candidate_names:?}"
        ));
        return violations;
    }

    // Allocation profile is machine-independent and exact: any increase
    // over the committed allocs/op is a regression.
    for (old, new) in committed.workloads.iter().zip(&candidate.workloads) {
        if new.allocs_per_op > old.allocs_per_op + 1.0e-9 {
            violations.push(format!(
                "{}: allocs/op regressed from {:.3} to {:.3}",
                new.name, old.allocs_per_op, new.allocs_per_op
            ));
        }
    }

    // Speedup ratios divide the machine out; gate them with ±15% bands.
    let ratios = [
        (
            "speedup.bus_publish_drain",
            committed.speedups.bus_publish_drain,
            candidate.speedups.bus_publish_drain,
        ),
        (
            "speedup.voting_round",
            committed.speedups.voting_round,
            candidate.speedups.voting_round,
        ),
    ];
    for (name, old, new) in ratios {
        if new < old * (1.0 - TOLERANCE) {
            violations.push(format!(
                "{name}: regressed from {old:.2}x to {new:.2}x (>{:.0}% band)",
                TOLERANCE * 100.0
            ));
        } else if new > old * (1.0 + TOLERANCE) {
            println!(
                "note: {name} improved from {old:.2}x to {new:.2}x — \
                 consider refreshing the snapshot with --write"
            );
        }
    }

    // Absolute throughput is machine-dependent: advisory only.
    for (old, new) in committed.workloads.iter().zip(&candidate.workloads) {
        let delta = (new.ops_per_sec - old.ops_per_sec) / old.ops_per_sec * 100.0;
        println!(
            "info: {:<28} {:>14.0} ops/s (committed {:>14.0}, {delta:+.1}%), \
             p50 {:.1} ns, p99 {:.1} ns, {:.3} allocs/op",
            new.name, new.ops_per_sec, old.ops_per_sec, new.p50_ns, new.p99_ns, new.allocs_per_op
        );
    }

    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let prior_path = args
        .iter()
        .position(|a| a == "--prior")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut snapshot = run_all();
    if let Some(prior) = &prior_path {
        if let Err(msg) = attach_trajectory(&mut snapshot, prior) {
            eprintln!("bench_snapshot: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let snapshot = snapshot;
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");

    if let Some(path) = check_path {
        let committed_text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                // First run: there is no baseline to drift from.  Skip
                // the ratio checks instead of failing (or fabricating
                // one); the gate goes red only once a snapshot exists.
                println!(
                    "bench_snapshot: first run — no committed snapshot at {path}; \
                     skipping ratio checks (create one with --write {path})"
                );
                return ExitCode::SUCCESS;
            }
            Err(err) => {
                eprintln!("bench_snapshot: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let committed: Snapshot = match serde_json::from_str(&committed_text) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("bench_snapshot: cannot parse {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        // Timing bands on a shared machine are probabilistic; retry the
        // whole run a couple of times before declaring a regression so a
        // single noisy attempt cannot fail the gate.  Allocation and
        // schema violations are deterministic and survive every retry.
        let mut candidate = snapshot;
        let mut violations = check(&committed, &candidate);
        for attempt in 2..=3 {
            if violations.is_empty() {
                break;
            }
            eprintln!(
                "bench_snapshot: attempt {} out of band, re-measuring...",
                attempt - 1
            );
            candidate = run_all();
            violations = check(&committed, &candidate);
        }
        if violations.is_empty() {
            println!(
                "bench_snapshot: {path} holds within ±{:.0}% bands",
                TOLERANCE * 100.0
            );
            return ExitCode::SUCCESS;
        }
        let candidate_json = serde_json::to_string_pretty(&candidate).expect("snapshot serializes");
        let candidate_path = path.replace(".json", ".candidate.json");
        let _ = std::fs::write(&candidate_path, format!("{candidate_json}\n"));
        for v in &violations {
            eprintln!("bench_snapshot: FAIL {v}");
        }
        eprintln!("bench_snapshot: candidate snapshot written to {candidate_path}");
        return ExitCode::FAILURE;
    }

    if write {
        let path = arg_str("--write", "BENCH_9.json");
        let path = if path.starts_with("--") || path.is_empty() {
            "BENCH_9.json".to_string()
        } else {
            path
        };
        std::fs::write(&path, format!("{json}\n")).expect("write snapshot");
        println!("bench_snapshot: wrote {path}");
        println!(
            "speedups: bus {:.2}x, voting {:.2}x",
            snapshot.speedups.bus_publish_drain, snapshot.speedups.voting_round
        );
        return ExitCode::SUCCESS;
    }

    println!("{json}");
    ExitCode::SUCCESS
}
