//! E8 (§3.3 at paper scale): the 65-million-step fault-injection run
//! behind the paper's headline — "the system spent 99.92798 % of its
//! execution time making use of the minimal degree of redundancy, namely
//! 3" — executed as a parallel deterministic campaign.
//!
//! The step budget is split across `--shards` independent shards with
//! collision-free derived seeds; `--jobs` worker threads process them
//! (default: all available cores).  The merged report is bit-identical
//! for every worker count, so the only thing more cores buy is time.
//!
//! Flags: `--steps N` (default 65_000_000), `--shards K` (default 64),
//! `--seed N` (default 42), `--jobs N` (default: available parallelism,
//! or `AFTA_CAMPAIGN_JOBS`), `--json` (emit the merged campaign report
//! as JSON instead of the table).

use std::thread;
use std::time::Instant;

use afta_bench::{arg_u64, arg_usize, has_flag};
use afta_campaign::{jobs_from_env, Campaign};
use afta_faultinject::EnvironmentProfile;
use afta_switchboard::{ExperimentConfig, RedundancyPolicy};

fn main() {
    let steps = arg_u64("--steps", 65_000_000);
    let shards = arg_usize("--shards", 64).max(1);
    let seed = arg_u64("--seed", 42);
    let default_jobs =
        jobs_from_env(thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    let jobs = arg_usize("--jobs", default_jobs).max(1);

    // Same storm environment as fig7_histogram, scaled to the total run.
    let calm = (steps / 13).max(20_000);
    let base = ExperimentConfig {
        steps,
        seed,
        profile: EnvironmentProfile::cyclic_storms(calm, 500, 0.0000001, 0.05),
        policy: RedundancyPolicy::default(),
        trace_stride: 0,
    };

    eprintln!("campaign: {steps} steps over {shards} shard(s), {jobs} worker(s) — running...");
    let started = Instant::now();
    let report = Campaign::split(&base, shards)
        .jobs(jobs)
        .run()
        .expect("campaign shards must not panic");
    let elapsed = started.elapsed();

    if has_flag("--json") {
        println!("{}", report.to_json());
        return;
    }

    let stats = &report.stats;
    println!("paper-scale §3.3 campaign — merged dwell-time histogram\n");
    println!("{:>4} {:>16} {:>12}", "r", "time steps", "% of run");
    for (r, count) in stats.histogram.iter() {
        println!(
            "{r:>4} {count:>16} {:>11.5}%",
            100.0 * count as f64 / steps as f64
        );
    }
    let at_min = 100.0 * stats.fraction_at_min(3);
    println!("\nfraction at minimal redundancy (r=3): {at_min:.5}%");
    println!("paper reports: 99.92798% at r=3 over 65M steps, zero voting failures");
    println!(
        "this campaign: voting failures {} | faults injected {} | raises {} | lowers {}",
        stats.voting_failures, stats.faults_injected, stats.raises, stats.lowers
    );
    println!(
        "\nwall time: {:.1}s at {jobs} worker(s)  ({:.0} steps/s; throughput scales with cores)",
        elapsed.as_secs_f64(),
        steps as f64 / elapsed.as_secs_f64()
    );
}
