//! Ablation A1: the §3.3 control-law knobs.
//!
//! The paper fixes `lower_after = 1000` and raises "when dtof is
//! critically low" without exploring either choice.  This sweep
//! quantifies the trade-offs: resource efficiency (fraction of time at
//! minimal redundancy) versus dependability (voting failures) versus
//! control churn (adaptations), under a storm-heavy environment.
//!
//! Flags: `--steps N` (default 200000), `--seed N` (default 42).

use afta_bench::arg_u64;
use afta_switchboard::{ablation_base, sweep_lower_after, sweep_raise_threshold};

fn main() {
    let steps = arg_u64("--steps", 200_000);
    let seed = arg_u64("--seed", 42);
    let base = ablation_base(steps, seed);

    println!("environment: cyclic storms (8k calm / 600 @ p=0.08), {steps} steps, seed {seed}\n");

    println!("--- lower_after sweep (paper value: 1000) ---");
    println!(
        "{:>12} {:>16} {:>16} {:>13}",
        "lower_after", "% at min (r=3)", "voting failures", "adaptations"
    );
    for p in sweep_lower_after(&base, &[50, 200, 1_000, 5_000, 20_000]) {
        println!(
            "{:>12} {:>15.3}% {:>16} {:>13}",
            p.parameter,
            100.0 * p.fraction_at_min,
            p.voting_failures,
            p.adaptations
        );
    }

    println!("\n--- raise_threshold sweep (paper: raise when dtof critically low) ---");
    println!(
        "{:>15} {:>16} {:>16} {:>13}",
        "raise_threshold", "% at min (r=3)", "voting failures", "adaptations"
    );
    for p in sweep_raise_threshold(&base, &[0, 1, 2]) {
        println!(
            "{:>15} {:>15.3}% {:>16} {:>13}",
            p.parameter,
            100.0 * p.fraction_at_min,
            p.voting_failures,
            p.adaptations
        );
    }

    println!(
        "\nreading: lower_after trades efficiency (short quota = more time at r=3) against \
         exposure to back-to-back storms; raise_threshold 0 waits for an actual voting \
         failure before growing — the clash the scheme exists to avoid."
    );
}
