//! E4 (Fig. 5): distance-to-failure in a replication-and-voting scheme
//! with 7 replicas, panel by panel.

use afta_voting::{dtof, dtof_max, majority_vote, VoteOutcome};

fn main() {
    let n = 7;
    println!(
        "distance-to-failure, n = {n} replicas (dtof_max = {})\n",
        dtof_max(n)
    );
    println!(
        "{:<6} {:<28} {:>4} {:>6}",
        "panel", "vote vector", "m", "dtof"
    );

    // The four panels of Fig. 5: consensus, growing dissent, no majority.
    let panels: [(&str, Vec<u32>); 4] = [
        ("(a)", vec![1, 1, 1, 1, 1, 1, 1]),
        ("(b)", vec![1, 1, 1, 9, 1, 1, 1]),
        ("(c)", vec![1, 9, 1, 8, 1, 1, 1]),
        ("(d)", vec![1, 9, 2, 8, 3, 7, 4]),
    ];
    for (panel, votes) in panels {
        let outcome = majority_vote(&votes);
        let (m, d) = match &outcome {
            VoteOutcome::Majority { dissent, .. } => (dissent.to_string(), dtof(n, Some(*dissent))),
            VoteOutcome::NoMajority => ("-".to_owned(), dtof(n, None)),
        };
        println!("{panel:<6} {:<28} {m:>4} {d:>6}", format!("{votes:?}"));
    }
    println!("\n(d) reaches dtof = 0: no majority can be found — failure.");
}
