//! E4 (Fig. 5): distance-to-failure in a replication-and-voting scheme
//! with 7 replicas, panel by panel — plus an empirical dtof distribution
//! measured over a fault-injection campaign at fixed redundancy 7.
//!
//! Flags: `--steps N` (default 200_000, total across shards), `--p F`
//! (per-replica fault probability, default 0.05), `--shards K` (default
//! 4), `--jobs N` (campaign worker threads, default 1 or
//! `AFTA_CAMPAIGN_JOBS`).

use afta_bench::{arg_f64, arg_u64, arg_usize};
use afta_campaign::{jobs_from_env, Campaign};
use afta_faultinject::EnvironmentProfile;
use afta_switchboard::{ExperimentConfig, RedundancyPolicy};
use afta_voting::{dtof, dtof_max, majority_vote, VoteOutcome};

fn main() {
    let n = 7;
    println!(
        "distance-to-failure, n = {n} replicas (dtof_max = {})\n",
        dtof_max(n)
    );
    println!(
        "{:<6} {:<28} {:>4} {:>6}",
        "panel", "vote vector", "m", "dtof"
    );

    // The four panels of Fig. 5: consensus, growing dissent, no majority.
    let panels: [(&str, Vec<u32>); 4] = [
        ("(a)", vec![1, 1, 1, 1, 1, 1, 1]),
        ("(b)", vec![1, 1, 1, 9, 1, 1, 1]),
        ("(c)", vec![1, 9, 1, 8, 1, 1, 1]),
        ("(d)", vec![1, 9, 2, 8, 3, 7, 4]),
    ];
    for (panel, votes) in panels {
        let outcome = majority_vote(&votes);
        let (m, d) = match &outcome {
            VoteOutcome::Majority { dissent, .. } => (dissent.to_string(), dtof(n, Some(*dissent))),
            VoteOutcome::NoMajority => ("-".to_owned(), dtof(n, None)),
        };
        println!("{panel:<6} {:<28} {m:>4} {d:>6}", format!("{votes:?}"));
    }
    println!("\n(d) reaches dtof = 0: no majority can be found — failure.");

    // Empirical counterpart: hold redundancy fixed at 7 (the policy's
    // min and max coincide, so the controller never adapts) and measure
    // the dtof distribution under memoryless fault injection, as a
    // parallel deterministic campaign.  The merged `voting.dtof`
    // histogram is bit-identical for every --jobs value.
    let steps = arg_u64("--steps", 200_000);
    let p = arg_f64("--p", 0.05);
    let shards = arg_usize("--shards", 4).max(1);
    let jobs = arg_usize("--jobs", jobs_from_env(1)).max(1);
    let base = ExperimentConfig {
        steps,
        seed: 42,
        profile: EnvironmentProfile::calm(p),
        policy: RedundancyPolicy {
            min: n,
            max: n,
            step: 2,
            raise_threshold: 1,
            lower_after: u64::MAX,
        },
        trace_stride: 0,
    };
    let (report, telemetry) = Campaign::split(&base, shards)
        .jobs(jobs)
        .run_observed()
        .expect("campaign shards must not panic");

    println!(
        "\nempirical dtof distribution at fixed n = {n} \
         ({steps} steps over {shards} shard(s), per-replica fault p = {p}):\n"
    );
    let dtof_hist = telemetry
        .histogram("voting.dtof")
        .expect("voting.dtof observed");
    println!("{:>6} {:>12} {:>10}", "dtof", "rounds", "% of run");
    for (i, &bound) in dtof_hist.bounds.iter().enumerate() {
        if bound > dtof_max(n) as u64 {
            break;
        }
        let count = dtof_hist.counts[i];
        println!(
            "{bound:>6} {count:>12} {:>9.4}%",
            100.0 * count as f64 / steps as f64
        );
    }
    println!(
        "\nrounds {} | no-majority failures {} (dtof = 0) | faults injected {}",
        telemetry.counter("voting.rounds"),
        report.stats.voting_failures,
        report.stats.faults_injected
    );
}
