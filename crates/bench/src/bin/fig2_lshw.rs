//! E1 (Fig. 2): the `lshw`-style memory introspection dump for the
//! simulated Dell Inspiron 6000 — the information the §3.1 Autoconf-like
//! toolset reads through Serial Presence Detect.

use afta_memsim::MachineInventory;

fn main() {
    let machine = MachineInventory::dell_inspiron_6000();
    print!("{}", machine.render_lshw());
    eprintln!(
        "\n(total {} MiB across {} banks; lot keys: {})",
        machine.total_mib(),
        machine.banks().len(),
        machine
            .banks()
            .iter()
            .map(|b| b.spd.lot_key())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
