//! E6 (Fig. 7): the dwell-time histogram of the employed redundancy over
//! a long fault-injection run, log scale, with the fraction of time
//! spent at the minimal degree (the paper reports 99.92798 % at r = 3
//! over 65 million steps, with zero voting failures).
//!
//! Flags: `--steps N` (default 1_000_000; pass 65_000_000 for the paper's
//! full run — use `--release`), `--seed N` (default 42), `--json` (emit
//! the full plot-ready report as JSON on stdout instead of the table),
//! `--telemetry-json` (emit the telemetry report as JSON instead of the
//! human-readable rendering).
//!
//! The run is observed by an `afta-telemetry` registry: the printed
//! `TelemetryReport` mirrors the dwell-time histogram
//! (`switchboard.time_at_r`) and the voting counters exactly, and its
//! flight-recorder journal replays every redundancy change.

use afta_bench::arg_u64;
use afta_faultinject::EnvironmentProfile;
use afta_switchboard::{run_experiment_observed, ExperimentConfig, RedundancyPolicy};
use afta_telemetry::Registry;

fn main() {
    let steps = arg_u64("--steps", 1_000_000);
    let seed = arg_u64("--seed", 42);

    // Rare, short disturbance storms over a long calm background — the
    // §3.3 "heavy and diversified fault injection" environment whose
    // long-run shape Fig. 7 reports.  The cycle length scales with the
    // run so every run sees ~13 storm episodes; each episode costs the
    // system ≈3.7k elevated-redundancy steps (storm + the 3×1000-round
    // lowering staircase), which at 65M steps reproduces the paper's
    // ≈99.93% at r = 3.
    let calm = (steps / 13).max(20_000);
    let profile = EnvironmentProfile::cyclic_storms(calm, 500, 0.0000001, 0.05);
    let config = ExperimentConfig {
        steps,
        seed,
        profile,
        policy: RedundancyPolicy::default(), // lower_after = 1000, as in the paper
        trace_stride: 0,
    };
    let telemetry = Registry::new();
    let report = run_experiment_observed(&config, None, &telemetry);
    let telemetry_report = telemetry.report();

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialises")
        );
        return;
    }
    if std::env::args().any(|a| a == "--telemetry-json") {
        println!("{}", telemetry_report.to_json());
        return;
    }

    println!("lifespan of assumption a(r): \"degree of employed redundancy is r\"\n");
    println!(
        "{:>4} {:>16} {:>12} {:>10}  log-scale",
        "r", "time steps", "% of run", "log10"
    );
    for (r, count) in report.histogram.iter() {
        let frac = 100.0 * count as f64 / steps as f64;
        let log = (count as f64).log10();
        let bar = "#".repeat(log.max(0.0).round() as usize * 4);
        println!("{r:>4} {count:>16} {frac:>11.5}% {log:>10.2}  {bar}");
    }
    println!(
        "\nfraction at minimal redundancy (r=3): {:.5}%",
        100.0 * report.fraction_at_min(3)
    );
    println!(
        "faults injected: {} | voting failures: {} | raises: {} | lowers: {}",
        report.faults_injected, report.voting_failures, report.raises, report.lowers
    );
    println!(
        "\npaper (65M steps): 99.92798% at r=3, zero observed clashes; \
         shape check: minimal degree dominates by orders of magnitude on the log scale."
    );

    // Cross-check: the telemetry layer observed the same run and must
    // agree with the report's own bookkeeping, figure by figure.
    println!("\n{telemetry_report}");
    let mirrored = telemetry_report
        .histogram("switchboard.time_at_r")
        .expect("time_at_r mirrored");
    let matches = report
        .histogram
        .iter()
        .all(|(r, count)| mirrored.bucket_count(r) == Some(count))
        && telemetry_report.counter("voting.failures") == report.voting_failures
        && telemetry_report.counter("switchboard.raises") == report.raises
        && telemetry_report.counter("switchboard.lowers") == report.lowers;
    println!(
        "telemetry cross-check (histogram, voting failures, raises, lowers): {}",
        if matches { "MATCH" } else { "MISMATCH" }
    );
}
