//! E6 (Fig. 7): the dwell-time histogram of the employed redundancy over
//! a long fault-injection run, log scale, with the fraction of time
//! spent at the minimal degree (the paper reports 99.92798 % at r = 3
//! over 65 million steps, with zero voting failures).
//!
//! The run executes as a deterministic campaign: the step budget is
//! split over `--shards` independent shards (collision-free derived
//! seeds, same storm environment), which `--jobs` worker threads
//! process.  The merged histogram is **bit-identical for every jobs
//! value** — with `--jobs N > 1` the binary re-runs the campaign
//! serially, verifies byte-for-byte identity of the merged JSON, and
//! prints the measured speedup (which scales with physical cores).
//!
//! Flags: `--steps N` (default 1_000_000; pass 65_000_000 for the paper's
//! full run — use `--release`), `--seed N` (default 42), `--shards K`
//! (default 8), `--jobs N` (default 1, or `AFTA_CAMPAIGN_JOBS`),
//! `--json` (emit the full merged campaign report as JSON on stdout
//! instead of the table), `--telemetry-json` (emit the merged telemetry
//! report as JSON instead of the human-readable rendering).

use std::time::Instant;

use afta_bench::{arg_u64, arg_usize, has_flag};
use afta_campaign::{jobs_from_env, Campaign};
use afta_faultinject::EnvironmentProfile;
use afta_switchboard::{ExperimentConfig, RedundancyPolicy};

fn main() {
    let steps = arg_u64("--steps", 1_000_000);
    let seed = arg_u64("--seed", 42);
    let shards = arg_usize("--shards", 8).max(1);
    let jobs = arg_usize("--jobs", jobs_from_env(1)).max(1);

    // Rare, short disturbance storms over a long calm background — the
    // §3.3 "heavy and diversified fault injection" environment whose
    // long-run shape Fig. 7 reports.  The cycle length scales with the
    // *total* run so the campaign sees ~13 storm episodes across all
    // shards; each episode costs the system ≈3.7k elevated-redundancy
    // steps (storm + the 3×1000-round lowering staircase), which at 65M
    // steps reproduces the paper's ≈99.93% at r = 3.
    let calm = (steps / 13).max(20_000);
    let profile = EnvironmentProfile::cyclic_storms(calm, 500, 0.0000001, 0.05);
    let base = ExperimentConfig {
        steps,
        seed,
        profile,
        policy: RedundancyPolicy::default(), // lower_after = 1000, as in the paper
        trace_stride: 0,
    };

    let started = Instant::now();
    let (report, telemetry_report) = Campaign::split(&base, shards)
        .jobs(jobs)
        .run_observed()
        .expect("campaign shards must not panic");
    let elapsed = started.elapsed();

    if has_flag("--json") {
        println!("{}", report.to_json());
        return;
    }
    if has_flag("--telemetry-json") {
        println!("{}", telemetry_report.to_json());
        return;
    }

    let stats = &report.stats;
    println!("lifespan of assumption a(r): \"degree of employed redundancy is r\"");
    println!(
        "campaign: {shards} shard(s) x ~{} steps, {jobs} worker(s)\n",
        steps / shards as u64
    );
    println!(
        "{:>4} {:>16} {:>12} {:>10}  log-scale",
        "r", "time steps", "% of run", "log10"
    );
    for (r, count) in stats.histogram.iter() {
        let frac = 100.0 * count as f64 / steps as f64;
        let log = (count as f64).log10();
        let bar = "#".repeat(log.max(0.0).round() as usize * 4);
        println!("{r:>4} {count:>16} {frac:>11.5}% {log:>10.2}  {bar}");
    }
    println!(
        "\nfraction at minimal redundancy (r=3): {:.5}%",
        100.0 * stats.fraction_at_min(3)
    );
    println!(
        "faults injected: {} | voting failures: {} | raises: {} | lowers: {}",
        stats.faults_injected, stats.voting_failures, stats.raises, stats.lowers
    );
    println!(
        "\npaper (65M steps): 99.92798% at r=3, zero observed clashes; \
         shape check: minimal degree dominates by orders of magnitude on the log scale."
    );

    // Cross-check: the telemetry layer observed the same shards and must
    // agree with the merged report's own bookkeeping, figure by figure.
    println!("\n{telemetry_report}");
    let mirrored = telemetry_report
        .histogram("switchboard.time_at_r")
        .expect("time_at_r mirrored");
    let matches = stats
        .histogram
        .iter()
        .all(|(r, count)| mirrored.bucket_count(r) == Some(count))
        && telemetry_report.counter("voting.rounds") == stats.steps
        && telemetry_report.counter("voting.failures") == stats.voting_failures
        && telemetry_report.counter("switchboard.raises") == stats.raises
        && telemetry_report.counter("switchboard.lowers") == stats.lowers;
    println!(
        "telemetry cross-check (histogram, rounds, voting failures, raises, lowers): {}",
        if matches { "MATCH" } else { "MISMATCH" }
    );

    println!(
        "\nwall time ({jobs} worker(s)): {:.3}s  ({:.0} steps/s)",
        elapsed.as_secs_f64(),
        steps as f64 / elapsed.as_secs_f64()
    );

    // Determinism witness + speedup: with jobs > 1, re-run the identical
    // campaign serially and compare the merged JSON byte for byte.
    if jobs > 1 {
        let serial_started = Instant::now();
        let (serial, serial_telemetry) = Campaign::split(&base, shards)
            .jobs(1)
            .run_observed()
            .expect("campaign shards must not panic");
        let serial_elapsed = serial_started.elapsed();
        let identical = serial.to_json() == report.to_json()
            && serial_telemetry.to_json() == telemetry_report.to_json();
        println!(
            "serial reference (1 worker): {:.3}s | parallel result bit-identical: {}",
            serial_elapsed.as_secs_f64(),
            if identical { "YES" } else { "NO — BUG" }
        );
        println!(
            "speedup at {jobs} workers: {:.2}x (scales with physical cores)",
            serial_elapsed.as_secs_f64() / elapsed.as_secs_f64()
        );
        assert!(
            identical,
            "parallel campaign diverged from serial reference"
        );
    }
}
