//! E7 (§3.2 + §3.3 distributed): the sim-vs-TCP differential experiment.
//!
//! Runs the seeded distributed-voting campaign of `afta-net` on the
//! transport(s) selected by `--transport sim|tcp|both` and, for `both`,
//! verifies shard by shard that the per-round digests and the final
//! redundancy dimensioning are identical on the deterministic in-process
//! network and on real loopback TCP sockets.
//!
//! Flags: `--transport sim|tcp|both` (default both), `--seed N` (default
//! 0xE7), `--rounds N` (default 40), `--voters N` (default 9),
//! `--replicas N` (default 3), `--shards K` (default 4), `--jobs N`
//! (default: available parallelism, or `AFTA_CAMPAIGN_JOBS`), `--json`.
//!
//! Exits non-zero when `both` finds a divergence — this is the CI-facing
//! form of the `crates/net/tests/differential.rs` assertion.

use std::process::ExitCode;
use std::thread;
use std::time::Instant;

use afta_bench::{arg_str, arg_u64, arg_usize, has_flag};
use afta_campaign::jobs_from_env;
use afta_net::experiment::{
    run_net_campaign, NetExperimentConfig, NetExperimentReport, TransportKind,
};

fn base_config() -> NetExperimentConfig {
    NetExperimentConfig {
        seed: arg_u64("--seed", 0xE7),
        rounds: arg_u64("--rounds", 40),
        voters: arg_usize("--voters", 9).max(1),
        initial_replicas: arg_usize("--replicas", 3).max(1),
        ..NetExperimentConfig::default()
    }
}

fn run_campaign(kind: TransportKind, shards: usize, jobs: usize) -> Vec<NetExperimentReport> {
    let config = NetExperimentConfig {
        transport: kind,
        ..base_config()
    };
    let started = Instant::now();
    let reports = run_net_campaign(&config, shards, jobs).unwrap_or_else(|panics| {
        for p in &panics {
            eprintln!("{kind}: {p}");
        }
        std::process::exit(2);
    });
    eprintln!(
        "{kind}: {shards} shard(s) x {} round(s) in {:.2}s",
        config.rounds,
        started.elapsed().as_secs_f64()
    );
    reports
}

fn summarize(kind: TransportKind, reports: &[NetExperimentReport]) {
    let majorities: u64 = reports.iter().map(|r| r.majorities).sum();
    let failures: u64 = reports.iter().map(|r| r.failures).sum();
    println!(
        "{kind}: majorities {majorities} | failures {failures} | final replicas per shard {:?}",
        reports.iter().map(|r| r.final_replicas).collect::<Vec<_>>()
    );
}

fn to_json(reports: &[NetExperimentReport]) -> String {
    // Digest lines are plain ASCII; a hand-rolled array keeps the
    // vendored serde out of types that do not otherwise need it.
    let shards: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "{{\"transport\":\"{}\",\"seed\":{},\"final_replicas\":{},\"majorities\":{},\"failures\":{},\"digests\":[{}]}}",
                r.transport,
                r.seed,
                r.final_replicas,
                r.majorities,
                r.failures,
                r.digests
                    .iter()
                    .map(|d| format!("\"{d}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    format!("[{}]", shards.join(","))
}

fn main() -> ExitCode {
    let transport = arg_str("--transport", "both");
    let shards = arg_usize("--shards", 4).max(1);
    let default_jobs =
        jobs_from_env(thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    let jobs = arg_usize("--jobs", default_jobs).max(1);

    match transport.as_str() {
        "sim" | "tcp" => {
            let kind: TransportKind = transport.parse().expect("validated above");
            let reports = run_campaign(kind, shards, jobs);
            if has_flag("--json") {
                println!("{}", to_json(&reports));
            } else {
                summarize(kind, &reports);
            }
            ExitCode::SUCCESS
        }
        "both" => {
            let sim = run_campaign(TransportKind::Sim, shards, jobs);
            let tcp = run_campaign(TransportKind::Tcp, shards, jobs);
            if has_flag("--json") {
                println!("{{\"sim\":{},\"tcp\":{}}}", to_json(&sim), to_json(&tcp));
            } else {
                summarize(TransportKind::Sim, &sim);
                summarize(TransportKind::Tcp, &tcp);
            }
            let mut diverged = false;
            for (index, (s, t)) in sim.iter().zip(tcp.iter()).enumerate() {
                if s.digests != t.digests || s.final_replicas != t.final_replicas {
                    diverged = true;
                    eprintln!("shard {index} DIVERGED:");
                    for (round, (a, b)) in s.digests.iter().zip(t.digests.iter()).enumerate() {
                        if a != b {
                            eprintln!("  round {}: sim {a} | tcp {b}", round + 1);
                        }
                    }
                }
            }
            if diverged {
                eprintln!("differential FAILED: transports disagree");
                ExitCode::FAILURE
            } else {
                // Keep stdout pure JSON under --json; the verdict goes
                // to stderr there so the output stays machine-parsable.
                let verdict =
                    format!("differential OK: {shards} shard(s) bit-identical across sim and tcp");
                if has_flag("--json") {
                    eprintln!("{verdict}");
                } else {
                    println!("{verdict}");
                }
                ExitCode::SUCCESS
            }
        }
        other => {
            eprintln!("unknown --transport {other:?} (expected sim|tcp|both)");
            ExitCode::FAILURE
        }
    }
}
