//! Ablation A2: the alpha-count decay factor K and the windowed variant.
//!
//! The §3.2 oracle's discrimination quality hinges on K: a fast-forgetting
//! filter (small K) never mislabels sparse transients but takes longer to
//! convict an intermittent fault; a slow-forgetting one (large K) flips
//! fast but false-positives on transient bursts.  The sweep measures, per
//! K and per fault pattern:
//!
//! * **flip latency** — rounds from fault onset to the
//!   permanent-or-intermittent verdict (∞ = never);
//! * **false positive** — whether a *transient-only* workload ever gets
//!   convicted.
//!
//! Flags: `--rounds N` (default 2000).

use afta_alphacount::windowed::WindowedCount;
use afta_alphacount::{AlphaCount, DecayPolicy, Judgment, Verdict};
use afta_bench::arg_u64;

/// A fault pattern: does round `i` (0-based, counted from onset) err?
#[derive(Clone, Copy)]
struct Pattern {
    name: &'static str,
    onset: u64,
    errs: fn(u64) -> bool,
}

const PATTERNS: [Pattern; 3] = [
    Pattern {
        name: "permanent (every round)",
        onset: 100,
        errs: |_| true,
    },
    Pattern {
        name: "intermittent (1 in 2)",
        onset: 100,
        errs: |i| i % 2 == 0,
    },
    Pattern {
        name: "sparse transients (1 in 25)",
        onset: 0,
        errs: |i| i % 25 == 0,
    },
];

fn judge(pattern: &Pattern, round: u64) -> Judgment {
    if round >= pattern.onset && (pattern.errs)(round - pattern.onset) {
        Judgment::Erroneous
    } else {
        Judgment::Correct
    }
}

fn flip_latency(
    mut record: impl FnMut(Judgment) -> Verdict,
    pattern: &Pattern,
    rounds: u64,
) -> Option<u64> {
    for round in 0..rounds {
        if record(judge(pattern, round)) == Verdict::PermanentOrIntermittent {
            return Some(round.saturating_sub(pattern.onset) + 1);
        }
    }
    None
}

fn fmt_latency(l: Option<u64>) -> String {
    l.map_or_else(|| "never".to_owned(), |v| format!("{v}"))
}

fn main() {
    let rounds = arg_u64("--rounds", 2_000);

    println!("alpha-count decay sweep, threshold 3.0, {rounds} rounds per cell\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "pattern / K =", "0.1", "0.3", "0.5", "0.7", "0.9", "window 10/4"
    );
    for pattern in &PATTERNS {
        let mut cells = Vec::new();
        for k in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let mut ac = AlphaCount::new(1.0, 3.0, DecayPolicy::Multiplicative(k));
            cells.push(fmt_latency(flip_latency(|j| ac.record(j), pattern, rounds)));
        }
        let mut wc = WindowedCount::new(10, 4);
        let windowed = fmt_latency(flip_latency(|j| wc.record(j), pattern, rounds));
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
            pattern.name, cells[0], cells[1], cells[2], cells[3], cells[4], windowed
        );
    }

    println!(
        "\nreading: rows 1-2 should flip fast (small latency = quick reconfiguration); \
         row 3 should read `never` (a conviction there is a false positive that would \
         waste a spare on a transient).  The paper's K = 0.5 convicts permanents in 4 \
         rounds while never convicting sparse transients — the windowed 10/4 variant \
         trades one extra round of latency for sharper forgetting."
    );
}
