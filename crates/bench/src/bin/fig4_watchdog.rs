//! E3 (Fig. 4): the watchdog + alpha-count scenario.  A permanent design
//! fault is repeatedly injected in the watched task; the watchdog fires,
//! the alpha-count rises past the threshold (3.0), and the fault is
//! labeled "permanent or intermittent".
//!
//! Flags: `--rounds N` (default 15), `--period N` (default 10),
//! `--onset N` (fault onset tick, default 45).

use afta_bench::arg_u64;
use afta_ftpatterns::fig4_scenario_observed;
use afta_sim::Tick;
use afta_telemetry::Registry;

fn main() {
    let rounds = arg_u64("--rounds", 15);
    let period = arg_u64("--period", 10);
    let onset = arg_u64("--onset", 45);

    println!("watchdog period {period}, permanent fault injected at t={onset}, threshold 3.0\n");
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>8}  verdict",
        "round", "tick", "alive", "fired", "alpha"
    );
    let telemetry = Registry::new();
    let trace = fig4_scenario_observed(rounds, period, Tick(onset), &telemetry);
    for row in &trace.rows {
        println!(
            "{:>6} {:>6} {:>6} {:>6} {:>8.3}  {}",
            row.round,
            row.tick.0,
            if row.task_alive { "yes" } else { "no" },
            if row.fired { "FIRE" } else { "-" },
            row.alpha,
            row.verdict
        );
    }
    match trace.labeled_permanent_at {
        Some(r) => println!(
            "\nalpha overcame threshold 3.0 at round {r}: fault labeled \
             \"permanent or intermittent\" (paper Fig. 4)"
        ),
        None => println!("\nthe alpha-count never crossed the threshold"),
    }

    let report = telemetry.report();
    println!(
        "\ntelemetry: checks {} | firings {} | heartbeat misses (journal) {} | verdict flips {}",
        report.counter("watchdog.checks"),
        report.counter("watchdog.firings"),
        report.journal_of_kind("heartbeat-miss").count(),
        report.counter("alphacount.flips"),
    );
}
