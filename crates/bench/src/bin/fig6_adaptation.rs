//! E5 (Fig. 6): "During a simulated experiment, faults are injected, and
//! consequently distance-to-failure decreases.  This triggers an
//! autonomic adaptation of the degree of redundancy."
//!
//! Prints the adaptation time series plus an ASCII strip chart of the
//! redundancy level across the calm -> storm -> calm environment.
//!
//! Flags: `--steps N` (default 30000), `--seed N` (default 42),
//! `--json` (emit the trace + report as JSON instead of the chart),
//! `--seeds K` (default 1; with K > 1 the run becomes a cross-seed
//! replication campaign — K derived seeds, same environment — and a
//! cross-seed summary is appended), `--jobs N` (campaign worker
//! threads, default 1 or `AFTA_CAMPAIGN_JOBS`).

use afta_bench::{arg_u64, arg_usize};
use afta_campaign::{jobs_from_env, Campaign};
use afta_faultinject::{EnvironmentProfile, Phase};
use afta_sim::stats::Summary;
use afta_sim::Tick;
use afta_switchboard::{run_experiment_observed, ExperimentConfig, RedundancyPolicy};
use afta_telemetry::Registry;

fn main() {
    let steps = arg_u64("--steps", 30_000);
    let seed = arg_u64("--seed", 42);
    let seeds = arg_usize("--seeds", 1).max(1);
    let jobs = arg_usize("--jobs", jobs_from_env(1)).max(1);
    let storm_start = steps / 4;
    let storm_len = steps / 10;

    let profile = EnvironmentProfile::new(
        vec![
            Phase::new(storm_start, 0.00001),
            Phase::new(storm_len, 0.08),
            Phase::new(steps - storm_start - storm_len, 0.00001),
        ],
        false,
    );
    let config = ExperimentConfig {
        steps,
        seed,
        profile: profile.clone(),
        policy: RedundancyPolicy::default(),
        trace_stride: steps / 60,
    };
    let telemetry = Registry::new();
    let report = run_experiment_observed(&config, None, &telemetry);

    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialises")
        );
        return;
    }

    println!(
        "environment: calm p=1e-5 | storm p=0.08 during t=[{storm_start}, {})\n",
        storm_start + storm_len
    );
    println!("adaptation events:");
    let mut prev_n = 3;
    for p in &report.trace {
        if p.n != prev_n {
            let dir = if p.n > prev_n { "RAISE" } else { "lower" };
            println!(
                "  t={:>8}  {dir} {prev_n} -> {} (dtof was {}, faults this round {})",
                p.tick.0, p.n, p.dtof, p.faults
            );
            prev_n = p.n;
        }
    }

    // ASCII strip chart of redundancy over time.
    println!(
        "\nredundancy level over time (one column per {} steps):",
        steps / 60
    );
    let samples: Vec<usize> = sample_levels(&report.trace, steps, 60);
    for level in [9usize, 7, 5, 3] {
        let row: String = samples
            .iter()
            .map(|&n| if n >= level { '#' } else { ' ' })
            .collect();
        println!("  r={level}: {row}");
    }
    let storm_cols_start = (storm_start * 60 / steps) as usize;
    let storm_cols_end = ((storm_start + storm_len) * 60 / steps) as usize;
    let mut marker = vec![' '; 60];
    for c in marker
        .iter_mut()
        .take(storm_cols_end.min(60))
        .skip(storm_cols_start)
    {
        *c = '~';
    }
    println!("  storm {}", marker.into_iter().collect::<String>());

    println!(
        "\nfaults injected {} | voting failures {} | raises {} | lowers {}",
        report.faults_injected, report.voting_failures, report.raises, report.lowers
    );
    println!(
        "fraction of time at minimal redundancy: {:.3}%",
        100.0 * report.fraction_at_min(3)
    );

    // Flight-recorder replay: every adaptation above is also journaled
    // by the telemetry layer, in causal order.
    let telemetry_report = telemetry.report();
    println!("\nflight-recorder journal (redundancy changes):");
    for record in telemetry_report
        .journal
        .iter()
        .filter(|r| r.event.kind().starts_with("redundancy-"))
    {
        println!(
            "  #{:>4} t={:>8} {:?}",
            record.seq, record.tick.0, record.event
        );
    }
    println!(
        "telemetry: rounds {} | dtof dips (journal) {} | dropped journal records {}",
        telemetry_report.counter("voting.rounds"),
        telemetry_report.journal_of_kind("dtof-dip").count(),
        telemetry_report.journal_dropped
    );

    // Cross-seed replication: the Fig. 6 story must not hinge on one
    // lucky seed.  Re-run the same environment as a campaign over
    // derived seeds and summarise the per-seed outcomes (parallel
    // Welford over the merged shards — deterministic for any --jobs).
    if seeds > 1 {
        let campaign_report = Campaign::derived_seeds(&config, seeds)
            .jobs(jobs)
            .run()
            .expect("campaign shards must not panic");
        let mut at_min = Summary::new();
        let mut failures = Summary::new();
        for shard in &campaign_report.shards {
            let mut single = Summary::new();
            single.record(100.0 * shard.fraction_at_min(3));
            at_min.merge(&single);
            let mut f = Summary::new();
            f.record(shard.voting_failures as f64);
            failures.merge(&f);
        }
        println!("\ncross-seed campaign ({seeds} derived seeds, {jobs} worker(s)):");
        println!(
            "  time at r=3: mean {:.3}% (stddev {:.3}, min {:.3}%, max {:.3}%)",
            at_min.mean(),
            at_min.stddev(),
            at_min.min().unwrap_or(0.0),
            at_min.max().unwrap_or(0.0)
        );
        println!(
            "  voting failures: mean {:.2} per run (max {:.0}) | raises {} | lowers {}",
            failures.mean(),
            failures.max().unwrap_or(0.0),
            campaign_report.stats.raises,
            campaign_report.stats.lowers
        );
    }
}

/// Resamples the (sparse) trace into `cols` redundancy levels.
fn sample_levels(trace: &[afta_switchboard::TracePoint], steps: u64, cols: u64) -> Vec<usize> {
    let mut out = Vec::with_capacity(cols as usize);
    let mut level = 3usize;
    let mut idx = 0usize;
    for col in 0..cols {
        let t_end = Tick((col + 1) * steps / cols);
        while idx < trace.len() && trace[idx].tick <= t_end {
            level = trace[idx].n;
            idx += 1;
        }
        out.push(level);
    }
    out
}
