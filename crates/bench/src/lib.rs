//! # afta-bench — experiment regenerators and benchmarks
//!
//! One binary per figure/table of the paper (see DESIGN.md's
//! per-experiment index) plus Criterion micro-benchmarks:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig2_lshw` | Fig. 2 — `lshw`-style memory introspection |
//! | `table_memaccess` | §3.1 — method selection table per memory profile |
//! | `fig4_watchdog` | Fig. 4 — watchdog + alpha-count trace |
//! | `fig5_dtof` | Fig. 5 — distance-to-failure examples, n = 7 |
//! | `fig6_adaptation` | Fig. 6 — disturbance vs redundancy time series |
//! | `fig7_histogram` | Fig. 7 — redundancy dwell-time histogram |
//! | `table_clash` | §3.2 — the e1/e2 clash table |
//! | `campaign_65m` | §3.3 — the paper-scale 65M-step run as a parallel campaign |
//!
//! Run e.g. `cargo run -p afta-bench --release --bin fig7_histogram -- --steps 65000000`.
//! The §3.3 binaries accept `--jobs N` to fan campaign shards over N
//! worker threads; the merged results are bit-identical for every N.

#![forbid(unsafe_code)]

/// Parses a `--flag value` style u64 argument from the command line,
/// returning `default` when absent or malformed.
#[must_use]
pub fn arg_u64(flag: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value` style usize argument from the command line,
/// returning `default` when absent or malformed.
#[must_use]
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value` style f64 argument from the command line,
/// returning `default` when absent or malformed.
#[must_use]
pub fn arg_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--flag value` style string argument from the command line,
/// returning `default` when absent.
#[must_use]
pub fn arg_str(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

/// Whether a bare `--flag` is present on the command line.
#[must_use]
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_u64_defaults_when_missing() {
        assert_eq!(arg_u64("--definitely-not-passed", 42), 42);
    }

    #[test]
    fn arg_usize_and_f64_default_when_missing() {
        assert_eq!(arg_usize("--definitely-not-passed", 7), 7);
        assert!((arg_f64("--definitely-not-passed", 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn has_flag_false_when_missing() {
        assert!(!has_flag("--definitely-not-passed"));
    }

    #[test]
    fn arg_str_defaults_when_missing() {
        assert_eq!(arg_str("--definitely-not-passed", "both"), "both");
    }
}
