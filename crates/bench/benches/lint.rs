//! B11: static-analysis cost — a full three-pass lint of a defect-laden
//! target, the interval proof on its own, and target JSON round-trips,
//! at growing manifest sizes.
//!
//! B-dataflow: the whole-program fixpoint engine on its own — a layered
//! DAG with dense inter-layer edges, the interval-environment lattice,
//! and an identity transfer, so the measurement is pure solver overhead
//! (rounds, joins, the certificate sweep).

use afta_core::{Assumption, Expectation};
use afta_dag::{Component, ComponentGraph};
use afta_lint::{
    int_domain, ConversionDecl, DataflowSolver, IntInterval, IntervalEnv, LintDriver, LintTarget,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A target with `n` assumptions (alternately probed and stale) plus
/// `n / 4` guarded narrowings, half of them unproven.
fn target_of_size(n: usize) -> LintTarget {
    let mut t = LintTarget::new();
    for i in 0..n {
        let key = format!("fact-{i}");
        t.manifest.assumptions.push(
            Assumption::builder(format!("a-{i}"))
                .statement("bench assumption")
                .expects(&key, Expectation::int_range(-32_768, 32_767))
                .build(),
        );
        if i % 2 == 0 {
            t.probed_facts.insert(key);
        }
    }
    for i in 0..n / 4 {
        let guard = format!("a-{}", i * 4);
        let fact = format!("fact-{}", i * 4);
        let mut conv = ConversionDecl::narrowing_bits(fact, if i % 2 == 0 { 64 } else { 32 }, 16);
        conv = conv.guarded(guard);
        t.conversions.push(conv);
    }
    t
}

fn bench_lint(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint");

    for n in [16usize, 64, 256] {
        let target = target_of_size(n);
        g.bench_with_input(BenchmarkId::new("full_run", n), &target, |b, target| {
            let driver = LintDriver::new();
            b.iter(|| black_box(driver.run(black_box(target))));
        });
    }

    g.bench_function("int_domain_composite", |b| {
        let e = Expectation::AllOf(vec![
            Expectation::int_range(-100_000, 100_000),
            Expectation::AnyOf(vec![
                Expectation::AtLeast(0.0),
                Expectation::int_range(-32_768, -1),
            ]),
        ]);
        b.iter(|| black_box(int_domain(black_box(&e))));
    });

    g.bench_function("target_json_roundtrip_64", |b| {
        let target = target_of_size(64);
        b.iter(|| {
            let json = target.to_json().unwrap();
            black_box(LintTarget::from_json(&json).unwrap())
        });
    });

    g.finish();
}

/// A `layers x width` DAG: every node in layer `i` feeds every node in
/// layer `i + 1`, so each round joins `width` predecessor environments
/// per node — the worst case the component passes can present.
fn layered_graph(layers: usize, width: usize) -> ComponentGraph {
    let mut graph = ComponentGraph::new();
    for layer in 0..layers {
        for lane in 0..width {
            graph
                .add(Component::new(format!("n{layer}_{lane}"), "service"))
                .unwrap();
        }
    }
    for layer in 1..layers {
        for from in 0..width {
            for to in 0..width {
                graph
                    .connect(format!("n{}_{from}", layer - 1), format!("n{layer}_{to}"))
                    .unwrap();
            }
        }
    }
    graph
}

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow");

    for (layers, width) in [(4usize, 4usize), (8, 8), (16, 16)] {
        let graph = layered_graph(layers, width);
        g.bench_with_input(
            BenchmarkId::new("fixpoint", layers * width),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let mut solver = DataflowSolver::<IntervalEnv>::new(graph);
                    for lane in 0..width {
                        solver.seed(
                            format!("n0_{lane}"),
                            IntervalEnv::of(
                                format!("fact-{lane}"),
                                IntInterval::new(-(lane as i64) - 1, lane as i64 + 1),
                            ),
                        );
                    }
                    black_box(solver.solve(|_, _, env| env.clone()))
                });
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_lint, bench_dataflow);
criterion_main!(benches);
