//! B11: static-analysis cost — a full three-pass lint of a defect-laden
//! target, the interval proof on its own, and target JSON round-trips,
//! at growing manifest sizes.

use afta_core::{Assumption, Expectation};
use afta_lint::{int_domain, ConversionDecl, LintDriver, LintTarget};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A target with `n` assumptions (alternately probed and stale) plus
/// `n / 4` guarded narrowings, half of them unproven.
fn target_of_size(n: usize) -> LintTarget {
    let mut t = LintTarget::new();
    for i in 0..n {
        let key = format!("fact-{i}");
        t.manifest.assumptions.push(
            Assumption::builder(format!("a-{i}"))
                .statement("bench assumption")
                .expects(&key, Expectation::int_range(-32_768, 32_767))
                .build(),
        );
        if i % 2 == 0 {
            t.probed_facts.insert(key);
        }
    }
    for i in 0..n / 4 {
        let guard = format!("a-{}", i * 4);
        let fact = format!("fact-{}", i * 4);
        let mut conv = ConversionDecl::narrowing_bits(fact, if i % 2 == 0 { 64 } else { 32 }, 16);
        conv = conv.guarded(guard);
        t.conversions.push(conv);
    }
    t
}

fn bench_lint(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint");

    for n in [16usize, 64, 256] {
        let target = target_of_size(n);
        g.bench_with_input(BenchmarkId::new("full_run", n), &target, |b, target| {
            let driver = LintDriver::new();
            b.iter(|| black_box(driver.run(black_box(target))));
        });
    }

    g.bench_function("int_domain_composite", |b| {
        let e = Expectation::AllOf(vec![
            Expectation::int_range(-100_000, 100_000),
            Expectation::AnyOf(vec![
                Expectation::AtLeast(0.0),
                Expectation::int_range(-32_768, -1),
            ]),
        ]);
        b.iter(|| black_box(int_domain(black_box(&e))));
    });

    g.bench_function("target_json_roundtrip_64", |b| {
        let target = target_of_size(64);
        b.iter(|| {
            let json = target.to_json().unwrap();
            black_box(LintTarget::from_json(&json).unwrap())
        });
    });

    g.finish();
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
