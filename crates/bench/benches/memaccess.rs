//! B5: the §3.1 cost model, measured.  Store+load throughput of every
//! method M0..M4 on pristine hardware — the time side of the cost
//! function that drives min-cost selection.

use afta_memaccess::MethodKind;
use afta_memsim::FaultRates;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("memaccess");

    for kind in MethodKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("store_load_64B", kind.label()),
            &kind,
            |b, &kind| {
                let mut m = kind.instantiate(4096, FaultRates::none(), 1);
                let data = [0xABu8; 64];
                let mut buf = [0u8; 64];
                b.iter(|| {
                    m.store(0, black_box(&data)).unwrap();
                    m.load(0, black_box(&mut buf)).unwrap();
                    black_box(buf[0])
                });
            },
        );
    }

    // The configure step itself (introspection + KB lookup + binding).
    g.bench_function("configure", |b| {
        let kb = afta_memaccess::FailureKnowledgeBase::builtin();
        let machine = afta_memsim::MachineInventory::dell_inspiron_6000();
        let spd = &machine.banks()[0].spd;
        b.iter(|| black_box(afta_memaccess::configure(black_box(spd), &kb).unwrap()));
    });

    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
