//! B1: alpha-count update cost — the per-round overhead the §3.2 oracle
//! adds to every monitored component.

use afta_alphacount::{AlphaCount, AlphaCountBank, DecayPolicy, Judgment};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_alphacount(c: &mut Criterion) {
    let mut g = c.benchmark_group("alphacount");

    g.bench_function("record_correct", |b| {
        let mut ac = AlphaCount::with_threshold(3.0);
        b.iter(|| black_box(ac.record(Judgment::Correct)));
    });

    g.bench_function("record_erroneous", |b| {
        let mut ac = AlphaCount::with_threshold(3.0);
        b.iter(|| {
            let v = ac.record(Judgment::Erroneous);
            ac.reset();
            black_box(v)
        });
    });

    g.bench_function("record_subtractive", |b| {
        let mut ac = AlphaCount::new(1.0, 3.0, DecayPolicy::Subtractive(0.1));
        b.iter(|| black_box(ac.record(Judgment::Correct)));
    });

    g.bench_function("bank_record_16_components", |b| {
        let mut bank = AlphaCountBank::new(AlphaCount::with_threshold(3.0));
        let names: Vec<String> = (0..16).map(|i| format!("c{i}")).collect();
        b.iter(|| {
            for n in &names {
                black_box(bank.record(n, Judgment::Correct));
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench_alphacount);
criterion_main!(benches);
