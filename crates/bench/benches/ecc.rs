//! B4: SEC-DED encode/decode — the per-byte cost the §3.1 methods M1..M4
//! pay over raw access.

use afta_memaccess::ecc;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");

    g.bench_function("encode", |b| {
        let mut x: u8 = 0;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(ecc::encode(black_box(x)))
        });
    });

    g.bench_function("decode_clean", |b| {
        let check = ecc::encode(0xA5);
        b.iter(|| black_box(ecc::decode(black_box(0xA5), black_box(check))));
    });

    g.bench_function("decode_corrected", |b| {
        let check = ecc::encode(0xA5);
        let corrupted = 0xA5 ^ 0x10;
        b.iter(|| black_box(ecc::decode(black_box(corrupted), black_box(check))));
    });

    g.bench_function("decode_double_error", |b| {
        let check = ecc::encode(0xA5);
        let corrupted = 0xA5 ^ 0x11;
        b.iter(|| black_box(ecc::decode(black_box(corrupted), black_box(check))));
    });

    g.finish();
}

criterion_group!(benches, bench_ecc);
criterion_main!(benches);
