//! B6: the core framework's runtime overhead — what continuous
//! assumption monitoring costs per observation, binding, and contract
//! check.

use afta_core::contract::Contract;
use afta_core::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn registry_with(n: usize) -> AssumptionRegistry {
    let mut r = AssumptionRegistry::new();
    for i in 0..n {
        r.register(
            Assumption::builder(format!("a{i}"))
                .expects(format!("fact{i}"), Expectation::int_range(0, 100))
                .build(),
        )
        .unwrap();
    }
    r
}

fn bench_assumptions(c: &mut Criterion) {
    let mut g = c.benchmark_group("assumptions");

    g.bench_function("observe_satisfied_of_64", |b| {
        let mut r = registry_with(64);
        b.iter(|| black_box(r.observe(Observation::new("fact7", 50i64))));
    });

    g.bench_function("observe_clash_of_64", |b| {
        let mut r = registry_with(64);
        b.iter(|| black_box(r.observe(Observation::new("fact7", 500i64))));
    });

    g.bench_function("verify_all_64", |b| {
        let mut r = registry_with(64);
        for i in 0..64 {
            r.observe(Observation::new(format!("fact{i}"), 50i64));
        }
        b.iter(|| black_box(r.verify_all()));
    });

    g.bench_function("assumption_var_bind", |b| {
        let mut var = AssumptionVar::new("m", BindingTime::RunTime)
            .with(Alternative::new("A", 1u8, ["x"], 1.0))
            .with(Alternative::new("B", 2u8, ["x", "y"], 2.0))
            .with(Alternative::new("C", 3u8, ["y", "z"], 3.0));
        b.iter(|| black_box(*var.bind(black_box("y"), &MinCostBinder).unwrap()));
    });

    g.bench_function("contract_execute", |b| {
        let contract = Contract::<i32>::builder()
            .pre("non-negative", |&x| x >= 0)
            .post("bounded", |&x| x <= 1000)
            .invariant("sane", |&x| x > -1000)
            .build();
        let mut state = 1;
        b.iter(|| {
            contract.execute(&mut state, |x| *x += 0).unwrap();
            black_box(())
        });
    });

    g.finish();
}

criterion_group!(benches, bench_assumptions);
criterion_main!(benches);
