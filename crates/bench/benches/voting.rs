//! B2: voting-round cost — dtof evaluation, exact/epsilon majority
//! voting, and a full restoring-organ round at the Fig. 5/7 replica
//! counts.

use afta_voting::{dtof, epsilon_vote, majority_vote, VotingFarm};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_voting(c: &mut Criterion) {
    let mut g = c.benchmark_group("voting");

    g.bench_function("dtof", |b| {
        b.iter(|| black_box(dtof(black_box(7), black_box(Some(2)))));
    });

    for n in [3usize, 5, 7, 9] {
        let votes: Vec<u64> = (0..n).map(|i| if i == 0 { 99 } else { 7 }).collect();
        g.bench_with_input(BenchmarkId::new("majority_vote", n), &votes, |b, votes| {
            b.iter(|| black_box(majority_vote(black_box(votes))));
        });
    }

    g.bench_function("epsilon_vote_7", |b| {
        let votes = [1.0, 1.001, 0.999, 1.0002, 5.0, 1.0, -2.0];
        b.iter(|| black_box(epsilon_vote(black_box(&votes), 0.01)));
    });

    for n in [3usize, 9] {
        g.bench_with_input(BenchmarkId::new("farm_round", n), &n, |b, &n| {
            let mut farm =
                VotingFarm::new(n, |i: usize, x: &u64| if i == 1 { u64::MAX } else { *x });
            b.iter(|| black_box(farm.round(&42)));
        });
    }

    g.finish();
}

criterion_group!(benches, bench_voting);
criterion_main!(benches);
