//! B3: reflective-DAG operations — the cost of a §3.2 snapshot injection
//! (the D1 <-> D2 swap) and of the supporting graph queries.

use afta_dag::{fig3_snapshots, Component, ComponentGraph, GraphDiff, ReflectiveArchitecture};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn chain(n: usize) -> ComponentGraph {
    let mut g = ComponentGraph::new();
    for i in 0..n {
        g.add(Component::new(format!("c{i}"), "svc")).unwrap();
    }
    for i in 1..n {
        g.connect(format!("c{}", i - 1), format!("c{i}")).unwrap();
    }
    g
}

fn bench_dag(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag");

    g.bench_function("inject_fig3_swap", |b| {
        let (d1, d2) = fig3_snapshots();
        let mut arch = ReflectiveArchitecture::new(d1.clone());
        arch.store_snapshot("D1", d1).unwrap();
        arch.store_snapshot("D2", d2).unwrap();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            black_box(arch.inject(if flip { "D2" } else { "D1" }).unwrap())
        });
    });

    g.bench_function("connect_with_cycle_check_64", |b| {
        b.iter_batched(
            || chain(64),
            |mut g| {
                g.connect("c0", "c63").unwrap();
                black_box(g)
            },
            criterion::BatchSize::SmallInput,
        );
    });

    g.bench_function("topological_order_64", |b| {
        let g64 = chain(64);
        b.iter(|| black_box(g64.topological_order()));
    });

    g.bench_function("diff_64", |b| {
        let a = chain(64);
        let mut bgraph = a.clone();
        bgraph.remove("c32").unwrap();
        b.iter(|| black_box(GraphDiff::between(&a, &bgraph)));
    });

    g.finish();
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);
