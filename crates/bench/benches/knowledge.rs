//! B8: knowledge-web propagation cost — what a §5 cross-layer deduction
//! costs end to end (runtime oracle -> model planner -> deployment
//! agent), plus the assumption-monitor polling cycle.

use afta_core::{
    Assumption, AssumptionMonitor, AssumptionRegistry, Expectation, FnProbe, KnowledgeWeb,
    Observation, ProbeSet,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_knowledge(c: &mut Criterion) {
    let mut g = c.benchmark_group("knowledge");

    g.bench_function("web_publish_no_reaction", |b| {
        struct Silent(&'static str);
        impl afta_core::KnowledgeAgent for Silent {
            fn name(&self) -> &str {
                self.0
            }
            fn layer(&self) -> afta_core::Layer {
                afta_core::Layer::Runtime
            }
            fn consider(&mut self, _d: &afta_core::Deduction) -> Vec<afta_core::Deduction> {
                Vec::new()
            }
        }
        let mut web = KnowledgeWeb::new();
        for name in ["a", "b", "c", "d"] {
            web.attach(Silent(name));
        }
        b.iter(|| {
            black_box(web.publish(afta_core::Deduction::new(
                "src",
                afta_core::Layer::Runtime,
                "noise",
                Observation::new("k", 1i64),
                "",
            )))
        });
    });

    g.bench_function("monitor_poll_16_probes", |b| {
        let mut registry = AssumptionRegistry::new();
        let mut probes = ProbeSet::new();
        for i in 0..16 {
            registry
                .register(
                    Assumption::builder(format!("a{i}"))
                        .expects(format!("fact{i}"), Expectation::int_range(0, 100))
                        .build(),
                )
                .unwrap();
            let key = format!("fact{i}");
            probes.add(FnProbe::new(format!("p{i}"), move || {
                vec![Observation::new(key.clone(), 50i64)]
            }));
        }
        let mut monitor = AssumptionMonitor::new(registry, probes);
        b.iter(|| black_box(monitor.poll()));
    });

    g.finish();
}

criterion_group!(benches, bench_knowledge);
criterion_main!(benches);
