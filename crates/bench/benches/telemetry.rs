//! B9: telemetry hot-path cost — the per-event overhead the
//! observability layer adds to instrumented components.
//!
//! The budget (see ISSUE/DESIGN): a counter increment and a span record
//! should stay in the tens-of-nanoseconds range on the enabled path, and
//! a *disabled* registry must be near-zero — instrumentation left in
//! place behind `Registry::disabled()` is free.

use afta_telemetry::{Registry, TelemetryEvent, Tick};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");

    g.bench_function("counter_inc_enabled", |b| {
        let registry = Registry::new();
        let counter = registry.counter("bench.counter");
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        });
    });

    g.bench_function("counter_inc_disabled", |b| {
        let registry = Registry::disabled();
        let counter = registry.counter("bench.counter");
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        });
    });

    g.bench_function("counter_lookup_enabled", |b| {
        let registry = Registry::new();
        b.iter(|| black_box(registry.counter("bench.lookup")).inc());
    });

    g.bench_function("histogram_record_enabled", |b| {
        let registry = Registry::new();
        let hist = registry.histogram("bench.hist", &[1, 10, 100, 1000]);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 7) % 2000;
            hist.record(black_box(v));
        });
    });

    g.bench_function("span_enabled", |b| {
        let registry = Registry::new();
        b.iter(|| {
            let span = registry.span("bench.span_ns");
            black_box(&span);
        });
    });

    g.bench_function("span_disabled", |b| {
        let registry = Registry::disabled();
        b.iter(|| {
            let span = registry.span("bench.span_ns");
            black_box(&span);
        });
    });

    g.bench_function("virtual_span_enabled", |b| {
        let registry = Registry::new();
        let mut t = 0u64;
        b.iter(|| {
            let span = registry.virtual_span("bench.vspan", Tick(t));
            t += 1;
            span.finish(Tick(t + 3));
        });
    });

    g.bench_function("journal_record_enabled", |b| {
        let registry = Registry::with_journal_capacity(1024);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            registry.record(
                Tick(t),
                TelemetryEvent::Note {
                    text: "bench".to_owned(),
                },
            );
        });
    });

    g.bench_function("journal_record_disabled", |b| {
        let registry = Registry::disabled();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            registry.record(
                Tick(t),
                TelemetryEvent::Note {
                    text: "bench".to_owned(),
                },
            );
        });
    });

    g.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
