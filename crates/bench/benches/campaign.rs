//! B10: campaign fan-out — the sharded §3.3 experiment runner, serial vs
//! parallel, same merged result (the runner asserts bit-identity in its
//! tests; here we measure what the worker pool costs and buys).

use afta_campaign::Campaign;
use afta_faultinject::EnvironmentProfile;
use afta_switchboard::{ExperimentConfig, RedundancyPolicy};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        steps: 200_000, // 8 shards x 25k steps
        seed: 42,
        profile: EnvironmentProfile::cyclic_storms(15_000, 400, 0.0000005, 0.05),
        policy: RedundancyPolicy::default(),
        trace_stride: 0,
    }
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");

    g.bench_function("split8_jobs1", |b| {
        let base = base_config();
        b.iter(|| black_box(Campaign::split(&base, 8).jobs(1).run().unwrap()));
    });

    g.bench_function("split8_jobs4", |b| {
        let base = base_config();
        b.iter(|| black_box(Campaign::split(&base, 8).jobs(4).run().unwrap()));
    });

    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
