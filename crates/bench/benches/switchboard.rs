//! B7: §3.3 round throughput — the full voting-round + dtof + controller
//! pipeline the 65M-step experiment iterates, and the experiment driver
//! end to end.

use afta_faultinject::EnvironmentProfile;
use afta_switchboard::{run_experiment, ExperimentConfig, RedundancyController, RedundancyPolicy};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_switchboard(c: &mut Criterion) {
    let mut g = c.benchmark_group("switchboard");

    g.bench_function("controller_observe", |b| {
        let mut ctl = RedundancyController::new(RedundancyPolicy::default());
        b.iter(|| black_box(ctl.observe(black_box(2), black_box(3))));
    });

    g.bench_function("experiment_10k_steps", |b| {
        let config = ExperimentConfig {
            steps: 10_000,
            seed: 42,
            profile: EnvironmentProfile::cyclic_storms(2_000, 200, 0.0001, 0.05),
            policy: RedundancyPolicy::default(),
            trace_stride: 0,
        };
        b.iter(|| black_box(run_experiment(&config, None)));
    });

    g.finish();
}

criterion_group!(benches, bench_switchboard);
criterion_main!(benches);
