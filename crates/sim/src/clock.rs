//! Virtual time: discrete ticks and a monotone clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A discrete instant of virtual time.
///
/// Ticks are the unit in which all AFTA experiments measure time: one tick
/// is one voting round in the §3.3 experiments, one watchdog period in the
/// Fig. 4 scenario, one memory-access opportunity in the memory simulator.
///
/// ```
/// use afta_sim::Tick;
/// let t = Tick(10) + 5;
/// assert_eq!(t, Tick(15));
/// assert_eq!(t - Tick(10), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Tick(pub u64);

impl Tick {
    /// The origin of virtual time.
    pub const ZERO: Tick = Tick(0);

    /// Returns the tick `n` units later.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying `u64` (debug builds) or wraps
    /// (release); experiments never approach `u64::MAX`.
    #[must_use]
    pub fn after(self, n: u64) -> Tick {
        Tick(self.0 + n)
    }

    /// Saturating distance from `earlier` to `self` (0 when `earlier` is
    /// in the future).
    #[must_use]
    pub fn since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Tick> for Tick {
    type Output = u64;
    fn sub(self, rhs: Tick) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Tick {
    fn from(v: u64) -> Tick {
        Tick(v)
    }
}

/// A monotone virtual clock.
///
/// The clock only moves forward; [`VirtualClock::advance_to`] refuses to
/// travel into the past, which protects experiments from accidentally
/// re-ordering cause and effect.
///
/// ```
/// use afta_sim::{Tick, VirtualClock};
/// let mut clock = VirtualClock::new();
/// clock.tick();
/// clock.advance_to(Tick(10)).unwrap();
/// assert_eq!(clock.now(), Tick(10));
/// assert!(clock.advance_to(Tick(3)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Tick,
}

/// Error returned when a clock is asked to move backwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockWentBackwards {
    /// The clock's current time.
    pub now: Tick,
    /// The (earlier) time requested.
    pub requested: Tick,
}

impl fmt::Display for ClockWentBackwards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "virtual clock cannot move backwards: now {} requested {}",
            self.now, self.requested
        )
    }
}

impl std::error::Error for ClockWentBackwards {}

impl VirtualClock {
    /// Creates a clock at [`Tick::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances by exactly one tick and returns the new time.
    pub fn tick(&mut self) -> Tick {
        self.now += 1;
        self.now
    }

    /// Advances by `n` ticks and returns the new time.
    pub fn advance(&mut self, n: u64) -> Tick {
        self.now += n;
        self.now
    }

    /// Jumps to absolute time `target`.
    ///
    /// # Errors
    ///
    /// Returns [`ClockWentBackwards`] if `target` is before the current
    /// time. Jumping to the current time is a no-op and succeeds.
    pub fn advance_to(&mut self, target: Tick) -> Result<Tick, ClockWentBackwards> {
        if target < self.now {
            return Err(ClockWentBackwards {
                now: self.now,
                requested: target,
            });
        }
        self.now = target;
        Ok(self.now)
    }
}

/// A virtual clock with injectable skew whose *observed* time stays
/// monotone.
///
/// Scenario fuzzing perturbs the Tick source the way real deployments
/// perturb wall clocks: a drifting oscillator or a bad time sync steps the
/// clock forward or backward by an arbitrary offset.  Downstream consumers
/// — telemetry spans most of all — assume time never runs backwards, so
/// the skewed clock follows the clamped-step discipline production time
/// libraries use: positive skew is visible immediately, while negative
/// skew *holds the observed time still* until the underlying
/// [`VirtualClock`] catches back up.  Every value returned by [`now`],
/// [`tick`], [`advance`], or [`apply_skew`] is therefore `>=` every value
/// returned before it.
///
/// [`now`]: SkewedClock::now
/// [`tick`]: SkewedClock::tick
/// [`advance`]: SkewedClock::advance
/// [`apply_skew`]: SkewedClock::apply_skew
///
/// ```
/// use afta_sim::{SkewedClock, Tick};
/// let mut clock = SkewedClock::new();
/// clock.advance(10);
/// assert_eq!(clock.apply_skew(-4), Tick(10)); // held, not rewound
/// clock.advance(3);
/// assert_eq!(clock.now(), Tick(10)); // base 13 - 4 = 9, still clamped
/// clock.advance(2);
/// assert_eq!(clock.now(), Tick(11)); // base caught up, time flows again
/// ```
#[derive(Debug, Clone, Default)]
pub struct SkewedClock {
    base: VirtualClock,
    skew: i64,
    /// Highest observed tick so far; `now()` never reports below this.
    watermark: Tick,
}

impl SkewedClock {
    /// Creates an unskewed clock at [`Tick::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The skewed-but-clamped observation: `max(watermark, base + skew)`.
    fn observed(&self) -> Tick {
        let raw = (self.base.now().0 as i128 + self.skew as i128).clamp(0, u64::MAX as i128);
        Tick((raw as u64).max(self.watermark.0))
    }

    /// Current observed virtual time (never less than any earlier
    /// observation).
    #[must_use]
    pub fn now(&self) -> Tick {
        self.observed()
    }

    /// The raw underlying clock, skew not applied.
    #[must_use]
    pub fn base(&self) -> &VirtualClock {
        &self.base
    }

    /// Current accumulated skew offset in ticks (negative = behind).
    #[must_use]
    pub fn skew(&self) -> i64 {
        self.skew
    }

    /// Advances the underlying clock by one tick; returns the observed
    /// time.
    pub fn tick(&mut self) -> Tick {
        self.base.tick();
        self.bump()
    }

    /// Advances the underlying clock by `n` ticks; returns the observed
    /// time.
    pub fn advance(&mut self, n: u64) -> Tick {
        self.base.advance(n);
        self.bump()
    }

    /// Injects a skew step of `delta` ticks (saturating accumulation) and
    /// returns the observed time.
    ///
    /// A positive step is visible immediately; a negative step pins the
    /// observation at its current value until the base clock overtakes it,
    /// so the returned time — like every observation — never decreases.
    pub fn apply_skew(&mut self, delta: i64) -> Tick {
        // Pin the watermark *before* changing the offset so no earlier
        // observation can be contradicted.
        self.watermark = self.observed();
        self.skew = self.skew.saturating_add(delta);
        self.bump()
    }

    fn bump(&mut self) -> Tick {
        let t = self.observed();
        self.watermark = t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_zero_is_default() {
        assert_eq!(Tick::default(), Tick::ZERO);
    }

    #[test]
    fn tick_arithmetic() {
        assert_eq!(Tick(3) + 4, Tick(7));
        assert_eq!(Tick(7) - Tick(3), 4);
        assert_eq!(Tick(3).after(4), Tick(7));
    }

    #[test]
    fn tick_since_saturates() {
        assert_eq!(Tick(3).since(Tick(10)), 0);
        assert_eq!(Tick(10).since(Tick(3)), 7);
    }

    #[test]
    fn tick_display() {
        assert_eq!(Tick(42).to_string(), "t=42");
    }

    #[test]
    fn tick_add_assign() {
        let mut t = Tick(1);
        t += 2;
        assert_eq!(t, Tick(3));
    }

    #[test]
    fn tick_from_u64() {
        assert_eq!(Tick::from(9u64), Tick(9));
    }

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), Tick::ZERO);
    }

    #[test]
    fn clock_ticks_forward() {
        let mut c = VirtualClock::new();
        assert_eq!(c.tick(), Tick(1));
        assert_eq!(c.advance(9), Tick(10));
        assert_eq!(c.now(), Tick(10));
    }

    #[test]
    fn clock_advance_to_future_ok() {
        let mut c = VirtualClock::new();
        c.advance_to(Tick(100)).unwrap();
        assert_eq!(c.now(), Tick(100));
        // Advancing to "now" is allowed.
        c.advance_to(Tick(100)).unwrap();
    }

    #[test]
    fn clock_refuses_past() {
        let mut c = VirtualClock::new();
        c.advance(5);
        let err = c.advance_to(Tick(2)).unwrap_err();
        assert_eq!(err.now, Tick(5));
        assert_eq!(err.requested, Tick(2));
        assert!(err.to_string().contains("backwards"));
        // Time unchanged on error.
        assert_eq!(c.now(), Tick(5));
    }

    #[test]
    fn skewed_clock_clamps_negative_skew() {
        let mut c = SkewedClock::new();
        c.advance(10);
        assert_eq!(c.now(), Tick(10));
        // Positive skew is visible immediately.
        assert_eq!(c.apply_skew(5), Tick(15));
        // A negative step larger than the positive one holds the observed
        // time still instead of rewinding it.
        assert_eq!(c.apply_skew(-9), Tick(15));
        assert_eq!(c.skew(), -4);
        // Base keeps moving underneath; observation stays pinned until the
        // raw skewed time overtakes the watermark.
        assert_eq!(c.advance(8), Tick(15)); // raw 18 - 4 = 14 < 15
        assert_eq!(c.tick(), Tick(15)); // raw 19 - 4 = 15
        assert_eq!(c.tick(), Tick(16)); // flowing again
        assert_eq!(c.base().now(), Tick(20));
    }

    #[test]
    fn skewed_clock_observations_are_monotone_under_random_skew() {
        // Deterministic LCG so the test needs no rng dependency: a storm of
        // interleaved ticks and skew steps must never produce a decreasing
        // observation.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut c = SkewedClock::new();
        let mut last = c.now();
        for _ in 0..10_000 {
            let observed = match next() % 3 {
                0 => c.tick(),
                1 => c.advance(next() % 7),
                _ => c.apply_skew((next() % 41) as i64 - 20),
            };
            assert!(
                observed >= last,
                "clock ran backwards: {last} -> {observed}"
            );
            assert_eq!(observed, c.now());
            last = observed;
        }
    }
}
