//! Named deterministic random-number streams.
//!
//! All randomness in an AFTA experiment flows from a single master seed.
//! Each subsystem (fault injector, workload generator, voter jitter, ...)
//! asks the [`SeedFactory`] for a stream by *name*; the same master seed
//! and name always yield the same stream, independent of the order in which
//! streams are requested.  This is what makes the Fig. 6/Fig. 7 experiments
//! bit-for-bit reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible [`StdRng`] streams from a master seed.
///
/// Stream derivation uses an FNV-1a hash of the stream name folded into the
/// master seed, so streams are stable across runs, platforms, and request
/// order.
///
/// ```
/// use afta_sim::SeedFactory;
/// use rand::Rng;
///
/// let f = SeedFactory::new(42);
/// let mut a1: rand::rngs::StdRng = f.stream("faults");
/// let mut a2: rand::rngs::StdRng = f.stream("faults");
/// let mut b: rand::rngs::StdRng = f.stream("workload");
///
/// let xs: Vec<u32> = (0..4).map(|_| a1.gen()).collect();
/// let ys: Vec<u32> = (0..4).map(|_| a2.gen()).collect();
/// let zs: Vec<u32> = (0..4).map(|_| b.gen()).collect();
/// assert_eq!(xs, ys);   // same name => same stream
/// assert_ne!(xs, zs);   // different name => different stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedFactory {
    master: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 finalizer: a bijection on `u64`, so distinct inputs
/// always map to distinct outputs.
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedFactory {
    /// Creates a factory rooted at `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Self {
            master: master_seed,
        }
    }

    /// The master seed this factory was created with.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the 64-bit seed derived for stream `name`.
    #[must_use]
    pub fn derived_seed(&self, name: &str) -> u64 {
        // Mix the name hash with the master seed through a second FNV pass
        // so that (master, name) pairs map to well-spread seeds.
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.master.to_le_bytes());
        let mut h = fnv1a(&buf);
        h ^= fnv1a(name.as_bytes());
        h = h.wrapping_mul(FNV_PRIME);
        h
    }

    /// Creates the deterministic [`StdRng`] for stream `name`.
    #[must_use]
    pub fn stream(&self, name: &str) -> StdRng {
        StdRng::seed_from_u64(self.derived_seed(name))
    }

    /// The master seed for campaign shard `index`.
    ///
    /// Shard seeds are **collision-free for a fixed master**: the index
    /// is folded in through a bijective multiply (odd constant) followed
    /// by the bijective SplitMix64 finalizer, so distinct shard indices
    /// can never yield the same seed.  This is what lets a campaign fan
    /// one master seed out over thousands of parallel shards without any
    /// pair of shards replaying the same fault history.
    #[must_use]
    pub fn shard_seed(&self, index: u64) -> u64 {
        splitmix_finalize(
            self.master
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// A whole [`SeedFactory`] rooted at [`SeedFactory::shard_seed`], so
    /// each campaign shard derives its own independent named streams.
    #[must_use]
    pub fn shard(&self, index: u64) -> SeedFactory {
        SeedFactory::new(self.shard_seed(index))
    }

    /// Creates an indexed sub-stream, e.g. one per replica.
    ///
    /// `indexed_stream("replica", 3)` is equivalent to
    /// `stream("replica#3")` but avoids the allocation at call sites that
    /// derive many streams.
    #[must_use]
    pub fn indexed_stream(&self, name: &str, index: usize) -> StdRng {
        let mut h = self.derived_seed(name);
        h ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(FNV_PRIME);
        StdRng::seed_from_u64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn take4(mut r: StdRng) -> Vec<u64> {
        (0..4).map(|_| r.gen()).collect()
    }

    #[test]
    fn same_name_same_stream() {
        let f = SeedFactory::new(7);
        assert_eq!(take4(f.stream("x")), take4(f.stream("x")));
    }

    #[test]
    fn different_name_different_stream() {
        let f = SeedFactory::new(7);
        assert_ne!(take4(f.stream("x")), take4(f.stream("y")));
    }

    #[test]
    fn different_master_different_stream() {
        assert_ne!(
            take4(SeedFactory::new(1).stream("x")),
            take4(SeedFactory::new(2).stream("x"))
        );
    }

    #[test]
    fn request_order_does_not_matter() {
        let f = SeedFactory::new(99);
        let a_first = take4(f.stream("a"));
        let _ = take4(f.stream("b"));
        let a_second = take4(f.stream("a"));
        assert_eq!(a_first, a_second);
    }

    #[test]
    fn indexed_streams_differ_by_index() {
        let f = SeedFactory::new(3);
        assert_ne!(
            take4(f.indexed_stream("rep", 0)),
            take4(f.indexed_stream("rep", 1))
        );
        assert_eq!(
            take4(f.indexed_stream("rep", 5)),
            take4(f.indexed_stream("rep", 5))
        );
    }

    #[test]
    fn derived_seed_is_stable() {
        // Pin the derivation so refactors cannot silently change every
        // experiment in the repository.
        let f = SeedFactory::new(42);
        assert_eq!(f.derived_seed("faults"), f.derived_seed("faults"));
        assert_ne!(f.derived_seed("faults"), f.derived_seed("workload"));
        assert_ne!(f.derived_seed(""), 0);
    }

    #[test]
    fn master_seed_accessor() {
        assert_eq!(SeedFactory::new(5).master_seed(), 5);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let f = SeedFactory::new(42);
        let seeds: Vec<u64> = (0..1024).map(|i| f.shard_seed(i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "shard seed collision");
        // Stable across calls, different across masters.
        assert_eq!(f.shard_seed(7), f.shard_seed(7));
        assert_ne!(f.shard_seed(7), SeedFactory::new(43).shard_seed(7));
        // A shard factory derives streams from the shard seed.
        assert_eq!(f.shard(3).master_seed(), f.shard_seed(3));
        assert_ne!(
            take4(f.shard(0).stream("faults")),
            take4(f.shard(1).stream("faults"))
        );
    }
}
