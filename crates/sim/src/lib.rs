//! Deterministic discrete-event simulation substrate for the AFTA
//! reproduction.
//!
//! Every experiment in the paper (the watchdog/alpha-count scenario of
//! Fig. 4, the redundancy-adaptation run of Fig. 6, and the 65-million-step
//! histogram of Fig. 7) is a *simulated* run over virtual time.  This crate
//! provides the three ingredients those experiments share:
//!
//! * a [`VirtualClock`] counting discrete [`Tick`]s,
//! * a deterministic, named random-number-stream factory ([`SeedFactory`])
//!   so that independent subsystems draw from independent but reproducible
//!   streams, and
//! * an event [`Scheduler`] plus lightweight statistics helpers
//!   ([`stats::Histogram`], [`stats::Summary`], [`stats::TimeWeighted`]).
//!
//! # Example
//!
//! ```
//! use afta_sim::{Scheduler, Tick};
//!
//! let mut sched = Scheduler::new();
//! sched.schedule(Tick(5), "five");
//! sched.schedule(Tick(2), "two");
//! sched.schedule(Tick(2), "two-again");
//!
//! let mut seen = Vec::new();
//! while let Some((tick, ev)) = sched.pop() {
//!     seen.push((tick.0, ev));
//! }
//! // Same-tick events pop in FIFO order.
//! assert_eq!(seen, vec![(2, "two"), (2, "two-again"), (5, "five")]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod experiment;
pub mod rng;
pub mod stats;

pub use clock::{SkewedClock, Tick, VirtualClock};
pub use events::Scheduler;
pub use experiment::{Experiment, RunOutcome, StepControl};
pub use rng::SeedFactory;
