//! A stable discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::Tick;

/// One queued event: a payload due at a tick, with a sequence number that
/// makes same-tick ordering FIFO (insertion order).
#[derive(Debug)]
struct Entry<E> {
    due: Tick,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (due, seq) pops
        // first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same tick are delivered in the order they were
/// scheduled, which keeps multi-component experiments deterministic without
/// requiring totally ordered payloads.
///
/// ```
/// use afta_sim::{Scheduler, Tick};
/// let mut s = Scheduler::new();
/// s.schedule(Tick(1), 'a');
/// assert_eq!(s.peek_due(), Some(Tick(1)));
/// assert_eq!(s.pop(), Some((Tick(1), 'a')));
/// assert!(s.is_empty());
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` for delivery at `due`.
    pub fn schedule(&mut self, due: Tick, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// The due time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_due(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.due)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.heap.pop().map(|e| (e.due, e.payload))
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, E)> {
        if self.peek_due().is_some_and(|d| d <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Drains every event due at or before `now`, in order.
    pub fn drain_due(&mut self, now: Tick) -> Vec<(Tick, E)> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop_due(now) {
            out.push(ev);
        }
        out
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(Tick(9), 9);
        s.schedule(Tick(1), 1);
        s.schedule(Tick(5), 5);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 5, 9]);
    }

    #[test]
    fn same_tick_is_fifo() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(Tick(3), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut s = Scheduler::new();
        s.schedule(Tick(5), "later");
        assert_eq!(s.pop_due(Tick(4)), None);
        assert_eq!(s.pop_due(Tick(5)), Some((Tick(5), "later")));
    }

    #[test]
    fn drain_due_takes_prefix() {
        let mut s = Scheduler::new();
        for t in [1u64, 2, 3, 10] {
            s.schedule(Tick(t), t);
        }
        let drained = s.drain_due(Tick(3));
        assert_eq!(drained.len(), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.peek_due(), Some(Tick(10)));
    }

    #[test]
    fn clear_empties() {
        let mut s = Scheduler::new();
        s.schedule(Tick(1), ());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.peek_due(), None);
    }
}
