//! A step-loop experiment driver.
//!
//! The §3.3 experiments of the paper run "voting rounds" for up to 65
//! million simulated time steps.  [`Experiment`] owns the clock and the
//! seed factory and repeatedly calls a user-supplied step function until
//! the step budget is exhausted or the step function asks to stop.

use crate::clock::{Tick, VirtualClock};
use crate::rng::SeedFactory;

/// What a step function tells the driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepControl {
    /// Keep stepping.
    #[default]
    Continue,
    /// Stop the experiment after this step.
    Stop,
}

/// Why an experiment run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The configured step budget was exhausted.
    BudgetExhausted {
        /// Number of steps executed (equal to the budget).
        steps: u64,
    },
    /// The step function requested an early stop.
    StoppedEarly {
        /// Number of steps executed before stopping.
        steps: u64,
    },
}

impl RunOutcome {
    /// Number of steps executed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        match *self {
            RunOutcome::BudgetExhausted { steps } | RunOutcome::StoppedEarly { steps } => steps,
        }
    }
}

/// A reproducible step-loop experiment.
///
/// ```
/// use afta_sim::{Experiment, StepControl, Tick};
///
/// let mut exp = Experiment::new(42, 1_000);
/// let mut pulses = 0u64;
/// let outcome = exp.run(|tick, _rngs| {
///     if tick.0 % 100 == 0 {
///         pulses += 1;
///     }
///     StepControl::Continue
/// });
/// assert_eq!(outcome.steps(), 1_000);
/// assert_eq!(pulses, 10); // ticks 1..=1000, multiples of 100
/// ```
#[derive(Debug)]
pub struct Experiment {
    clock: VirtualClock,
    seeds: SeedFactory,
    budget: u64,
}

impl Experiment {
    /// Creates an experiment with a master `seed` and a step `budget`.
    #[must_use]
    pub fn new(seed: u64, budget: u64) -> Self {
        Self {
            clock: VirtualClock::new(),
            seeds: SeedFactory::new(seed),
            budget,
        }
    }

    /// The seed factory for this experiment.
    #[must_use]
    pub fn seeds(&self) -> SeedFactory {
        self.seeds
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Configured step budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Runs the step loop.  The step function receives the tick *after*
    /// the clock has advanced (so the first call sees `Tick(1)`), and the
    /// experiment's seed factory.
    pub fn run<F>(&mut self, mut step: F) -> RunOutcome
    where
        F: FnMut(Tick, &SeedFactory) -> StepControl,
    {
        for i in 0..self.budget {
            let now = self.clock.tick();
            if step(now, &self.seeds) == StepControl::Stop {
                return RunOutcome::StoppedEarly { steps: i + 1 };
            }
        }
        RunOutcome::BudgetExhausted { steps: self.budget }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_full_budget() {
        let mut exp = Experiment::new(1, 10);
        let mut n = 0;
        let out = exp.run(|_, _| {
            n += 1;
            StepControl::Continue
        });
        assert_eq!(out, RunOutcome::BudgetExhausted { steps: 10 });
        assert_eq!(n, 10);
        assert_eq!(exp.now(), Tick(10));
    }

    #[test]
    fn stops_early() {
        let mut exp = Experiment::new(1, 10);
        let out = exp.run(|tick, _| {
            if tick.0 == 3 {
                StepControl::Stop
            } else {
                StepControl::Continue
            }
        });
        assert_eq!(out, RunOutcome::StoppedEarly { steps: 3 });
        assert_eq!(out.steps(), 3);
        assert_eq!(exp.now(), Tick(3));
    }

    #[test]
    fn zero_budget_runs_nothing() {
        let mut exp = Experiment::new(1, 0);
        let out = exp.run(|_, _| panic!("should not be called"));
        assert_eq!(out.steps(), 0);
    }

    #[test]
    fn first_tick_is_one() {
        let mut exp = Experiment::new(1, 1);
        exp.run(|tick, _| {
            assert_eq!(tick, Tick(1));
            StepControl::Continue
        });
    }

    #[test]
    fn seed_factory_is_experiment_seeded() {
        let a = Experiment::new(77, 1).seeds();
        let b = Experiment::new(77, 5).seeds();
        assert_eq!(a.derived_seed("x"), b.derived_seed("x"));
    }

    #[test]
    fn step_control_default_is_continue() {
        assert_eq!(StepControl::default(), StepControl::Continue);
    }
}
