//! Statistics helpers used by the experiment harnesses: integer histograms
//! (Fig. 7), scalar summaries, and time-weighted occupancy counters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::clock::Tick;

/// A histogram over integer-valued categories (e.g. redundancy degrees).
///
/// ```
/// use afta_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record_n(3, 9);
/// h.record(5);
/// assert_eq!(h.count(3), 10);
/// assert_eq!(h.total(), 11);
/// assert!((h.fraction(3) - 10.0 / 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bins: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        *self.bins.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Observations recorded for `value`.
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        self.bins.get(&value).copied().unwrap_or(0)
    }

    /// Total observations across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations in bin `value` (0.0 when empty).
    #[must_use]
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Iterator over `(value, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins.iter().map(|(&v, &c)| (v, c))
    }

    /// The smallest recorded value, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.bins.keys().next().copied()
    }

    /// The largest recorded value, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.bins.keys().next_back().copied()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }

    /// The smallest value `v` such that at least `q` of the observations
    /// are `<= v` (the q-quantile), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (v, c) in self.iter() {
            seen += c;
            if seen >= target {
                return Some(v);
            }
        }
        self.max()
    }

    /// The mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.iter().map(|(v, c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total == 0 {
            return write!(f, "(empty histogram)");
        }
        for (v, c) in self.iter() {
            writeln!(
                f,
                "{v:>6}: {c:>12} ({:>9.5}%)",
                100.0 * c as f64 / self.total as f64
            )?;
        }
        Ok(())
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Online scalar summary: count, mean, variance (Welford), min, max.
///
/// ```
/// use afta_sim::stats::Summary;
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another summary into this one (Chan et al.'s parallel
    /// Welford combination), so per-shard summaries reduce to exactly the
    /// moments a single sequential pass over all observations would have
    /// produced (up to floating-point rounding).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

/// Tracks how long (in ticks) a system spends in each integer-valued state.
///
/// This is exactly the accounting behind Fig. 7: “for each degree of
/// redundancy *r* the graph displays the total amount of time steps the
/// system adopted assumption a(r)”.
///
/// ```
/// use afta_sim::stats::TimeWeighted;
/// use afta_sim::Tick;
///
/// let mut tw = TimeWeighted::new(Tick(0), 3);
/// tw.transition(Tick(10), 5);   // spent 10 ticks at 3
/// tw.transition(Tick(25), 3);   // spent 15 ticks at 5
/// let h = tw.finish(Tick(30));  // spent  5 ticks at 3
/// assert_eq!(h.count(3), 15);
/// assert_eq!(h.count(5), 15);
/// assert_eq!(h.total(), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWeighted {
    hist: Histogram,
    since: Tick,
    state: u64,
}

impl TimeWeighted {
    /// Starts accounting at `start` in `initial_state`.
    #[must_use]
    pub fn new(start: Tick, initial_state: u64) -> Self {
        Self {
            hist: Histogram::new(),
            since: start,
            state: initial_state,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Records that the system switched to `new_state` at time `at`,
    /// crediting the elapsed interval to the previous state.
    pub fn transition(&mut self, at: Tick, new_state: u64) {
        let dwell = at.since(self.since);
        if dwell > 0 {
            self.hist.record_n(self.state, dwell);
        }
        self.since = at;
        self.state = new_state;
    }

    /// Closes the accounting at `end` and returns the dwell-time histogram.
    #[must_use]
    pub fn finish(mut self, end: Tick) -> Histogram {
        let dwell = end.since(self.since);
        if dwell > 0 {
            self.hist.record_n(self.state, dwell);
        }
        self.hist
    }

    /// A snapshot of the histogram accumulated so far (excluding the
    /// currently open interval).
    #[must_use]
    pub fn snapshot(&self) -> &Histogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction(3), 0.0);
        h.record(3);
        h.record(3);
        h.record(7);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.count(5), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn histogram_merge_and_collect() {
        let a: Histogram = [1, 1, 2].into_iter().collect();
        let mut b: Histogram = [2, 3].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count(1), 2);
        assert_eq!(b.count(2), 2);
        assert_eq!(b.count(3), 1);
        assert_eq!(b.total(), 5);
    }

    #[test]
    fn histogram_extend() {
        let mut h = Histogram::new();
        h.extend([4, 4, 4]);
        assert_eq!(h.count(4), 3);
    }

    #[test]
    fn histogram_display_nonempty() {
        let h: Histogram = [3, 3, 5].into_iter().collect();
        let s = h.to_string();
        assert!(s.contains('3'));
        assert!(s.contains('%'));
        assert_eq!(Histogram::new().to_string(), "(empty histogram)");
    }

    #[test]
    fn histogram_quantiles() {
        let h: Histogram = [1, 2, 2, 3, 3, 3, 10].into_iter().collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(3)); // 4th of 7
        assert_eq!(h.quantile(0.85), Some(3)); // 6th of 7
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_validates_range() {
        let h: Histogram = [1].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn histogram_mean() {
        let h: Histogram = [2, 4, 6].into_iter().collect();
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn summary_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_single() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);

        let one: Summary = [3.5].into_iter().collect();
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.min(), Some(3.5));
        assert_eq!(one.max(), Some(3.5));
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let sequential: Summary = xs.into_iter().collect();
        let mut left: Summary = xs[..3].iter().copied().collect();
        let right: Summary = xs[3..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-12);
        assert!((left.variance() - sequential.variance()).abs() < 1e-12);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());

        // Merging with an empty summary is the identity, both ways.
        let mut e = Summary::new();
        e.merge(&sequential);
        assert_eq!(e.count(), sequential.count());
        let mut s = sequential.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn time_weighted_serde_roundtrip() {
        let mut tw = TimeWeighted::new(Tick(0), 3);
        tw.transition(Tick(10), 5);
        let json = serde_json::to_string(&tw).unwrap();
        let back: TimeWeighted = serde_json::from_str(&json).unwrap();
        assert_eq!(tw, back);
        assert_eq!(back.finish(Tick(30)).count(5), 20);
    }

    #[test]
    fn time_weighted_accounts_dwell() {
        let mut tw = TimeWeighted::new(Tick(0), 3);
        tw.transition(Tick(100), 5);
        tw.transition(Tick(150), 7);
        tw.transition(Tick(150), 9); // zero-dwell transition is fine
        let h = tw.finish(Tick(200));
        assert_eq!(h.count(3), 100);
        assert_eq!(h.count(5), 50);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.count(9), 50);
        assert_eq!(h.total(), 200);
    }

    #[test]
    fn time_weighted_snapshot_excludes_open_interval() {
        let mut tw = TimeWeighted::new(Tick(0), 3);
        tw.transition(Tick(10), 5);
        assert_eq!(tw.snapshot().total(), 10);
        assert_eq!(tw.state(), 5);
    }
}
