//! A telemetry-aware [`Injector`] decorator.
//!
//! Wrap any injector in [`ObservedInjector`] to count injections by class
//! (`faultinject.injections`, `faultinject.transient`, …) and journal each
//! one as an [`TelemetryEvent::FaultInjected`] record, without touching
//! the injection schedule itself.

use afta_sim::Tick;
use afta_telemetry::{Counter, Registry, TelemetryEvent};

use crate::{FaultClass, Injector};

/// An [`Injector`] that reports every injection into a telemetry
/// [`Registry`] and then forwards it unchanged.
#[derive(Debug)]
pub struct ObservedInjector<I> {
    inner: I,
    telemetry: Registry,
    total: Counter,
    transient: Counter,
    intermittent: Counter,
    permanent: Counter,
}

impl<I: Injector> ObservedInjector<I> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: I, telemetry: Registry) -> Self {
        Self {
            inner,
            total: telemetry.counter("faultinject.injections"),
            transient: telemetry.counter("faultinject.transient"),
            intermittent: telemetry.counter("faultinject.intermittent"),
            permanent: telemetry.counter("faultinject.permanent"),
            telemetry,
        }
    }

    /// The wrapped injector.
    #[must_use]
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps the injector, discarding the telemetry binding.
    #[must_use]
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: Injector> Injector for ObservedInjector<I> {
    fn inject(&mut self, tick: Tick) -> Option<FaultClass> {
        let fault = self.inner.inject(tick);
        if let Some(class) = fault {
            self.total.inc();
            match class {
                FaultClass::Transient => self.transient.inc(),
                FaultClass::Intermittent => self.intermittent.inc(),
                FaultClass::Permanent => self.permanent.inc(),
            }
            self.telemetry.record(
                tick,
                TelemetryEvent::FaultInjected {
                    class: class.to_string(),
                },
            );
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeriodicInjector;

    #[test]
    fn injections_are_counted_by_class_and_journaled() {
        let telemetry = Registry::new();
        let mut inj = ObservedInjector::new(
            PeriodicInjector::new(5, 0, FaultClass::Permanent),
            telemetry.clone(),
        );
        for t in 0..20 {
            inj.inject(Tick(t));
        }
        let report = telemetry.report();
        assert_eq!(report.counter("faultinject.injections"), 4);
        assert_eq!(report.counter("faultinject.permanent"), 4);
        assert_eq!(report.counter("faultinject.transient"), 0);
        let journal: Vec<_> = report.journal_of_kind("fault-injected").collect();
        assert_eq!(journal.len(), 4);
        assert_eq!(journal[0].tick, Tick(0));
        assert_eq!(
            journal[0].event,
            TelemetryEvent::FaultInjected {
                class: "permanent".into()
            }
        );
    }

    #[test]
    fn schedule_is_unchanged_by_observation() {
        let mut plain = PeriodicInjector::new(3, 1, FaultClass::Transient);
        let mut observed = ObservedInjector::new(
            PeriodicInjector::new(3, 1, FaultClass::Transient),
            Registry::disabled(),
        );
        for t in 0..30 {
            assert_eq!(plain.inject(Tick(t)), observed.inject(Tick(t)));
        }
        assert_eq!(
            observed.into_inner(),
            PeriodicInjector::new(3, 1, FaultClass::Transient)
        );
    }
}
