//! Fault-trace recording and replay.
//!
//! §3.1 motivates "shared databases reporting known failure behaviors";
//! the run-time analogue is a *fault trace*: the exact sequence of fault
//! events one run experienced, serialisable so another layer (or another
//! run) can replay it.  [`TraceRecorder`] wraps any [`Injector`] and logs
//! what it emits; [`TraceInjector`] replays a recorded (or hand-written)
//! trace deterministically.

use serde::{Deserialize, Serialize};

use afta_sim::Tick;

use crate::{FaultClass, Injector};

/// One recorded fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the fault fired.
    pub tick: Tick2,
    /// What fired.
    pub class: FaultClass,
}

/// A serialisable stand-in for [`Tick`] (the sim crate keeps `Tick`
/// serde-free to stay dependency-light; traces store the raw `u64`).
pub type Tick2 = u64;

/// A recorded fault trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultTrace {
    events: Vec<TraceEvent>,
}

impl FaultTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from `(tick, class)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the ticks are not strictly increasing.
    #[must_use]
    pub fn from_events(events: impl IntoIterator<Item = (u64, FaultClass)>) -> Self {
        let events: Vec<TraceEvent> = events
            .into_iter()
            .map(|(tick, class)| TraceEvent { tick, class })
            .collect();
        for w in events.windows(2) {
            assert!(
                w[0].tick < w[1].tick,
                "trace ticks must be strictly increasing"
            );
        }
        Self { events }
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is not after the last recorded event.
    pub fn push(&mut self, tick: u64, class: FaultClass) {
        if let Some(last) = self.events.last() {
            assert!(tick > last.tick, "trace ticks must be strictly increasing");
        }
        self.events.push(TraceEvent { tick, class });
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in tick order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialisation fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Replays a [`FaultTrace`] as an [`Injector`].  Ticks must be queried in
/// non-decreasing order; events whose tick was skipped are dropped (they
/// belong to a moment that never happened in the replaying run).
#[derive(Debug, Clone)]
pub struct TraceInjector {
    trace: FaultTrace,
    next: usize,
}

impl TraceInjector {
    /// Creates a replayer.
    #[must_use]
    pub fn new(trace: FaultTrace) -> Self {
        Self { trace, next: 0 }
    }

    /// Events not yet replayed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }
}

impl Injector for TraceInjector {
    fn inject(&mut self, tick: Tick) -> Option<FaultClass> {
        // Skip events strictly before the queried tick.
        while self
            .trace
            .events
            .get(self.next)
            .is_some_and(|e| e.tick < tick.0)
        {
            self.next += 1;
        }
        match self.trace.events.get(self.next) {
            Some(e) if e.tick == tick.0 => {
                self.next += 1;
                Some(e.class)
            }
            _ => None,
        }
    }
}

/// Wraps an injector and records everything it emits, producing a
/// replayable [`FaultTrace`].
#[derive(Debug)]
pub struct TraceRecorder<I> {
    inner: I,
    trace: FaultTrace,
}

impl<I: Injector> TraceRecorder<I> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            trace: FaultTrace::new(),
        }
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    /// Consumes the recorder, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> FaultTrace {
        self.trace
    }
}

impl<I: Injector> Injector for TraceRecorder<I> {
    fn inject(&mut self, tick: Tick) -> Option<FaultClass> {
        let out = self.inner.inject(tick);
        if let Some(class) = out {
            self.trace.push(tick.0, class);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BernoulliInjector, PeriodicInjector};
    use afta_sim::SeedFactory;

    #[test]
    fn replay_matches_recording() {
        let inner = BernoulliInjector::new(
            0.2,
            FaultClass::Transient,
            SeedFactory::new(5).stream("rec"),
        );
        let mut recorder = TraceRecorder::new(inner);
        let original: Vec<Option<FaultClass>> =
            (0..500).map(|t| recorder.inject(Tick(t))).collect();
        let trace = recorder.into_trace();
        assert!(trace.len() > 50, "recorded {} events", trace.len());

        let mut replayer = TraceInjector::new(trace);
        let replayed: Vec<Option<FaultClass>> =
            (0..500).map(|t| replayer.inject(Tick(t))).collect();
        assert_eq!(original, replayed);
        assert_eq!(replayer.remaining(), 0);
    }

    #[test]
    fn hand_written_trace() {
        let trace =
            FaultTrace::from_events([(3, FaultClass::Transient), (7, FaultClass::Permanent)]);
        let mut inj = TraceInjector::new(trace);
        assert_eq!(inj.inject(Tick(0)), None);
        assert_eq!(inj.inject(Tick(3)), Some(FaultClass::Transient));
        assert_eq!(inj.inject(Tick(5)), None);
        assert_eq!(inj.inject(Tick(7)), Some(FaultClass::Permanent));
        assert_eq!(inj.inject(Tick(8)), None);
    }

    #[test]
    fn skipped_ticks_drop_events() {
        let trace =
            FaultTrace::from_events([(3, FaultClass::Transient), (9, FaultClass::Transient)]);
        let mut inj = TraceInjector::new(trace);
        // Jump straight past tick 3.
        assert_eq!(inj.inject(Tick(5)), None);
        assert_eq!(inj.remaining(), 1);
        assert_eq!(inj.inject(Tick(9)), Some(FaultClass::Transient));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_trace_rejected() {
        let _ = FaultTrace::from_events([(5, FaultClass::Transient), (5, FaultClass::Permanent)]);
    }

    #[test]
    fn push_validates_order() {
        let mut t = FaultTrace::new();
        assert!(t.is_empty());
        t.push(1, FaultClass::Transient);
        t.push(2, FaultClass::Permanent);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].class, FaultClass::Permanent);
    }

    #[test]
    fn json_roundtrip() {
        let mut recorder =
            TraceRecorder::new(PeriodicInjector::new(10, 0, FaultClass::Intermittent));
        for t in 0..50 {
            recorder.inject(Tick(t));
        }
        let trace = recorder.trace().clone();
        let json = trace.to_json().unwrap();
        let back = FaultTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.len(), 5);
        assert!(FaultTrace::from_json("{bad").is_err());
    }
}
