//! # afta-faultinject — deterministic fault injection
//!
//! The paper's experiments are driven by injected faults: the Fig. 4
//! watchdog scenario injects "a permanent design fault ... repeatedly",
//! and the §3.3 runs apply "heavy and diversified fault injection" while
//! the autonomic scheme adapts the redundancy.  This crate provides the
//! fault models and injection schedules those experiments share, all
//! deterministic under [`afta_sim::SeedFactory`] seeds.
//!
//! * [`FaultClass`] — transient / intermittent / permanent, the taxonomy
//!   the alpha-count filter discriminates between.
//! * [`Injector`] implementations — Bernoulli, periodic, burst.
//! * [`ComponentFaultModel`] — per-component failure processes with the
//!   right semantics per class (a permanent fault persists; an
//!   intermittent one recurs in windows; a transient one is memoryless).
//! * [`EnvironmentProfile`] — a piecewise-constant disturbance level over
//!   virtual time (the "simulated environmental changes" of Fig. 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod observed;
pub mod trace;

pub use observed::ObservedInjector;
pub use trace::{FaultTrace, TraceEvent, TraceInjector, TraceRecorder};

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use afta_sim::Tick;

/// The classical fault taxonomy used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Appears once and vanishes; tolerated by *redoing* (retry).
    Transient,
    /// Recurs in bursts/windows; treated like permanent by the
    /// alpha-count oracle.
    Intermittent,
    /// Persists forever once manifested; tolerated by *reconfiguration*
    /// (replacement).
    Permanent,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::Transient => "transient",
            FaultClass::Intermittent => "intermittent",
            FaultClass::Permanent => "permanent",
        };
        write!(f, "{s}")
    }
}

/// A source of fault events over virtual time.
pub trait Injector: Send {
    /// Returns the class of the fault injected at `tick`, or `None` when
    /// the tick is fault-free.
    fn inject(&mut self, tick: Tick) -> Option<FaultClass>;
}

/// Memoryless injection: at every tick a fault of the configured class
/// occurs with probability `p`.
#[derive(Debug)]
pub struct BernoulliInjector {
    p: f64,
    class: FaultClass,
    rng: StdRng,
}

impl BernoulliInjector {
    /// Creates an injector firing with probability `p` per tick.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn new(p: f64, class: FaultClass, rng: StdRng) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        Self { p, class, rng }
    }
}

impl Injector for BernoulliInjector {
    fn inject(&mut self, _tick: Tick) -> Option<FaultClass> {
        if self.rng.gen_bool(self.p) {
            Some(self.class)
        } else {
            None
        }
    }
}

/// Deterministic periodic injection: a fault every `period` ticks,
/// starting at tick `offset` (the Fig. 4 "repeatedly injected" pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicInjector {
    period: u64,
    offset: u64,
    class: FaultClass,
}

impl PeriodicInjector {
    /// Creates a periodic injector.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn new(period: u64, offset: u64, class: FaultClass) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            period,
            offset,
            class,
        }
    }
}

impl Injector for PeriodicInjector {
    fn inject(&mut self, tick: Tick) -> Option<FaultClass> {
        if tick.0 >= self.offset && (tick.0 - self.offset).is_multiple_of(self.period) {
            Some(self.class)
        } else {
            None
        }
    }
}

/// Bursty injection: quiet periods interleaved with bursts during which
/// faults fire densely — a simple on/off (Gilbert) process.
#[derive(Debug)]
pub struct BurstInjector {
    /// Probability of entering a burst per quiet tick.
    start_p: f64,
    /// Probability of leaving the burst per bursty tick.
    stop_p: f64,
    /// Fault probability inside a burst.
    in_burst_p: f64,
    class: FaultClass,
    bursting: bool,
    rng: StdRng,
}

impl BurstInjector {
    /// Creates a burst injector.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    #[must_use]
    pub fn new(start_p: f64, stop_p: f64, in_burst_p: f64, class: FaultClass, rng: StdRng) -> Self {
        for (name, p) in [
            ("start_p", start_p),
            ("stop_p", stop_p),
            ("in_burst_p", in_burst_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1]");
        }
        Self {
            start_p,
            stop_p,
            in_burst_p,
            class,
            bursting: false,
            rng,
        }
    }

    /// Whether the injector is currently inside a burst.
    #[must_use]
    pub fn is_bursting(&self) -> bool {
        self.bursting
    }
}

impl Injector for BurstInjector {
    fn inject(&mut self, _tick: Tick) -> Option<FaultClass> {
        if self.bursting {
            if self.rng.gen_bool(self.stop_p) {
                self.bursting = false;
            }
        } else if self.rng.gen_bool(self.start_p) {
            self.bursting = true;
        }
        if self.bursting && self.rng.gen_bool(self.in_burst_p) {
            Some(self.class)
        } else {
            None
        }
    }
}

/// A per-component failure process honouring each class's semantics:
///
/// * **permanent** — once the underlying injector fires, the component
///   fails at every subsequent activation;
/// * **intermittent** — after the injector fires, the component fails for
///   `window` ticks, then recovers until the injector fires again;
/// * **transient** — the component fails exactly at the tick the injector
///   fires.
#[derive(Debug)]
pub struct ComponentFaultModel<I> {
    injector: I,
    window: u64,
    faulty_until: Option<Tick>,
    permanent_since: Option<Tick>,
}

impl<I: Injector> ComponentFaultModel<I> {
    /// Wraps `injector`; `window` is the intermittent failure window in
    /// ticks.
    #[must_use]
    pub fn new(injector: I, window: u64) -> Self {
        Self {
            injector,
            window,
            faulty_until: None,
            permanent_since: None,
        }
    }

    /// Whether the component misbehaves at `tick`.  Call once per tick, in
    /// tick order.
    pub fn is_faulty_at(&mut self, tick: Tick) -> bool {
        if let Some(since) = self.permanent_since {
            debug_assert!(tick >= since);
            return true;
        }
        if let Some(class) = self.injector.inject(tick) {
            match class {
                FaultClass::Permanent => {
                    self.permanent_since = Some(tick);
                    return true;
                }
                FaultClass::Intermittent => {
                    self.faulty_until = Some(tick.after(self.window));
                    return true;
                }
                FaultClass::Transient => return true,
            }
        }
        self.faulty_until.is_some_and(|until| tick < until)
    }

    /// The tick the component turned permanently faulty, if it has.
    #[must_use]
    pub fn permanent_since(&self) -> Option<Tick> {
        self.permanent_since
    }

    /// Repairs the component (models replacement by reconfiguration).
    pub fn repair(&mut self) {
        self.permanent_since = None;
        self.faulty_until = None;
    }
}

/// One phase of an environment profile: `duration` ticks during which each
/// exposure (e.g. each replica each round) fails with `fault_probability`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in ticks.
    pub duration: u64,
    /// Per-exposure fault probability during the phase.
    pub fault_probability: f64,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0` or the probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(duration: u64, fault_probability: f64) -> Self {
        assert!(duration > 0, "phase duration must be positive");
        assert!(
            (0.0..=1.0).contains(&fault_probability),
            "fault probability must be in [0,1]"
        );
        Self {
            duration,
            fault_probability,
        }
    }
}

/// A piecewise-constant disturbance level over virtual time — the
/// "simulated environmental changes" that drive Fig. 6.
///
/// When `cyclic` the phase sequence repeats forever; otherwise the last
/// phase's probability holds after the sequence ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentProfile {
    phases: Vec<Phase>,
    cyclic: bool,
}

impl EnvironmentProfile {
    /// Creates a profile from phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    #[must_use]
    pub fn new(phases: Vec<Phase>, cyclic: bool) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        Self { phases, cyclic }
    }

    /// A permanently calm environment with background probability `p`.
    #[must_use]
    pub fn calm(p: f64) -> Self {
        Self::new(vec![Phase::new(1, p)], true)
    }

    /// The Fig. 6 shape: calm, then a disturbance storm, then calm again.
    #[must_use]
    pub fn calm_storm_calm(calm_len: u64, storm_len: u64, calm_p: f64, storm_p: f64) -> Self {
        Self::new(
            vec![
                Phase::new(calm_len, calm_p),
                Phase::new(storm_len, storm_p),
                Phase::new(calm_len, calm_p),
            ],
            false,
        )
    }

    /// A repeating calm/storm cycle (the long-run Fig. 7 environment).
    #[must_use]
    pub fn cyclic_storms(calm_len: u64, storm_len: u64, calm_p: f64, storm_p: f64) -> Self {
        Self::new(
            vec![Phase::new(calm_len, calm_p), Phase::new(storm_len, storm_p)],
            true,
        )
    }

    /// Total length of one pass through the phases.
    #[must_use]
    pub fn cycle_length(&self) -> u64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The per-exposure fault probability at `tick`.
    #[must_use]
    pub fn probability_at(&self, tick: Tick) -> f64 {
        let cycle = self.cycle_length();
        let mut t = if self.cyclic {
            tick.0 % cycle
        } else if tick.0 >= cycle {
            // Past the end of a non-cyclic profile: last phase holds.
            return self.phases[self.phases.len() - 1].fault_probability;
        } else {
            tick.0
        };
        for phase in &self.phases {
            if t < phase.duration {
                return phase.fault_probability;
            }
            t -= phase.duration;
        }
        // Unreachable: t < cycle and the loop covers the whole cycle.
        self.phases[self.phases.len() - 1].fault_probability
    }

    /// Draws whether one exposure at `tick` fails, using `rng`.
    pub fn draw(&self, tick: Tick, rng: &mut StdRng) -> bool {
        let p = self.probability_at(tick);
        p > 0.0 && rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afta_sim::SeedFactory;

    fn rng(name: &str) -> StdRng {
        SeedFactory::new(42).stream(name)
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut inj = BernoulliInjector::new(0.1, FaultClass::Transient, rng("b"));
        let fired = (0..10_000)
            .filter(|&t| inj.inject(Tick(t)).is_some())
            .count();
        assert!((800..1200).contains(&fired), "fired={fired}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut never = BernoulliInjector::new(0.0, FaultClass::Transient, rng("n"));
        let mut always = BernoulliInjector::new(1.0, FaultClass::Permanent, rng("a"));
        assert_eq!(never.inject(Tick(1)), None);
        assert_eq!(always.inject(Tick(1)), Some(FaultClass::Permanent));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_validates_p() {
        let _ = BernoulliInjector::new(1.5, FaultClass::Transient, rng("x"));
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let mut inj = PeriodicInjector::new(5, 2, FaultClass::Permanent);
        let fired: Vec<u64> = (0..20).filter(|&t| inj.inject(Tick(t)).is_some()).collect();
        assert_eq!(fired, vec![2, 7, 12, 17]);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn periodic_validates_period() {
        let _ = PeriodicInjector::new(0, 0, FaultClass::Transient);
    }

    #[test]
    fn burst_injector_produces_clusters() {
        let mut inj = BurstInjector::new(0.01, 0.1, 0.8, FaultClass::Transient, rng("burst"));
        let fired: Vec<bool> = (0..50_000).map(|t| inj.inject(Tick(t)).is_some()).collect();
        let total: usize = fired.iter().filter(|&&b| b).count();
        assert!(
            total > 100,
            "bursts should produce many faults, got {total}"
        );
        // Clustering: probability of a fault right after a fault should be
        // much higher than the marginal rate.
        let after_fault =
            fired.windows(2).filter(|w| w[0] && w[1]).count() as f64 / total.max(1) as f64;
        let marginal = total as f64 / fired.len() as f64;
        assert!(
            after_fault > 3.0 * marginal,
            "after_fault={after_fault} marginal={marginal}"
        );
    }

    #[test]
    fn component_model_transient_is_memoryless() {
        let inj = PeriodicInjector::new(10, 0, FaultClass::Transient);
        let mut m = ComponentFaultModel::new(inj, 5);
        assert!(m.is_faulty_at(Tick(0)));
        assert!(!m.is_faulty_at(Tick(1)));
        assert!(m.is_faulty_at(Tick(10)));
    }

    #[test]
    fn component_model_permanent_persists() {
        let inj = PeriodicInjector::new(1000, 3, FaultClass::Permanent);
        let mut m = ComponentFaultModel::new(inj, 5);
        assert!(!m.is_faulty_at(Tick(2)));
        assert!(m.is_faulty_at(Tick(3)));
        for t in 4..50 {
            assert!(m.is_faulty_at(Tick(t)));
        }
        assert_eq!(m.permanent_since(), Some(Tick(3)));
        m.repair();
        assert!(!m.is_faulty_at(Tick(60)));
    }

    #[test]
    fn component_model_intermittent_window() {
        let inj = PeriodicInjector::new(100, 10, FaultClass::Intermittent);
        let mut m = ComponentFaultModel::new(inj, 5);
        assert!(!m.is_faulty_at(Tick(9)));
        assert!(m.is_faulty_at(Tick(10)));
        assert!(m.is_faulty_at(Tick(12)));
        assert!(m.is_faulty_at(Tick(14)));
        assert!(!m.is_faulty_at(Tick(15))); // window closed
        assert!(m.is_faulty_at(Tick(110))); // next occurrence
    }

    #[test]
    fn profile_phase_lookup() {
        let p = EnvironmentProfile::calm_storm_calm(100, 50, 0.001, 0.5);
        assert_eq!(p.cycle_length(), 250);
        assert_eq!(p.probability_at(Tick(0)), 0.001);
        assert_eq!(p.probability_at(Tick(99)), 0.001);
        assert_eq!(p.probability_at(Tick(100)), 0.5);
        assert_eq!(p.probability_at(Tick(149)), 0.5);
        assert_eq!(p.probability_at(Tick(150)), 0.001);
        // Non-cyclic: past the end the last phase holds.
        assert_eq!(p.probability_at(Tick(10_000)), 0.001);
    }

    #[test]
    fn cyclic_profile_wraps() {
        let p = EnvironmentProfile::cyclic_storms(10, 5, 0.0, 1.0);
        assert_eq!(p.probability_at(Tick(0)), 0.0);
        assert_eq!(p.probability_at(Tick(10)), 1.0);
        assert_eq!(p.probability_at(Tick(14)), 1.0);
        assert_eq!(p.probability_at(Tick(15)), 0.0);
        assert_eq!(p.probability_at(Tick(25)), 1.0); // wrapped
    }

    #[test]
    fn calm_profile_is_constant() {
        let p = EnvironmentProfile::calm(0.01);
        for t in [0u64, 1, 100, 1_000_000] {
            assert_eq!(p.probability_at(Tick(t)), 0.01);
        }
    }

    #[test]
    fn draw_respects_probability() {
        let p = EnvironmentProfile::calm(0.0);
        let mut r = rng("draw");
        assert!(!p.draw(Tick(0), &mut r));
        let p = EnvironmentProfile::calm(1.0);
        assert!(p.draw(Tick(0), &mut r));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        let _ = EnvironmentProfile::new(Vec::new(), false);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_phase_rejected() {
        let _ = Phase::new(0, 0.5);
    }

    #[test]
    fn fault_class_display() {
        assert_eq!(FaultClass::Transient.to_string(), "transient");
        assert_eq!(FaultClass::Intermittent.to_string(), "intermittent");
        assert_eq!(FaultClass::Permanent.to_string(), "permanent");
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = EnvironmentProfile::cyclic_storms(10, 5, 0.1, 0.9);
        let json = serde_json::to_string(&p).unwrap();
        let back: EnvironmentProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut inj = BernoulliInjector::new(
                0.3,
                FaultClass::Transient,
                SeedFactory::new(seed).stream("det"),
            );
            (0..100).map(|t| inj.inject(Tick(t)).is_some()).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
