//! Property tests on injector semantics.

use afta_faultinject::{
    BernoulliInjector, ComponentFaultModel, EnvironmentProfile, FaultClass, FaultTrace, Injector,
    PeriodicInjector, Phase, TraceInjector, TraceRecorder,
};
use afta_sim::{SeedFactory, Tick};
use proptest::prelude::*;

proptest! {
    /// Record/replay is an identity for any injector and any horizon.
    #[test]
    fn record_replay_identity(seed: u64, p in 0.0f64..0.5, horizon in 1u64..400) {
        let inner = BernoulliInjector::new(
            p,
            FaultClass::Transient,
            SeedFactory::new(seed).stream("prop"),
        );
        let mut rec = TraceRecorder::new(inner);
        let original: Vec<bool> = (0..horizon).map(|t| rec.inject(Tick(t)).is_some()).collect();
        let mut replay = TraceInjector::new(rec.into_trace());
        let replayed: Vec<bool> = (0..horizon).map(|t| replay.inject(Tick(t)).is_some()).collect();
        prop_assert_eq!(original, replayed);
    }

    /// A permanent fault, once manifested, holds forever (until repair),
    /// whatever the injector schedule.
    #[test]
    fn permanent_faults_are_absorbing(period in 1u64..50, offset in 0u64..50) {
        let inj = PeriodicInjector::new(period, offset, FaultClass::Permanent);
        let mut model = ComponentFaultModel::new(inj, 3);
        let mut seen_fault = false;
        for t in 0..200u64 {
            let faulty = model.is_faulty_at(Tick(t));
            if seen_fault {
                prop_assert!(faulty, "permanent fault released at t={t}");
            }
            seen_fault |= faulty;
        }
        prop_assert!(seen_fault);
        model.repair();
        // The injector fires again eventually, but right after repair the
        // component is clean until the next occurrence.
        prop_assert_eq!(model.permanent_since(), None);
    }

    /// The profile's probability function is piecewise-consistent: every
    /// tick maps to the probability of the phase containing it.
    #[test]
    fn profile_lookup_matches_phases(
        durations in proptest::collection::vec(1u64..50, 1..6),
        probs in proptest::collection::vec(0.0f64..1.0, 6),
        cyclic: bool,
        probe in 0u64..500,
    ) {
        let phases: Vec<Phase> = durations
            .iter()
            .zip(&probs)
            .map(|(&d, &p)| Phase::new(d, p))
            .collect();
        let profile = EnvironmentProfile::new(phases.clone(), cyclic);
        let cycle = profile.cycle_length();
        let t = probe;
        let effective = profile.probability_at(Tick(t));
        // Reference computation.
        let expected = if cyclic || t < cycle {
            let mut rem = t % cycle;
            let mut val = phases[phases.len() - 1].fault_probability;
            for ph in &phases {
                if rem < ph.duration {
                    val = ph.fault_probability;
                    break;
                }
                rem -= ph.duration;
            }
            val
        } else {
            phases[phases.len() - 1].fault_probability
        };
        prop_assert_eq!(effective, expected);
    }

    /// Traces reject non-monotone pushes but accept any strictly
    /// increasing sequence.
    #[test]
    fn trace_accepts_strictly_increasing(ticks in proptest::collection::btree_set(0u64..1000, 0..50)) {
        let ticks: Vec<u64> = ticks.iter().copied().collect();
        let mut trace = FaultTrace::new();
        for &t in &ticks {
            trace.push(t, FaultClass::Transient);
        }
        prop_assert_eq!(trace.len(), ticks.len());
    }
}
